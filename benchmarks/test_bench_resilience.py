"""E8: fault injection & resilience at full experiment scale."""

from benchmarks.conftest import run_once
from repro.experiments.resilience import format_resilience, run_resilience


def test_bench_resilience(benchmark, show):
    """Graceful degradation: timesync loss lands the co-scheduled run near
    the uncoordinated baseline (never catastrophically past it), message
    loss is absorbed by retransmits, and the watchdog recovers daemon
    death to near-healthy latency."""
    res = run_once(benchmark, run_resilience)
    show(format_resilience(res))
    # Losing timesync really costs coordination...
    assert res.degradation_ratio > 1.2
    # ...but degrades *to* the paper's no-cosched pathology, not a hang or
    # a collapse (observed ~1.3x the baseline at this scale).
    assert res.vs_baseline_ratio < 1.6
    assert res.degradation_events >= 1
    # Every injected drop was recovered by a retransmit; the forced
    # link-level path stays a rare last resort at 1% loss.
    assert res.drop_net_drops > 0
    assert res.drop_retransmits >= res.drop_net_drops
    assert res.drop_forced <= res.drop_net_drops // 10
    # The watchdog restarted the daemon on every node, and recovery beats
    # unrecovered degradation.
    assert res.death_restarts == -(-res.n_ranks // 8)
    assert res.death_us < res.degraded_us
