"""Figure 3: Allreduce vs processor count, 16 tasks/node, vanilla kernel.

Paper shape: linear (not logarithmic) scaling with large variability.
"""

from benchmarks.conftest import run_once
from repro.analytic.fits import compare_fits
from repro.experiments.fig6 import format_sweep, run_fig3


def test_bench_fig3_vanilla_scaling(benchmark, show):
    res = run_once(benchmark, run_fig3, n_calls=300, n_seeds=3)
    show(format_sweep(res, "Figure 3: vanilla kernel, 16 tasks/node"))
    lin, log, winner = compare_fits(res.proc_counts, res.mean_us)
    assert winner == "linear"
    assert lin.slope > 0.3  # paper: 0.70 us per CPU
    # "extreme variability": the call-to-call spread at scale is of the
    # order of the mean itself.
    assert res.call_std_us[-1] > 0.3 * res.mean_us[-1]
