"""T2: 100 prototype nodes fully populated vs 100 vanilla nodes at 15/node.

Paper: "a 154% speedup" (time ratio 1.54, in the paper's percentage
convention where the ~3.2x slope ratio reads "over 300%").
"""

from benchmarks.conftest import run_once
from repro.experiments.speedup import format_speedup, run_speedup154


def test_bench_speedup154(benchmark, show):
    res = run_once(benchmark, run_speedup154, n_calls=300, n_seeds=3)
    show(format_speedup(res))
    # Prototype wins despite carrying the extra (noisier) 16th task.
    assert res.proto_allreduce_us < res.baseline_allreduce_us
    # Roughly the paper's factor: 154% +/- a band.
    assert 115.0 <= res.speedup_percent <= 260.0
