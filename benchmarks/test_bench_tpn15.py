"""T1: the 15-tasks-per-node community workaround.

Paper: "absolute performance is improved and there is much less
variability using 15 tasks per node.  In spite of the improved
performance, the scaling is still linear rather than logarithmic."
"""

from benchmarks.conftest import run_once
from repro.analytic.fits import compare_fits
from repro.experiments.fig6 import format_sweep, run_fig3, run_tpn15


def test_bench_tpn15_workaround(benchmark, show):
    res = run_once(benchmark, run_tpn15, n_calls=300, n_seeds=3)
    show(format_sweep(res, "T1: vanilla kernel, 15 tasks/node"))
    lin, log, winner = compare_fits(res.proc_counts, res.mean_us)
    assert winner == "linear"  # still linear, as the paper stresses
    vanilla = run_fig3(n_calls=150, n_seeds=2)
    # Compare at matched node counts (59 nodes: 944 vs 885 ranks).
    v944 = float(vanilla.mean_us[list(vanilla.proc_counts).index(944)])
    f885 = float(res.mean_us[list(res.proc_counts).index(885)])
    assert f885 < v944  # improved absolute performance
