"""Figure 4: sorted Allreduce times from one node; outlier attribution.

Paper shape: fastest within ~10% of the model, median ~25% above the
fastest, mean several times the model, the slowest call (the 15-minute
cron job) alone a large share of total time.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4 import format_fig4, run_fig4


def test_bench_fig4_sorted_outliers(benchmark, show):
    res = run_once(benchmark, run_fig4)
    show(format_fig4(res))
    assert res.min_us <= 1.35 * res.model_prediction_us          # fastest near model
    assert 1.05 <= res.median_us / res.min_us <= 2.5             # median modestly above
    assert res.mean_us > 3.0 * res.model_prediction_us           # mean blown up (paper: ~6x)
    assert res.slowest_share > 0.2                               # slowest dominates (paper: >0.5)
    assert res.slowest_culprit == "cron_health"                  # named by the trace
