"""T3: MPI timer ("progress engine") threads and MP_POLLING_INTERVAL.

Paper: the 400 ms timer threads disrupted tightly synchronised Allreduces;
raising the polling interval to ~400 s removed the interference.
"""

from benchmarks.conftest import run_once
from repro.experiments.timer_threads import format_timer_threads, run_timer_threads


def test_bench_timer_thread_interference(benchmark, show):
    res = run_once(benchmark, run_timer_threads)
    show(format_timer_threads(res))
    # DES: the fix kills the tail the timer threads create.
    assert res.des_max_default_us > 1.3 * res.des_max_fixed_us
    assert res.des_mean_default_us > res.des_mean_fixed_us
    # Model at paper scale: means improve too.
    assert res.model_mean_default_us > res.model_mean_fixed_us
