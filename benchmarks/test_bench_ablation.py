"""A1: cumulative ablation of the paper's modifications (DESIGN.md §4)."""

from benchmarks.conftest import run_once
from repro.experiments.ablation import format_ablation, run_ablation


def test_bench_ablation_cumulative(benchmark, show):
    res = run_once(benchmark, run_ablation, n_ranks=944, n_calls=300, n_seeds=3)
    show(format_ablation(res))
    means = {label: m for label, m, _ in res.steps}
    vanilla = means["1 vanilla"]
    polling = means["2 +polling fix"]
    cosched = means["5 +cosched (no RT fixes)"]
    full = means["6 +RT sched fixes (= prototype)"]
    # Each major stage helps; co-scheduling is the big lever.
    assert polling <= vanilla * 1.05
    assert cosched < vanilla * 0.6
    assert full <= cosched * 1.1
    assert full < vanilla / 2.0
