"""Benchmark harness conventions.

Every benchmark regenerates one paper table/figure (DESIGN.md §3): it runs
the corresponding experiment once under pytest-benchmark timing, prints the
same rows/series the paper reports, and asserts the *shape* criteria
(who wins, by roughly what factor, where the pathology shows) — absolute
microseconds are simulator-relative by construction.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Benchmark *fn* with a single round (experiments are heavy and
    deterministic; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def show(capsys):
    """Print a report through the captured-output barrier."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
