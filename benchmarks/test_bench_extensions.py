"""E1–E4: extension benchmarks (paper §6 baseline, §7 future work,
DESIGN.md §4 design-choice ablations)."""

from benchmarks.conftest import run_once
from repro.experiments.extensions import (
    format_fine_grain,
    format_hw_collectives,
    format_misalignment,
    format_multijob,
    run_fine_grain,
    run_hw_collectives,
    run_misalignment,
    run_multijob,
)


def test_bench_multijob_gang_vs_uncoordinated(benchmark, show):
    """E1: co-located fine-grain jobs need coordination; gang shares the
    machine in slots, demand-based boosting self-organises into serial
    batching (best per-op, worst turnaround fairness)."""
    res = run_once(benchmark, run_multijob)
    show(format_multijob(res))
    assert res.per_op_improvement > 1.5
    assert res.demand_improvement > 1.5
    assert res.gang_makespan_us < res.uncoordinated_makespan_us
    # The fairness tension: demand's finish spread is a large share of its
    # makespan (one job waits the other out); gang's is proportionally small.
    assert res.demand_finish_spread_us / res.demand_makespan_us > 0.3
    assert res.gang_finish_spread_us / res.gang_makespan_us < 0.3


def test_bench_hardware_collectives(benchmark, show):
    """E2: switch-combined Allreduce under the vanilla noise ecology."""
    res = run_once(benchmark, run_hw_collectives, n_calls=200)
    show(format_hw_collectives(res))
    # Hardware wins at every count, more at scale, but does not reach
    # zero sensitivity (the slowest deposit still gates the combine).
    assert all(h < s_ for h, s_ in zip(res.hardware_us, res.software_us))
    assert res.ratio_at_max() > 1.3


def test_bench_fine_grain_hints(benchmark, show):
    """E3: region-scoped boosting avoids the T4 I/O starvation without
    per-daemon priority tuning."""
    res = run_once(benchmark, run_fine_grain)
    show(format_fine_grain(res))
    # Always-on with the untuned priority is the T4 fiasco...
    assert res.always_on_us > res.vanilla_us
    # ...while fine-grain-only beats vanilla with the same priority.
    assert res.fine_grain_us < res.vanilla_us
    assert res.fine_grain_io_us < res.always_on_io_us / 2


def test_bench_clock_misalignment(benchmark, show):
    """E4: the co-scheduler without switch-clock sync loses its edge."""
    res = run_once(benchmark, run_misalignment)
    show(format_misalignment(res))
    assert res.degradation > 1.1


def test_bench_waitmode_tradeoff(benchmark, show):
    """E5: poll wins quiet, block wins under heavy full-occupancy noise."""
    from repro.experiments.workloads import format_waitmode, run_waitmode

    res = run_once(benchmark, run_waitmode)
    show(format_waitmode(res))
    assert res.quiet_poll_advantage > 1.3
    assert res.noisy_block_advantage > 1.1


def test_bench_workload_sensitivity(benchmark, show):
    """E6: collective-heavy codes amplify noise more than wavefronts."""
    from repro.experiments.workloads import format_sensitivity, run_sensitivity

    res = run_once(benchmark, run_sensitivity)
    show(format_sensitivity(res))
    assert res.collective_slowdown > res.wavefront_slowdown
    assert res.collective_slowdown > 1.5


def test_bench_granularity(benchmark, show):
    """E7: efficiency falls as cycles shrink; the prototype recovers most
    of the fine-grain loss (paper §2's framing, quantified)."""
    import numpy as np

    from repro.experiments.workloads import format_granularity, run_granularity

    res = run_once(benchmark, run_granularity)
    show(format_granularity(res))
    # Efficiency improves monotonically-ish with granularity for vanilla.
    assert res.vanilla_efficiency[0] < res.vanilla_efficiency[-1]
    # The prototype dominates vanilla at every granularity...
    assert np.all(res.prototype_efficiency > res.vanilla_efficiency)
    # ...and the gap is biggest at the fine-grain end.
    gaps = res.prototype_efficiency - res.vanilla_efficiency
    assert gaps[0] > gaps[-1]
