"""Figure 5: prototype kernel + co-scheduler, 16 tasks/node.

Paper shape: much faster than vanilla and far less variable, still linear.
"""

from benchmarks.conftest import run_once
from repro.analytic.fits import fit_linear
from repro.experiments.fig6 import format_sweep, run_fig3, run_fig5


def test_bench_fig5_prototype_scaling(benchmark, show):
    res = run_once(benchmark, run_fig5, n_calls=300, n_seeds=3)
    show(format_sweep(res, "Figure 5: prototype kernel + co-scheduler"))
    vanilla = run_fig3(proc_counts=tuple(res.proc_counts), n_calls=150, n_seeds=2)
    # Prototype is faster at every plotted count...
    assert all(p < v for p, v in zip(res.mean_us, vanilla.mean_us))
    # ...and dramatically less variable at scale.
    assert res.call_std_us[-1] < 0.5 * vanilla.call_std_us[-1]
    # Still grows with N (the residual interference floor).
    assert fit_linear(res.proc_counts, res.mean_us).slope > 0.0
