"""T5: trace-based outlier attribution.

Paper §5.3: the slowest Allreduce was caused by the administrative cron
job; other outliers were attributed to syncd/mmfsd/hatsd-class daemons and
interrupt handlers via AIX traces.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4 import run_fig4


def test_bench_outlier_attribution(benchmark, show):
    res = run_once(benchmark, run_fig4, n_ranks=944, n_calls=448, des_ranks=32)
    lines = ["T5: top DES outliers and their culprits"]
    for idx, dur, top in res.outlier_attribution[:8]:
        culprits = ", ".join(f"{n} ({c:.0f}us)" for n, c in top)
        lines.append(f"  call {idx:4d}: {dur:9.0f} us  <- {culprits}")
    show("\n".join(lines))
    assert res.outlier_attribution, "no outliers found to attribute"
    # Every reported outlier has a named culprit.
    assert all(top for _, _, top in res.outlier_attribution)
    # The worst one is the cron job, as in the paper.
    assert res.slowest_culprit == "cron_health"
    # The daemon ecology shows up across outliers.
    names = {n for _, _, top in res.outlier_attribution for n, _ in top}
    assert len(names & {"syncd", "mmfsd", "hatsd", "hats_nim", "mld",
                        "LoadL_startd", "inetd", "hostmibd"}) >= 2
