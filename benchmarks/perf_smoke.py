"""CI perf smoke: quick runs pinned to golden event counts and digests.

Engine optimisations in this repo are held to a bit-identical-results
contract: faster, but the same events in the same order producing the same
floats.  This script enforces that in CI at ``--quick`` scale:

* a reduced cluster DES run — ``events_processed`` and a digest of the
  per-rank completion times;
* a reduced Figure-4 run — a digest of the sorted Allreduce durations and
  the named slowest-outlier culprit.

Any drift fails the job.  When a change *legitimately* alters results
(a model change, not an engine change), regenerate the golden with::

    PYTHONPATH=src python benchmarks/perf_smoke.py --record

and say why in the commit message.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

GOLDEN = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden_perf_smoke.json")


def _digest(payload) -> str:
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def smoke_cluster_des() -> dict:
    """Reduced bench_engine cluster scenario: 32 ranks, 2 nodes."""
    from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
    from repro.config import ClusterConfig, MachineConfig, MpiConfig
    from repro.daemons.catalog import scale_noise, standard_noise
    from repro.system import System

    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=2, cpus_per_node=16),
        mpi=MpiConfig(progress_threads_enabled=False),
        noise=scale_noise(standard_noise(include_cron=False), 30.0),
        seed=1,
    )
    system = System(cfg)
    t0 = time.perf_counter()
    result = run_aggregate_trace(
        system, 32, 16,
        AggregateTraceConfig(calls_per_loop=80, compute_between_us=200.0),
    )
    wall = time.perf_counter() - t0
    return {
        "events_processed": system.sim.events_processed,
        "result_digest": _digest(
            [sorted(result.node0_durations_us.keys()),
             [round(d, 9) for d in result.node0_durations_us[0]]]
        ),
        "wall_s": round(wall, 3),
    }


def smoke_fig4() -> dict:
    """Figure 4 at quick scale: 236 ranks model, 112 calls, 16-rank DES."""
    from repro.experiments.fig4 import run_fig4

    t0 = time.perf_counter()
    res = run_fig4(n_ranks=236, n_calls=112, des_ranks=16, des_calls=112)
    wall = time.perf_counter() - t0
    return {
        "result_digest": hashlib.sha256(
            res.sorted_durations_us.tobytes()
        ).hexdigest(),
        "slowest_culprit": res.slowest_culprit,
        "n_outliers": len(res.outlier_attribution),
        "wall_s": round(wall, 3),
    }


#: Keys whose values are timing, not semantics: never compared.
_VOLATILE = {"wall_s"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write the golden file instead of checking it")
    parser.add_argument("--golden", default=GOLDEN)
    args = parser.parse_args(argv)

    got = {"cluster_des": smoke_cluster_des(), "fig4_quick": smoke_fig4()}
    for name, r in got.items():
        shown = {k: v for k, v in r.items() if k not in _VOLATILE}
        print(f"[perf-smoke] {name}: {shown} ({r['wall_s']}s)")

    if args.record:
        with open(args.golden, "w") as fh:
            json.dump(got, fh, indent=2)
            fh.write("\n")
        print(f"[perf-smoke] recorded {args.golden}")
        return 0

    try:
        with open(args.golden) as fh:
            want = json.load(fh)
    except OSError:
        print(f"[perf-smoke] FAIL: no golden at {args.golden} "
              "(run with --record to create it)")
        return 2

    failures = []
    for name, wanted in want.items():
        for key, value in wanted.items():
            if key in _VOLATILE:
                continue
            actual = got.get(name, {}).get(key)
            if actual != value:
                failures.append(f"{name}.{key}: golden {value!r} != actual {actual!r}")
    if failures:
        print("[perf-smoke] FAIL — results drifted from golden:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("[perf-smoke] PASS — events and digests match golden")
    return 0


if __name__ == "__main__":
    sys.exit(main())
