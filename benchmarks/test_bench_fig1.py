"""Figure 1: random vs co-scheduled interference on an 8-way node."""

from benchmarks.conftest import run_once
from repro.experiments.fig1 import format_fig1, run_fig1


def test_bench_fig1_overlap(benchmark, show):
    res = run_once(benchmark, run_fig1, n_cpus=8, bursts_per_cpu=300, seed=1)
    show(format_fig1(res))
    # Paper's Figure 1 message: same total noise, far more all-CPU time
    # when overlapped; with 8 CPUs the gap is large.
    assert res.green_overlapped > res.green_random * 1.5
    assert res.green_overlapped > 0.8
