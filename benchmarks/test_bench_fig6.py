"""Figure 6: fitted scaling lines, vanilla vs prototype.

Paper: y_vanilla = 0.70x + 166, y_prototype = 0.22x + 210; slope ratio
~3.2x, headline "over 300% speedup on synchronizing collectives".
"""

from benchmarks.conftest import run_once
from repro.experiments.fig6 import format_fig6, run_fig6


def test_bench_fig6_fitted_lines(benchmark, show):
    res = run_once(benchmark, run_fig6, n_calls=300, n_seeds=3)
    show(format_fig6(res))
    # Vanilla slope lands near the paper's 0.70 (calibrated ecology).
    assert 0.35 <= res.vanilla_fit.slope <= 1.2
    # The prototype wins by at least the paper's factor-3 on slope.
    assert res.slope_ratio > 3.0
    # And by roughly the paper's factor at the paper's scale.
    assert res.mean_ratio_at(944) > 1.8
    assert res.vanilla_winner == "linear"
