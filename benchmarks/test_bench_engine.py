"""Engine performance: the simulator's own throughput.

Not a paper figure — these benchmarks track the two engines' cost so
regressions in the hot paths (event heap, dispatcher, vectorised rounds)
are caught by the numbers rather than by slow CI.
"""

import numpy as np

from repro.analytic.model import AllreduceSeriesModel
from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.config import ClusterConfig, MachineConfig, MpiConfig, NoiseConfig
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import VANILLA16, make_config
from repro.sim.core import Simulator
from repro.system import System


def test_bench_event_engine_throughput(benchmark, show):
    """Raw event queue: schedule/fire chains."""

    def churn():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 200_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    events = benchmark.pedantic(churn, rounds=1, iterations=1, warmup_rounds=0)
    rate = events / benchmark.stats.stats.mean
    show(f"event engine: {rate / 1e6:.2f} M events/s (chained schedule+fire)")
    assert events == 200_000
    assert rate > 100_000  # sanity floor


def test_bench_des_cluster_throughput(benchmark, show):
    """Full-stack DES: 64 ranks with noise, events per wall second."""

    def run():
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=4, cpus_per_node=16),
            mpi=MpiConfig(progress_threads_enabled=False),
            noise=scale_noise(standard_noise(include_cron=False), 30.0),
            seed=1,
        )
        system = System(cfg)
        run_aggregate_trace(
            system, 64, 16, AggregateTraceConfig(calls_per_loop=150, compute_between_us=200.0)
        )
        return system.sim.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    rate = events / benchmark.stats.stats.mean
    show(f"cluster DES: {events} events, {rate / 1e3:.0f} k events/s")
    assert rate > 20_000


def test_bench_analytic_model_throughput(benchmark, show):
    """Vectorised model: rank-rounds per wall second at paper scale."""
    cfg = make_config(VANILLA16, 1728, seed=1)

    def run():
        model = AllreduceSeriesModel(cfg, 1728, 16, seed=1)
        model.run_series(200, compute_between_us=200.0)
        return 200 * len(model.rounds) * 1728

    rank_rounds = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    rate = rank_rounds / benchmark.stats.stats.mean
    show(f"analytic model: {rate / 1e6:.1f} M rank-rounds/s at 1728 ranks")
    assert rate > 1e6
