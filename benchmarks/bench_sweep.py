"""Wall-clock benchmark for the parallel TrialRunner (satellite of PR 3).

Runs the canonical ``proto16`` sweep (the ``--quick`` Figure-5 campaign:
paper processor counts 128/512/944/1728, 150 calls, 2 seeds → 8 trials)
at ``--jobs 1`` and ``--jobs 4``, checks the runs are bit-identical, and
records wall-clock plus environment facts to ``BENCH_sweep.json``.

The speedup column is only meaningful relative to ``cpu_count``: on a
single-core runner the pool pays fork/pickle overhead with nothing to
overlap, so ``jobs 4`` can be ≤ 1×; on a 4-core runner the 8 trials
(~equal cost each) should land ≥ 2×.  The JSON records ``cpu_count`` so
readers can interpret the numbers honestly.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--out BENCH_sweep.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.experiments.common import PROTO16, allreduce_sweep

SWEEP_KW = dict(
    proc_counts=(128, 512, 944, 1728),
    n_calls=150,
    n_seeds=2,
)


def time_sweep(jobs: int) -> tuple[float, "np.ndarray"]:
    t0 = time.perf_counter()
    result = allreduce_sweep(PROTO16, **SWEEP_KW, jobs=jobs)
    return time.perf_counter() - t0, result.mean_us


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument(
        "--jobs", type=int, nargs="+", default=[1, 4],
        help="worker-process counts to time (default: 1 4)",
    )
    args = parser.parse_args(argv)

    runs = []
    baseline_mean = None
    baseline_wall = None
    for jobs in args.jobs:
        wall, mean_us = time_sweep(jobs)
        if baseline_mean is None:
            baseline_mean, baseline_wall = mean_us, wall
        elif not np.array_equal(mean_us, baseline_mean):
            print(f"FAIL: jobs={jobs} result differs from jobs={args.jobs[0]}")
            return 1
        runs.append({
            "jobs": jobs,
            "wall_s": round(wall, 3),
            "speedup_vs_jobs1": round(baseline_wall / wall, 2),
        })
        print(f"jobs={jobs}: {wall:.2f}s  (x{baseline_wall / wall:.2f})")

    report = {
        "benchmark": "proto16 quick sweep via TrialRunner",
        "sweep": {
            "scenario": "proto16",
            "proc_counts": list(SWEEP_KW["proc_counts"]),
            "n_calls": SWEEP_KW["n_calls"],
            "n_seeds": SWEEP_KW["n_seeds"],
            "trials": len(SWEEP_KW["proc_counts"]) * SWEEP_KW["n_seeds"],
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "bit_identical_across_jobs": True,
        "runs": runs,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"[wrote {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
