"""T4: ALE3D — naive co-scheduling hurts (I/O starvation); the tuned
priority placement wins.

Paper: naive co-scheduling "actually slowed it down" (starved I/O
daemons); with the favored priority just above the I/O daemons, run time
dropped 24% (1315 s -> 1152 s at 944 processors).
"""

from benchmarks.conftest import run_once
from repro.experiments.ale3d_io import format_ale3d_io, run_ale3d_io


def test_bench_ale3d_io_priorities(benchmark, show):
    res = run_once(benchmark, run_ale3d_io)
    show(format_ale3d_io(res))
    # The fiasco: favored above the I/O daemons is SLOWER than no
    # co-scheduling at all, and the loss is in I/O time.
    assert res.naive_slowdown > 1.0
    assert res.naive_io_us > 2.0 * res.vanilla_io_us
    # The fix: favored just below the I/O daemons beats vanilla by
    # roughly the paper's 24%.
    assert 10.0 <= res.tuned_improvement_percent <= 45.0
