"""Engine performance harness: events/sec plus subsystem attribution.

This is the perf-regression counterpart of the DES hot-path work: it pins
the engine's event rate (the first-class scalability metric of the DES
literature this repo leans on) in ``BENCH_engine.json`` so future PRs can
see at a glance whether they moved it, and in which subsystem the cycles
went.

Four scenarios, each chosen to exercise one hot layer:

* ``event_churn`` — a pure schedule→fire chain: the heap and dispatch
  loop with no model on top (peak attainable event rate).
* ``cancel_churn`` — a preemption-shaped workload where most scheduled
  events are cancelled before firing: lazy deletion + compaction.
* ``cluster_des`` — the full stack (kernel dispatcher, ticks, MPI, net,
  daemons) at 64 ranks: the realistic blended rate.
* ``fig4_attribution`` — the Figure-4 trace-attribution sweep: the
  interval index's O(log I + k) window queries.

With ``--profile``, the cluster scenario additionally runs under cProfile
and the JSON gains a per-subsystem attribution of engine time (fractions
of total tottime by ``repro.<subsystem>``) — the "where did the cycles
go" view that motivated this harness.

Each invocation appends one labelled entry to the ``history`` list of the
output file (creating it if missing), so before/after comparisons live in
the artifact itself::

    PYTHONPATH=src python benchmarks/bench_engine.py --label "tuple heap"
    PYTHONPATH=.bl/src python benchmarks/bench_engine.py --label "seed"
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import platform
import pstats
import subprocess
import sys
import time


def _build_cluster():
    from repro.config import ClusterConfig, MachineConfig, MpiConfig
    from repro.daemons.catalog import scale_noise, standard_noise
    from repro.system import System

    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=4, cpus_per_node=16),
        mpi=MpiConfig(progress_threads_enabled=False),
        noise=scale_noise(standard_noise(include_cron=False), 30.0),
        seed=1,
    )
    return System(cfg)


def bench_event_churn(n_events: int = 200_000) -> dict:
    """Peak heap throughput: one event always pending, fire→schedule chain."""
    from repro.sim.core import Simulator

    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    assert count[0] == n_events
    return {"events": n_events, "wall_s": round(wall, 4),
            "events_per_s": round(n_events / wall)}


def bench_cancel_churn(n_rounds: int = 100_000) -> dict:
    """Preemption-shaped load: every fired event cancels a decoy.

    Each round schedules a decoy far in the future and cancels the
    previous round's decoy, so the heap continuously accretes dead
    entries the way the dispatcher's cancel-and-reschedule of compute
    completions does.  Exercises lazy deletion and compaction; also
    reports the peak raw heap length as a boundedness signal.
    """
    from repro.sim.core import Simulator

    sim = Simulator()
    state = {"round": 0, "decoy": None, "peak_heap": 0}

    def nop():  # pragma: no cover - decoys never fire
        raise AssertionError("decoy fired")

    def tick():
        state["round"] += 1
        if state["decoy"] is not None:
            state["decoy"].cancel()
        if len(sim._heap) > state["peak_heap"]:
            state["peak_heap"] = len(sim._heap)
        if state["round"] < n_rounds:
            state["decoy"] = sim.schedule(1e12, nop)
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "rounds": n_rounds,
        "wall_s": round(wall, 4),
        "events_per_s": round(n_rounds / wall),
        "peak_heap_entries": state["peak_heap"],
        "final_pending": sim.pending,
    }


def bench_cluster_des(profile: bool = False) -> tuple[dict, dict | None]:
    """Blended full-stack rate; optionally with subsystem attribution.

    The events/sec figure always comes from an unprofiled run; with
    *profile* a second, separate run gathers the cProfile attribution so
    tracing overhead never contaminates the recorded rate.
    """
    from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace

    def run_once(prof: cProfile.Profile | None):
        system = _build_cluster()
        t0 = time.perf_counter()
        if prof is not None:
            prof.enable()
        run_aggregate_trace(
            system, 64, 16,
            AggregateTraceConfig(calls_per_loop=150, compute_between_us=200.0),
        )
        if prof is not None:
            prof.disable()
        return time.perf_counter() - t0, system.sim.events_processed

    wall, events = run_once(None)
    result = {
        "ranks": 64,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall),
    }
    attribution = None
    if profile:
        prof = cProfile.Profile()
        run_once(prof)
        attribution = _subsystem_attribution(prof)
    return result, attribution


def _subsystem_attribution(prof: cProfile.Profile) -> dict:
    """Fold cProfile tottime into fractions by repro.<subsystem>."""
    stats = pstats.Stats(prof)
    by_subsystem: dict[str, float] = {}
    total = 0.0
    for (filename, _lineno, _fn), (_cc, _nc, tottime, _ct, _callers) in stats.stats.items():
        total += tottime
        marker = os.sep + "repro" + os.sep
        if marker in filename:
            sub = filename.split(marker, 1)[1].split(os.sep)[0].removesuffix(".py")
        elif filename.startswith("<") or "python" in filename.lower():
            sub = "(interpreter)"
        else:
            sub = "(other)"
        by_subsystem[sub] = by_subsystem.get(sub, 0.0) + tottime
    if total <= 0:
        return {}
    out = {k: round(v / total, 4) for k, v in
           sorted(by_subsystem.items(), key=lambda kv: -kv[1])}
    out["_total_tottime_s"] = round(total, 3)
    return out


def bench_policy_dispatch() -> dict:
    """Dispatch-core cost across the SchedPolicy zoo, aix first.

    A deliberately dispatch-bound shape: no daemon noise, every CPU
    occupied by a rank, short compute bursts — so context switches,
    queue ops, and the policy's place/pick/on_tick hooks dominate the
    event mix.  The ``aix`` rate here is the guard for the
    policy-extraction refactor: its indirection must stay within noise
    (≤3%) of the pre-refactor hard-coded dispatcher, measured via
    :func:`bench_cluster_des` on the same machine state.  The other
    policies are recorded for context, not guarded — e.g. ``fair``
    legitimately pays for vruntime bookkeeping per queue op.
    """
    from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
    from repro.config import ClusterConfig, KernelConfig, MachineConfig, MpiConfig
    from repro.kernel.policy import policy_names
    from repro.system import System

    out = {}
    for policy in policy_names():
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=2, cpus_per_node=8),
            kernel=KernelConfig(policy=policy),
            mpi=MpiConfig(progress_threads_enabled=False),
            seed=3,
        )
        system = System(cfg)
        t0 = time.perf_counter()
        run_aggregate_trace(
            system, 16, 8,
            AggregateTraceConfig(calls_per_loop=120, compute_between_us=150.0),
        )
        wall = time.perf_counter() - t0
        events = system.sim.events_processed
        out[policy] = {
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_s": round(events / wall),
        }
    aix = out["aix"]["events_per_s"]
    out["relative_to_aix"] = {
        name: round(out[name]["events_per_s"] / aix, 3)
        for name in out if name != "aix" and "events_per_s" in out[name]
    }
    return out


def bench_fig4_attribution() -> dict:
    """The Figure-4 analysis shape: many windows against one dense trace.

    Synthetic but dimensioned like the real run (one node, ~30k recorded
    intervals, 448 windows), isolating the interval-index query cost from
    DES noise.  Deterministic: no RNG, so the checksum pins equivalence
    across engine versions as well as speed.
    """
    from repro.trace.analysis import attribute_window
    from repro.trace.recorder import RunInterval, TraceRecorder

    trace = TraceRecorder(enabled=True)
    names = ["app.rank0", "syncd", "mmfsd", "hatsd", "cron_health"]
    cats = ["app", "daemon", "daemon", "daemon", "daemon"]
    t = 0.0
    for i in range(30_000):
        j = i % 5
        dur = 40.0 + (i % 17)
        trace.intervals.append(
            RunInterval(0, i % 16, j, names[j], cats[j], t, t + dur)
        )
        t += dur * 0.25  # overlapping occupancy across 16 CPUs
    span = t
    windows = [
        (k * span / 448.0, (k + 1) * span / 448.0 + 500.0) for k in range(448)
    ]
    t0 = time.perf_counter()
    checksum = 0.0
    for w0, w1 in windows:
        att = attribute_window(trace, 0, w0, w1)
        checksum += att.interference_us
    wall = time.perf_counter() - t0
    return {
        "intervals": len(trace.intervals),
        "windows": len(windows),
        "wall_s": round(wall, 4),
        "windows_per_s": round(len(windows) / wall),
        "interference_checksum_us": round(checksum, 6),
    }


def bench_fig4_end_to_end() -> dict:
    """Full run_fig4 at the paper's default 944 ranks: the acceptance metric."""
    import hashlib

    from repro.experiments.fig4 import run_fig4

    t0 = time.perf_counter()
    res = run_fig4()
    wall = time.perf_counter() - t0
    return {
        "n_ranks": res.n_ranks,
        "wall_s": round(wall, 3),
        "result_digest": hashlib.sha256(
            res.sorted_durations_us.tobytes()
        ).hexdigest(),
        "slowest_culprit": res.slowest_culprit,
    }


def bench_meanfield() -> dict:
    """The mean-field accuracy/speed curve (E14, quick grid).

    This is the published artifact for the fast path: per batch factor,
    the event-count reduction and wall speedup against the exact engine,
    with the sorted-curve error quantiles that price the approximation.
    The oracle gate (batch=1 digest == exact digest) rides along, so a
    regression that silently changes the exact path shows up here too.
    """
    from repro.experiments.e14_meanfield import run_e14

    res = run_e14(quick=True)
    return {
        "n_ranks": res.n_ranks,
        "n_nodes": res.n_nodes,
        "oracle_ok": res.oracle_ok,
        "exact_events": res.exact_events,
        "exact_wall_s": round(res.exact_wall_s, 3),
        "curve": [
            {
                "batch": res.batches[i],
                "events": res.events[i],
                "event_reduction": round(res.event_reduction[i], 3),
                "wall_speedup": round(res.wall_speedup[i], 3),
                "elapsed_dev_pct": round(res.elapsed_dev_pct[i], 3),
                "mean_dev_pct": round(res.mean_dev_pct[i], 3),
                "curve_err_p50_pct": round(res.curve_err_p50_pct[i], 3),
                "curve_err_p90_pct": round(res.curve_err_p90_pct[i], 3),
            }
            for i in range(len(res.batches))
        ],
    }


def bench_sharded_des(shards: int = 2) -> dict:
    """Conservative parallel DES across real worker processes.

    The *correctness* half always runs: an N-shard run's result digest
    must equal the serial run's, byte for byte.  The *speedup* half is
    only meaningful when the machine actually has a core per shard —
    on smaller boxes it is skipped with an honest annotation instead of
    recording a "slowdown" that is really just oversubscription.
    """
    from repro.experiments.pdes import run_pdes

    cpus = os.cpu_count() or 1
    serial = run_pdes(shards=1, quick=True)
    sharded = run_pdes(shards=shards, quick=True)
    out = {
        "shards": shards,
        "n_ranks": serial.n_ranks,
        "digest_match": serial.digest == sharded.digest,
        "serial_wall_s": round(serial.wall_s, 3),
        "sharded_wall_s": round(sharded.wall_s, 3),
        "events_per_shard": sharded.events_per_shard,
        "supersteps": sharded.supersteps,
        "messages_crossed": sharded.messages_crossed,
    }
    if cpus < shards:
        out["speedup"] = None
        out["skipped"] = (
            f"cpu_count {cpus} < shards {shards}: wall-clock speedup is not "
            "measurable on this machine (workers time-share one core); "
            "digest equivalence still verified"
        )
    else:
        out["speedup"] = round(serial.wall_s / sharded.wall_s, 3)
    return out


def bench_white_meanfield() -> dict:
    """White-scale fig4-style run: 8192 CPUs (512 nodes x 16), exact vs
    mean-field.  The headline claim — noise-dominated White-scale runs at
    >=5x — priced with the makespan/mean deviation of the batched run.
    Minutes of wall; opt-in via --white.
    """
    import numpy as np

    from repro.daemons.catalog import scale_noise, standard_noise
    from repro.experiments.common import VANILLA16, make_config
    from repro.sim.meanfield import MeanFieldConfig
    from repro.sim.parallel import run_parallel
    from repro.units import s as sec

    n_ranks = 8192
    noise = scale_noise(standard_noise(include_cron=False), 50.0)
    cfg = make_config(VANILLA16, n_ranks=n_ranks, noise=noise, seed=1234)
    params = dict(loops=1, calls_per_loop=4, trace_block=64,
                  compute_between_us=40000.0, payload_bytes=8,
                  record_nodes=(0,))

    def one(mf):
        t0 = time.perf_counter()
        r = run_parallel(cfg, n_ranks=n_ranks, tasks_per_node=16,
                         app="repro.apps.aggregate_trace:sharded_app",
                         app_params=params, shards=1, horizon_us=sec(600),
                         meanfield=mf, use_processes=False)
        return r, time.perf_counter() - t0

    exact, exact_wall = one(None)
    fast, fast_wall = one(MeanFieldConfig(batch=32, exempt_nodes=(0,)))
    e_sorted = np.sort(np.concatenate([np.asarray(v) for v in exact.ranks.values()]))
    f_sorted = np.sort(np.concatenate([np.asarray(v) for v in fast.ranks.values()]))
    return {
        "n_ranks": n_ranks,
        "n_nodes": cfg.machine.n_nodes,
        "batch": 32,
        "exact_events": sum(exact.events_per_shard),
        "fast_events": sum(fast.events_per_shard),
        "event_reduction": round(
            sum(exact.events_per_shard) / sum(fast.events_per_shard), 3
        ),
        "exact_wall_s": round(exact_wall, 1),
        "fast_wall_s": round(fast_wall, 1),
        "wall_speedup": round(exact_wall / fast_wall, 3),
        "elapsed_dev_pct": round(
            (fast.elapsed_us - exact.elapsed_us) / exact.elapsed_us * 100, 3
        ),
        "mean_dev_pct": round(
            (float(f_sorted.mean()) - float(e_sorted.mean()))
            / float(e_sorted.mean()) * 100, 3
        ),
    }


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=os.path.dirname(__file__) or ".",
        ).stdout.strip() or "unknown"
    except OSError:  # pragma: no cover - git missing
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--label", default=None,
                        help="history entry label (default: the git commit)")
    parser.add_argument("--profile", action="store_true",
                        help="run the cluster scenario under cProfile and "
                             "record per-subsystem attribution")
    parser.add_argument("--fig4", action="store_true",
                        help="also time the full 944-rank run_fig4 "
                             "(the PR acceptance metric; ~seconds)")
    parser.add_argument("--fresh", action="store_true",
                        help="start a new history instead of appending")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for the sharded_des scenario "
                             "(default: 2)")
    parser.add_argument("--white", action="store_true",
                        help="also run the White-scale (8192-CPU) "
                             "exact-vs-meanfield comparison (~minutes)")
    args = parser.parse_args(argv)

    commit = _git_commit()
    entry = {
        "label": args.label or commit,
        "commit": commit,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # Recorded per entry, not just in the (latest-run) environment
        # block: history accretes across machines, and a speedup number
        # is only interpretable next to the core count that produced it.
        "cpu_count": os.cpu_count(),
        "scenarios": {},
    }
    print(f"[bench_engine] label={entry['label']} commit={commit}")

    entry["scenarios"]["event_churn"] = r = bench_event_churn()
    print(f"  event_churn      : {r['events_per_s'] / 1e6:.2f} M events/s")
    entry["scenarios"]["cancel_churn"] = r = bench_cancel_churn()
    print(f"  cancel_churn     : {r['events_per_s'] / 1e6:.2f} M rounds/s "
          f"(peak heap {r['peak_heap_entries']})")
    cluster, attribution = bench_cluster_des(profile=args.profile)
    entry["scenarios"]["cluster_des"] = cluster
    print(f"  cluster_des      : {cluster['events_per_s'] / 1e3:.0f} k events/s "
          f"({cluster['events']} events)")
    if attribution is not None:
        entry["subsystem_attribution"] = attribution
        top = [f"{k} {v:.0%}" for k, v in attribution.items()
               if not k.startswith("_")][:5]
        print(f"  profile          : {', '.join(top)}")
    entry["scenarios"]["policy_dispatch"] = r = bench_policy_dispatch()
    rates = ", ".join(
        f"{k} {v['events_per_s'] / 1e3:.0f}k"
        for k, v in r.items() if k != "relative_to_aix"
    )
    print(f"  policy_dispatch  : {rates} events/s")
    entry["scenarios"]["fig4_attribution"] = r = bench_fig4_attribution()
    print(f"  fig4_attribution : {r['windows_per_s']} windows/s over "
          f"{r['intervals']} intervals")
    entry["scenarios"]["meanfield"] = r = bench_meanfield()
    best = r["curve"][-1]
    print(f"  meanfield        : oracle {'PASS' if r['oracle_ok'] else 'FAIL'}, "
          f"batch {best['batch']}: {best['event_reduction']}x events, "
          f"{best['wall_speedup']}x wall, "
          f"curve p90 err {best['curve_err_p90_pct']}%")
    entry["scenarios"]["sharded_des"] = r = bench_sharded_des(shards=args.shards)
    if r.get("skipped"):
        print(f"  sharded_des      : digest_match={r['digest_match']} "
              f"(speedup skipped: {r['skipped'].split(':')[0]})")
    else:
        print(f"  sharded_des      : digest_match={r['digest_match']}, "
              f"{r['speedup']}x wall on {r['shards']} shards")
    if args.white:
        entry["scenarios"]["white_meanfield"] = r = bench_white_meanfield()
        print(f"  white_meanfield  : {r['event_reduction']}x events, "
              f"{r['wall_speedup']}x wall at {r['n_ranks']} ranks "
              f"(elapsed dev {r['elapsed_dev_pct']}%)")
    if args.fig4:
        entry["scenarios"]["fig4_end_to_end"] = r = bench_fig4_end_to_end()
        print(f"  fig4_end_to_end  : {r['wall_s']}s, digest "
              f"{r['result_digest'][:16]}…")

    report = {
        "benchmark": "DES engine hot paths (events/sec + attribution)",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "history": [],
    }
    if not args.fresh and os.path.exists(args.out):
        try:
            with open(args.out) as fh:
                prior = json.load(fh)
            report["history"] = prior.get("history", [])
        except (OSError, ValueError):
            pass
    report["history"].append(entry)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"[wrote {args.out}: {len(report['history'])} history entries]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
