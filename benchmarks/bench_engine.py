"""Engine performance harness: events/sec plus subsystem attribution.

This is the perf-regression counterpart of the DES hot-path work: it pins
the engine's event rate (the first-class scalability metric of the DES
literature this repo leans on) in ``BENCH_engine.json`` so future PRs can
see at a glance whether they moved it, and in which subsystem the cycles
went.

Four scenarios, each chosen to exercise one hot layer:

* ``event_churn`` — a pure schedule→fire chain: the heap and dispatch
  loop with no model on top (peak attainable event rate).
* ``cancel_churn`` — a preemption-shaped workload where most scheduled
  events are cancelled before firing: lazy deletion + compaction.
* ``cluster_des`` — the full stack (kernel dispatcher, ticks, MPI, net,
  daemons) at 64 ranks: the realistic blended rate.
* ``fig4_attribution`` — the Figure-4 trace-attribution sweep: the
  interval index's O(log I + k) window queries.

With ``--profile``, the cluster scenario additionally runs under cProfile
and the JSON gains a per-subsystem attribution of engine time (fractions
of total tottime by ``repro.<subsystem>``) — the "where did the cycles
go" view that motivated this harness.

Each invocation appends one labelled entry to the ``history`` list of the
output file (creating it if missing), so before/after comparisons live in
the artifact itself::

    PYTHONPATH=src python benchmarks/bench_engine.py --label "tuple heap"
    PYTHONPATH=.bl/src python benchmarks/bench_engine.py --label "seed"
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import platform
import pstats
import subprocess
import sys
import time


def _build_cluster():
    from repro.config import ClusterConfig, MachineConfig, MpiConfig
    from repro.daemons.catalog import scale_noise, standard_noise
    from repro.system import System

    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=4, cpus_per_node=16),
        mpi=MpiConfig(progress_threads_enabled=False),
        noise=scale_noise(standard_noise(include_cron=False), 30.0),
        seed=1,
    )
    return System(cfg)


def bench_event_churn(n_events: int = 200_000) -> dict:
    """Peak heap throughput: one event always pending, fire→schedule chain."""
    from repro.sim.core import Simulator

    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    assert count[0] == n_events
    return {"events": n_events, "wall_s": round(wall, 4),
            "events_per_s": round(n_events / wall)}


def bench_cancel_churn(n_rounds: int = 100_000) -> dict:
    """Preemption-shaped load: every fired event cancels a decoy.

    Each round schedules a decoy far in the future and cancels the
    previous round's decoy, so the heap continuously accretes dead
    entries the way the dispatcher's cancel-and-reschedule of compute
    completions does.  Exercises lazy deletion and compaction; also
    reports the peak raw heap length as a boundedness signal.
    """
    from repro.sim.core import Simulator

    sim = Simulator()
    state = {"round": 0, "decoy": None, "peak_heap": 0}

    def nop():  # pragma: no cover - decoys never fire
        raise AssertionError("decoy fired")

    def tick():
        state["round"] += 1
        if state["decoy"] is not None:
            state["decoy"].cancel()
        if len(sim._heap) > state["peak_heap"]:
            state["peak_heap"] = len(sim._heap)
        if state["round"] < n_rounds:
            state["decoy"] = sim.schedule(1e12, nop)
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "rounds": n_rounds,
        "wall_s": round(wall, 4),
        "events_per_s": round(n_rounds / wall),
        "peak_heap_entries": state["peak_heap"],
        "final_pending": sim.pending,
    }


def bench_cluster_des(profile: bool = False) -> tuple[dict, dict | None]:
    """Blended full-stack rate; optionally with subsystem attribution.

    The events/sec figure always comes from an unprofiled run; with
    *profile* a second, separate run gathers the cProfile attribution so
    tracing overhead never contaminates the recorded rate.
    """
    from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace

    def run_once(prof: cProfile.Profile | None):
        system = _build_cluster()
        t0 = time.perf_counter()
        if prof is not None:
            prof.enable()
        run_aggregate_trace(
            system, 64, 16,
            AggregateTraceConfig(calls_per_loop=150, compute_between_us=200.0),
        )
        if prof is not None:
            prof.disable()
        return time.perf_counter() - t0, system.sim.events_processed

    wall, events = run_once(None)
    result = {
        "ranks": 64,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall),
    }
    attribution = None
    if profile:
        prof = cProfile.Profile()
        run_once(prof)
        attribution = _subsystem_attribution(prof)
    return result, attribution


def _subsystem_attribution(prof: cProfile.Profile) -> dict:
    """Fold cProfile tottime into fractions by repro.<subsystem>."""
    stats = pstats.Stats(prof)
    by_subsystem: dict[str, float] = {}
    total = 0.0
    for (filename, _lineno, _fn), (_cc, _nc, tottime, _ct, _callers) in stats.stats.items():
        total += tottime
        marker = os.sep + "repro" + os.sep
        if marker in filename:
            sub = filename.split(marker, 1)[1].split(os.sep)[0].removesuffix(".py")
        elif filename.startswith("<") or "python" in filename.lower():
            sub = "(interpreter)"
        else:
            sub = "(other)"
        by_subsystem[sub] = by_subsystem.get(sub, 0.0) + tottime
    if total <= 0:
        return {}
    out = {k: round(v / total, 4) for k, v in
           sorted(by_subsystem.items(), key=lambda kv: -kv[1])}
    out["_total_tottime_s"] = round(total, 3)
    return out


def bench_policy_dispatch() -> dict:
    """Dispatch-core cost across the SchedPolicy zoo, aix first.

    A deliberately dispatch-bound shape: no daemon noise, every CPU
    occupied by a rank, short compute bursts — so context switches,
    queue ops, and the policy's place/pick/on_tick hooks dominate the
    event mix.  The ``aix`` rate here is the guard for the
    policy-extraction refactor: its indirection must stay within noise
    (≤3%) of the pre-refactor hard-coded dispatcher, measured via
    :func:`bench_cluster_des` on the same machine state.  The other
    policies are recorded for context, not guarded — e.g. ``fair``
    legitimately pays for vruntime bookkeeping per queue op.
    """
    from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
    from repro.config import ClusterConfig, KernelConfig, MachineConfig, MpiConfig
    from repro.kernel.policy import policy_names
    from repro.system import System

    out = {}
    for policy in policy_names():
        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=2, cpus_per_node=8),
            kernel=KernelConfig(policy=policy),
            mpi=MpiConfig(progress_threads_enabled=False),
            seed=3,
        )
        system = System(cfg)
        t0 = time.perf_counter()
        run_aggregate_trace(
            system, 16, 8,
            AggregateTraceConfig(calls_per_loop=120, compute_between_us=150.0),
        )
        wall = time.perf_counter() - t0
        events = system.sim.events_processed
        out[policy] = {
            "events": events,
            "wall_s": round(wall, 4),
            "events_per_s": round(events / wall),
        }
    aix = out["aix"]["events_per_s"]
    out["relative_to_aix"] = {
        name: round(out[name]["events_per_s"] / aix, 3)
        for name in out if name != "aix" and "events_per_s" in out[name]
    }
    return out


def bench_fig4_attribution() -> dict:
    """The Figure-4 analysis shape: many windows against one dense trace.

    Synthetic but dimensioned like the real run (one node, ~30k recorded
    intervals, 448 windows), isolating the interval-index query cost from
    DES noise.  Deterministic: no RNG, so the checksum pins equivalence
    across engine versions as well as speed.
    """
    from repro.trace.analysis import attribute_window
    from repro.trace.recorder import RunInterval, TraceRecorder

    trace = TraceRecorder(enabled=True)
    names = ["app.rank0", "syncd", "mmfsd", "hatsd", "cron_health"]
    cats = ["app", "daemon", "daemon", "daemon", "daemon"]
    t = 0.0
    for i in range(30_000):
        j = i % 5
        dur = 40.0 + (i % 17)
        trace.intervals.append(
            RunInterval(0, i % 16, j, names[j], cats[j], t, t + dur)
        )
        t += dur * 0.25  # overlapping occupancy across 16 CPUs
    span = t
    windows = [
        (k * span / 448.0, (k + 1) * span / 448.0 + 500.0) for k in range(448)
    ]
    t0 = time.perf_counter()
    checksum = 0.0
    for w0, w1 in windows:
        att = attribute_window(trace, 0, w0, w1)
        checksum += att.interference_us
    wall = time.perf_counter() - t0
    return {
        "intervals": len(trace.intervals),
        "windows": len(windows),
        "wall_s": round(wall, 4),
        "windows_per_s": round(len(windows) / wall),
        "interference_checksum_us": round(checksum, 6),
    }


def bench_fig4_end_to_end() -> dict:
    """Full run_fig4 at the paper's default 944 ranks: the acceptance metric."""
    import hashlib

    from repro.experiments.fig4 import run_fig4

    t0 = time.perf_counter()
    res = run_fig4()
    wall = time.perf_counter() - t0
    return {
        "n_ranks": res.n_ranks,
        "wall_s": round(wall, 3),
        "result_digest": hashlib.sha256(
            res.sorted_durations_us.tobytes()
        ).hexdigest(),
        "slowest_culprit": res.slowest_culprit,
    }


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=os.path.dirname(__file__) or ".",
        ).stdout.strip() or "unknown"
    except OSError:  # pragma: no cover - git missing
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--label", default=None,
                        help="history entry label (default: the git commit)")
    parser.add_argument("--profile", action="store_true",
                        help="run the cluster scenario under cProfile and "
                             "record per-subsystem attribution")
    parser.add_argument("--fig4", action="store_true",
                        help="also time the full 944-rank run_fig4 "
                             "(the PR acceptance metric; ~seconds)")
    parser.add_argument("--fresh", action="store_true",
                        help="start a new history instead of appending")
    args = parser.parse_args(argv)

    commit = _git_commit()
    entry = {
        "label": args.label or commit,
        "commit": commit,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scenarios": {},
    }
    print(f"[bench_engine] label={entry['label']} commit={commit}")

    entry["scenarios"]["event_churn"] = r = bench_event_churn()
    print(f"  event_churn      : {r['events_per_s'] / 1e6:.2f} M events/s")
    entry["scenarios"]["cancel_churn"] = r = bench_cancel_churn()
    print(f"  cancel_churn     : {r['events_per_s'] / 1e6:.2f} M rounds/s "
          f"(peak heap {r['peak_heap_entries']})")
    cluster, attribution = bench_cluster_des(profile=args.profile)
    entry["scenarios"]["cluster_des"] = cluster
    print(f"  cluster_des      : {cluster['events_per_s'] / 1e3:.0f} k events/s "
          f"({cluster['events']} events)")
    if attribution is not None:
        entry["subsystem_attribution"] = attribution
        top = [f"{k} {v:.0%}" for k, v in attribution.items()
               if not k.startswith("_")][:5]
        print(f"  profile          : {', '.join(top)}")
    entry["scenarios"]["policy_dispatch"] = r = bench_policy_dispatch()
    rates = ", ".join(
        f"{k} {v['events_per_s'] / 1e3:.0f}k"
        for k, v in r.items() if k != "relative_to_aix"
    )
    print(f"  policy_dispatch  : {rates} events/s")
    entry["scenarios"]["fig4_attribution"] = r = bench_fig4_attribution()
    print(f"  fig4_attribution : {r['windows_per_s']} windows/s over "
          f"{r['intervals']} intervals")
    if args.fig4:
        entry["scenarios"]["fig4_end_to_end"] = r = bench_fig4_end_to_end()
        print(f"  fig4_end_to_end  : {r['wall_s']}s, digest "
              f"{r['result_digest'][:16]}…")

    report = {
        "benchmark": "DES engine hot paths (events/sec + attribution)",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "history": [],
    }
    if not args.fresh and os.path.exists(args.out):
        try:
            with open(args.out) as fh:
                prior = json.load(fh)
            report["history"] = prior.get("history", [])
        except (OSError, ValueError):
            pass
    report["history"].append(entry)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"[wrote {args.out}: {len(report['history'])} history entries]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
