"""Result serialisation: experiment outputs ↔ JSON.

Experiment runners return plain dataclasses (possibly holding numpy
arrays).  This module round-trips them through JSON so sweeps can be
archived next to EXPERIMENTS.md, diffed across calibrations, or re-plotted
without re-simulating.

The format is deliberately simple: ``{"type": <registered name>,
"fields": {...}}`` with numpy arrays stored as lists and rebuilt on load.
Only registered result types load back as objects; anything else raises —
loading should never silently produce a half-typed dict.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Type

import numpy as np

__all__ = [
    "register_result",
    "save_result",
    "load_result",
    "to_jsonable",
    "canonical_dumps",
    "atomic_write_text",
    "REGISTRY",
]

#: name -> dataclass for reconstruction.
REGISTRY: dict[str, Type] = {}


def register_result(cls: Type) -> Type:
    """Class decorator/registrar making a result dataclass serialisable."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    REGISTRY[cls.__name__] = cls
    return cls


def to_jsonable(value: Any, fallback=None) -> Any:
    """Recursively convert dataclasses/arrays/tuples to JSON-native data.

    *fallback*, when given, is applied to any value this function cannot
    serialise instead of raising; it must return JSON-able data (its
    result is converted recursively too).  The store's fingerprint layer
    uses it to encode callables in trial params by qualified name.
    """
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "type": type(value).__name__,
            "fields": {
                f.name: to_jsonable(getattr(value, f.name), fallback)
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v, fallback) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v, fallback) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if fallback is not None:
        return to_jsonable(fallback(value), fallback)
    raise TypeError(f"cannot serialise {type(value).__name__}: {value!r}")


def canonical_dumps(obj: Any) -> str:
    """*The* canonical JSON encoding: one byte sequence per value.

    Everything that is hashed or checksummed — store record bytes, spec
    fingerprints (:mod:`repro.store`) — must go through this function so
    "same data" always means "same bytes": keys sorted, separators fixed
    (no whitespace), unicode kept as-is.  NaN and Infinity are rejected
    with a clear error instead of being emitted as the non-JSON literals
    ``NaN``/``Infinity`` that :func:`json.dumps` writes by default —
    a fingerprint over non-interoperable bytes would be a landmine.

    Human-facing files (journal entries, archived results) keep their
    indented layouts; canonical bytes are for integrity, not for reading.
    """
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"),
            allow_nan=False, ensure_ascii=False,
        )
    except ValueError as exc:
        raise ValueError(
            "canonical JSON cannot encode NaN/Infinity (or other "
            f"out-of-range floats): {exc}"
        ) from exc


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value.get("dtype", "float64"))
        if "type" in value and "fields" in value:
            name = value["type"]
            cls = REGISTRY.get(name)
            if cls is None:
                raise KeyError(
                    f"unknown result type {name!r}; register it with register_result"
                )
            fields = {k: _from_jsonable(v) for k, v in value["fields"].items()}
            return cls(**fields)
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


def atomic_write_text(path, write_fn) -> None:
    """Crash-safe text write: *write_fn(fh)* streams into a temp file in
    the destination directory, which is fsynced and renamed over *path*.

    A crash (or an exception from *write_fn*) at any point leaves either
    the previous file intact or the new file whole — never a truncated
    mix — and cleans up the temp file.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_result(path, result: Any) -> None:
    """Write a registered result dataclass (or a dict of them) as JSON.

    The write is atomic: a crash mid-serialisation (hours into a sweep)
    cannot truncate or corrupt a previously saved file.
    """
    atomic_write_text(path, lambda fh: json.dump(to_jsonable(result), fh, indent=1))


def load_result(path) -> Any:
    """Load a result written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as fh:
        return _from_jsonable(json.load(fh))


def _register_builtin_results() -> None:
    """Register the experiment result types shipped with the package."""
    from repro.experiments.ablation import AblationResult
    from repro.experiments.ale3d_io import Ale3dIoResult
    from repro.experiments.common import SweepResult
    from repro.experiments.extensions import (
        FineGrainResult,
        HwCollectivesResult,
        MisalignmentResult,
        MultijobResult,
    )
    from repro.experiments.e9_resume import E9Result
    from repro.experiments.fig1 import Fig1Result
    from repro.experiments.resilience import ResilienceResult
    from repro.experiments.speedup import SpeedupResult
    from repro.experiments.timer_threads import TimerThreadsResult
    from repro.experiments.workloads import SensitivityResult, WaitModeResult

    for cls in (
        SweepResult,
        Fig1Result,
        SpeedupResult,
        TimerThreadsResult,
        Ale3dIoResult,
        AblationResult,
        MultijobResult,
        HwCollectivesResult,
        FineGrainResult,
        MisalignmentResult,
        WaitModeResult,
        SensitivityResult,
        ResilienceResult,
        E9Result,
    ):
        register_result(cls)


_register_builtin_results()
