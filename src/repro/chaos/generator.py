"""Seed-deterministic random fault-schedule generation.

One campaign seed → one :class:`~repro.chaos.schedule.ChaosSchedule`,
always the same one.  Every axis draws from its own named
:mod:`repro.rng` stream (``chaos.net``, ``chaos.node``,
``chaos.cosched``, ``chaos.timesync``, ``chaos.pipe``,
``chaos.policy``) derived from the
schedule seed — the same variance-isolation discipline the injector
itself uses — so regenerating a schedule is exact, and widening one
axis's draw logic in a future PR cannot silently reshuffle the scenarios
another axis produces for existing seeds.

Intensities are drawn from mixtures biased toward the interesting
regime: mostly mild faults (the system should shrug them off inside the
oracle bounds) with a heavy tail (drop storms, full-period crashes,
all-node daemon kills) that actually leans on the resilience layer.
Fault times land inside the span the analytic model predicts the run to
occupy, so scheduled faults hit a live job instead of firing after rank
0 has already exited.
"""

from __future__ import annotations

from repro.chaos.oracles import analytic_call_us
from repro.chaos.schedule import ChaosSchedule, ChaosWorkload
from repro.rng import StreamFactory
from repro.units import ms

__all__ = ["generate_schedule", "estimated_span_us"]


def estimated_span_us(workload: ChaosWorkload, seed: int = 0) -> float:
    """Model-predicted fault-free run length (µs) — the window fault
    times are drawn from.  At least two co-scheduler periods, so window
    machinery is always engaged by the time anything fires."""
    est = workload.calls * (
        workload.compute_between_us + analytic_call_us(workload, seed)
    )
    return max(est, 2.0 * workload.period_us)


def generate_schedule(seed: int, workload: ChaosWorkload) -> ChaosSchedule:
    """Draw the fault schedule for *seed* (pure function of its inputs)."""
    rngf = StreamFactory(seed)
    span = estimated_span_us(workload, seed)
    period = workload.period_us
    n_nodes = workload.n_nodes
    entries: list[dict] = []

    # -- network fabric (singleton axis) --------------------------------
    rng = rngf.stream("chaos.net")
    if float(rng.random()) < 0.55:
        entry = {"kind": "net"}
        if float(rng.random()) < 0.60:
            mild = float(rng.random()) < 0.60
            # Heavy tail reaches genuine drop storms: with retransmit's
            # attempt cap at 6, only p large enough that p^6 × (in-window
            # protected sends) ≳ 1 ever exercises the guaranteed-path
            # last resort the resilience layer stakes its no-deadlock
            # claim on.
            entry["drop_prob"] = float(
                rng.uniform(0.005, 0.08) if mild else rng.uniform(0.30, 0.70)
            )
        if float(rng.random()) < 0.40:
            entry["dup_prob"] = float(rng.uniform(0.01, 0.30))
        if float(rng.random()) < 0.40:
            entry["delay_prob"] = float(rng.uniform(0.01, 0.30))
            entry["delay_us"] = float(rng.uniform(200.0, 4000.0))
        if len(entry) > 1:
            if float(rng.random()) < 0.50:
                entry["window_us"] = [0.0, span]
            else:
                lo = float(rng.uniform(0.0, 0.5 * span))
                entry["window_us"] = [lo, float(rng.uniform(lo + 0.1 * span, span))]
            entries.append(entry)

    # -- scheduled node faults ------------------------------------------
    rng = rngf.stream("chaos.node")
    for _ in range(int(rng.integers(0, 3))):
        kind = "crash" if float(rng.random()) < 0.5 else "slowdown"
        entry = {
            "kind": "node",
            "node": int(rng.integers(0, n_nodes)),
            "fault": kind,
            "at_us": float(rng.uniform(0.0, 0.8 * span)),
            "duration_us": float(rng.uniform(0.05, 0.6) * period),
        }
        if kind == "slowdown":
            entry["fraction"] = float(rng.uniform(0.2, 0.9))
        entries.append(entry)

    # -- co-scheduler daemon faults -------------------------------------
    rng = rngf.stream("chaos.cosched")
    n_cosched = int(rng.integers(0, 3))
    if n_cosched and float(rng.random()) < 0.25:
        # Heavy tail: the E8 worst case, kill the daemon on every node.
        at = float(rng.uniform(0.2, 0.8) * span)
        entries.extend(
            {"kind": "cosched", "node": n, "fault": "die", "at_us": at}
            for n in range(n_nodes)
        )
    else:
        for _ in range(n_cosched):
            kind = "die" if float(rng.random()) < 0.5 else "hang"
            entry = {
                "kind": "cosched",
                "node": int(rng.integers(0, n_nodes)),
                "fault": kind,
                "at_us": float(rng.uniform(0.0, 0.8 * span)),
            }
            if kind == "hang":
                entry["duration_us"] = float(rng.uniform(0.2, 1.5) * period)
            entries.append(entry)

    # -- timesync loss (singleton axis) ---------------------------------
    rng = rngf.stream("chaos.timesync")
    if float(rng.random()) < 0.25:
        entries.append(
            {
                "kind": "timesync",
                "at_us": float(rng.uniform(0.2, 0.7) * span),
                "jump_us": float(rng.uniform(0.0, 1.0) * period),
                "drift_rate": float(rng.uniform(0.0, 2e-4)),
            }
        )

    # -- control-pipe loss (singleton axis) -----------------------------
    rng = rngf.stream("chaos.pipe")
    if float(rng.random()) < 0.30:
        entries.append({"kind": "pipe", "prob": float(rng.uniform(0.02, 0.40))})

    # -- scheduling policy (singleton axis) -----------------------------
    # Not a fault: swaps the dispatch semantics under test so the
    # liveness/safety/determinism oracles sweep the whole policy matrix,
    # not just the paper's dispatcher.  Its own stream, like every axis:
    # adding this axis cannot reshuffle what older axes draw for a seed.
    rng = rngf.stream("chaos.policy")
    if float(rng.random()) < 0.35:
        name = ("fair", "quantum", "lottery")[int(rng.integers(0, 3))]
        entry = {"kind": "policy", "name": name}
        if name in ("quantum", "lottery") and float(rng.random()) < 0.5:
            entry["slice_us"] = float(rng.uniform(0.5, 3.0)) * ms(10)
        elif name == "fair" and float(rng.random()) < 0.5:
            entry["min_granularity_us"] = float(rng.uniform(0.2, 2.0)) * ms(10)
        entries.append(entry)

    return ChaosSchedule(seed=seed, workload=workload, entries=tuple(entries))
