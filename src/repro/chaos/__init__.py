"""Chaos campaign engine: randomized fault-schedule fuzzing with oracles.

Pipeline: :mod:`~repro.chaos.generator` draws seed-deterministic fault
schedules across every fault axis → :mod:`~repro.chaos.oracles` judges
each run for liveness, safety, and determinism → failures are minimized
by :mod:`~repro.chaos.shrink`'s ddmin → minimized counterexamples land in
the regression corpus (``tests/chaos_corpus/``) via
:mod:`~repro.chaos.campaign`, which also owns the campaign driver behind
``repro-experiments chaos``.

:mod:`~repro.chaos.harness_faults` points the same seed-stream discipline
at the execution substrate itself: deterministic worker-kill plans for
the supervised trial backend (``--harness-chaos``).
"""

from repro.chaos.campaign import (
    ChaosCampaignResult,
    chaos_workload,
    format_chaos,
    load_corpus_entry,
    replay_corpus_entry,
    run_chaos,
    save_corpus_entry,
)
from repro.chaos.generator import estimated_span_us, generate_schedule
from repro.chaos.oracles import (
    ORACLES,
    ChaosRunResult,
    OracleReport,
    judge,
    liveness_bound_us,
    run_schedule,
)
from repro.chaos.harness_faults import HarnessFault, injection_for, plan_for
from repro.chaos.schedule import ENTRY_KINDS, ChaosSchedule, ChaosWorkload
from repro.chaos.shrink import ShrinkResult, ddmin, shrink_schedule

__all__ = [
    "ENTRY_KINDS",
    "ORACLES",
    "ChaosCampaignResult",
    "ChaosRunResult",
    "ChaosSchedule",
    "ChaosWorkload",
    "HarnessFault",
    "OracleReport",
    "ShrinkResult",
    "chaos_workload",
    "ddmin",
    "estimated_span_us",
    "format_chaos",
    "generate_schedule",
    "injection_for",
    "judge",
    "liveness_bound_us",
    "load_corpus_entry",
    "plan_for",
    "replay_corpus_entry",
    "run_chaos",
    "run_schedule",
    "save_corpus_entry",
    "shrink_schedule",
]
