"""Oracles: judge one chaos run for liveness, safety, and determinism.

A randomized fault schedule has no hand-written expected value, so the
verdict has to come from properties any correct run must satisfy:

* **liveness** — the job completes within an analytic-model-derived time
  bound.  The bound starts from :class:`~repro.analytic.model.
  AllreduceSeriesModel`'s prediction for the same config/shape (the same
  model the validation anchors check against the DES) and adds explicit,
  generous allowances per fault entry (crash durations, watchdog
  detection latency, worst-case retransmit backoff chains, the
  uncoordinated-baseline blow-up after timesync loss).  A run that needs
  more than that is not "slow": it is a deadlocked collective, a lost
  wakeup, or a resilience path that never converged.
* **safety** — the full :class:`~repro.checkpoint.monitor.
  InvariantMonitor` pass is clean at end of run (run-queue discipline,
  CPU-time conservation, message conservation under retransmit,
  transport sequence accounting, co-scheduler window/priority
  bookkeeping), and every completed Allreduce produced the correct
  value.
* **determinism** — replaying the same schedule yields a bit-identical
  :func:`~repro.checkpoint.snapshot.state_fingerprint` (which folds in
  the trace digests and every RNG stream) and the same event count.

Oracles never mutate the run and draw no randomness, so judging a
schedule is itself deterministic — the property the campaign's
byte-identical-journal contract rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analytic.model import AllreduceSeriesModel
from repro.apps.aggregate_trace import AggregateTraceConfig, aggregate_trace_body
from repro.checkpoint.monitor import InvariantMonitor
from repro.checkpoint.snapshot import capture_state, state_fingerprint
from repro.chaos.schedule import ChaosSchedule, ChaosWorkload
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    FaultConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.system import System
from repro.trace.recorder import TraceRecorder

__all__ = [
    "ORACLES",
    "OracleReport",
    "ChaosRunResult",
    "build_cluster_config",
    "analytic_call_us",
    "liveness_bound_us",
    "run_schedule",
    "judge",
]

#: Oracle names, in reporting order.
ORACLES = ("liveness", "safety", "determinism")

#: Headroom multiplier on the analytic prediction: covers DES-vs-model
#: calibration error and co-scheduler startup transients.  A deadlock is
#: not a factor-of-N slowdown, so generosity costs only simulated time.
_SLACK = 6.0


def build_cluster_config(
    workload: ChaosWorkload,
    faults: FaultConfig,
    seed: int,
    policy: tuple = ("aix", ()),
) -> ClusterConfig:
    """The system under test: prototype kernel + co-scheduler + standard
    daemon ecology at compressed time, faults as given (E8's build rule —
    chaos runs must exercise the same machine the experiments measure).
    *policy* is a ``(name, params)`` pair selecting the dispatch policy
    (the chaos ``policy`` axis / the policy-ablation experiment)."""
    w = workload
    name, params = policy
    return ClusterConfig(
        machine=MachineConfig(n_nodes=w.n_nodes, cpus_per_node=w.tasks_per_node),
        kernel=KernelConfig.prototype(
            big_tick=max(1, int(round(25 / w.time_compression)))
        ).with_options(policy=name, policy_params=params),
        cosched=CoschedConfig(enabled=True, period_us=w.period_us, duty_cycle=0.90),
        mpi=MpiConfig.with_long_polling(progress_threads_enabled=False),
        noise=scale_noise(standard_noise(include_cron=False), w.time_compression),
        faults=faults,
        seed=seed,
    )


def analytic_call_us(workload: ChaosWorkload, seed: int = 0) -> float:
    """Model-predicted mean Allreduce latency (µs) for the fault-free
    system — the anchor every liveness bound is derived from."""
    cfg = build_cluster_config(workload, FaultConfig(), seed)
    model = AllreduceSeriesModel(cfg, workload.n_ranks, workload.tasks_per_node, seed)
    series = model.run_series(
        min(workload.calls, 64), compute_between_us=workload.compute_between_us
    )
    return series.mean_us


def _retransmit_chain_us(cfg: FaultConfig) -> float:
    """Worst-case serial backoff before the forced path delivers (µs)."""
    total, timeout = 0.0, cfg.retransmit_timeout_us
    for _ in range(cfg.retransmit_max_attempts):
        total += timeout
        timeout = min(timeout * cfg.retransmit_backoff, cfg.retransmit_max_timeout_us)
    return total


def liveness_bound_us(schedule: ChaosSchedule) -> float:
    """Analytic completion bound for *schedule* (µs).

    ``_SLACK × model prediction`` plus explicit per-entry allowances; see
    the module docstring.  Deliberately generous — a false liveness alarm
    would poison the corpus, while a real deadlock exceeds *any* finite
    bound.
    """
    w = schedule.workload
    cfg = schedule.fault_config()
    period = w.period_us
    base = w.calls * (w.compute_between_us + analytic_call_us(w, schedule.seed))
    bound = _SLACK * base + 4.0 * period

    wd_detect = cfg.watchdog_interval_us * (1.0 + cfg.watchdog_staleness_periods)
    rounds = math.ceil(math.log2(w.n_ranks)) + 2  # fold + doubling + unfold
    for e in schedule.entries:
        kind = e["kind"]
        if kind == "node":
            bound += 2.0 * e["duration_us"]
        elif kind == "cosched":
            bound += wd_detect + 2.0 * period + e.get("duration_us", 0.0)
        elif kind == "timesync":
            # Graceful degradation lands near the uncoordinated baseline,
            # which the coordinated model underestimates badly.
            bound += 4.0 * base
        elif kind == "pipe":
            bound += 2.0 * period
        elif kind == "policy":
            # A priority-blind policy defeats the co-scheduler's favored
            # windows, so the coordinated model's prediction no longer
            # anchors the run; allow the uncoordinated-baseline blow-up,
            # same as timesync loss.
            bound += 4.0 * base
        elif kind == "net":
            # Sound window argument: while the fault window is open the
            # job progresses >= 0 where the clean run progresses
            # (hi - lo); after it closes, only chains already in flight
            # (<= one call's rounds, forced-path-guaranteed) remain.  So
            # the storm costs at most the window length plus one call's
            # worst-case serial backoff tail, regardless of probability.
            chain = _retransmit_chain_us(cfg) + e.get("delay_us", 0.0)
            lo_w, hi_w = e.get("window_us", (0.0, float("inf")))
            window = max(0.0, min(hi_w, _SLACK * base) - lo_w)
            bound += window + rounds * chain
    return bound


@dataclass
class ChaosRunResult:
    """Everything one driven run exposes to the oracles."""

    completed: bool
    elapsed_us: float  # job elapsed when completed, else the bound
    bound_us: float
    values_ok: bool  # reduction correctness (True when nothing finished)
    violations: tuple  # stringified invariant violations
    fingerprint: str
    events_processed: int
    counters: dict  # resilience activity, for diagnosis


def run_schedule(schedule: ChaosSchedule) -> ChaosRunResult:
    """Build the system, drive the workload to completion or to the
    liveness bound, and collect the oracle inputs."""
    w = schedule.workload
    bound = liveness_bound_us(schedule)
    system = System(
        build_cluster_config(
            w, schedule.fault_config(), schedule.seed,
            policy=schedule.policy_spec(),
        ),
        trace=TraceRecorder(enabled=True),
    )
    app = AggregateTraceConfig(
        calls_per_loop=w.calls, compute_between_us=w.compute_between_us,
        trace_block=32,
    )
    placement = system.cluster.place(w.n_ranks, w.tasks_per_node)
    node0 = {r for r in range(w.n_ranks) if placement.node_of(r) == 0}
    sink: dict = {}
    job = system.launch(
        w.n_ranks, w.tasks_per_node, aggregate_trace_body(app, sink, node0),
        name="chaos",
    )
    sim = system.sim
    chunk = w.period_us
    while not job.done and sim.now < bound:
        sim.run_until(min(bound, sim.now + chunk))

    values_ok = True
    if job.done:
        values_ok = (
            "bad_values" not in sink
            and all(ok for (_d, ok) in (v for k, v in sink.items() if k != "bad_values"))
        )
    report = InvariantMonitor(system).check()
    rel = job.world.reliability
    counters = {
        "retransmits": rel.retransmits if rel else 0,
        "forced": rel.forced if rel else 0,
        "gaveup": rel.gaveup if rel else 0,
        "duplicates_dropped": rel.duplicates_dropped if rel else 0,
        "net_drops": system.injector.net_plane.drops if system.injector and system.injector.net_plane else 0,
        "pipe_losses": system.injector.pipe_losses if system.injector else 0,
        "watchdog_restarts": sum(wd.restarts for wd in system.injector.watchdogs) if system.injector else 0,
        "fault_events": len(system.injector.events) if system.injector else 0,
    }
    return ChaosRunResult(
        completed=job.done,
        elapsed_us=job.elapsed_us if job.done else bound,
        bound_us=bound,
        values_ok=values_ok,
        violations=tuple(str(v) for v in report.violations),
        fingerprint=state_fingerprint(capture_state(system)),
        events_processed=sim.events_processed,
        counters=counters,
    )


@dataclass
class OracleReport:
    """Verdict of the oracle suite on one schedule."""

    failed: tuple  # subset of ORACLES, in ORACLES order
    details: dict  # JSON-able diagnosis (bound, counters, violations, …)

    @property
    def ok(self) -> bool:
        return not self.failed


def judge(
    schedule: ChaosSchedule, *, check_determinism: bool = True
) -> OracleReport:
    """Run the oracle suite on *schedule*.

    ``check_determinism=False`` skips the replay run — the shrinker uses
    it when minimizing a liveness/safety failure, halving the cost of
    every ddmin probe.
    """
    first = run_schedule(schedule)
    failed = []
    if not first.completed:
        failed.append("liveness")
    if first.violations or not first.values_ok:
        failed.append("safety")
    details = {
        "bound_us": first.bound_us,
        "elapsed_us": first.elapsed_us,
        "completed": first.completed,
        "values_ok": first.values_ok,
        "violations": list(first.violations),
        "events_processed": first.events_processed,
        "counters": first.counters,
        "fingerprint": first.fingerprint,
    }
    if check_determinism:
        second = run_schedule(schedule)
        if (
            second.fingerprint != first.fingerprint
            or second.events_processed != first.events_processed
        ):
            failed.append("determinism")
            details["replay_fingerprint"] = second.fingerprint
            details["replay_events_processed"] = second.events_processed
    return OracleReport(failed=tuple(f for f in ORACLES if f in failed), details=details)
