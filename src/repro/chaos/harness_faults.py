"""Deterministic *harness-level* fault plans: killing our own workers.

The chaos engine in this package fuzzes the *simulated* cluster.  This
module points the same seed-stream discipline at the execution substrate
itself: given a harness-chaos seed, every trial key gets a pure-function
fault plan — die this many times, in this mode, at this point — drawn
from its own named :mod:`repro.rng` stream (``harness.kill.<key>``).
Keying the stream by trial key (rather than by worker or by dispatch
order) is what makes the plan independent of scheduling: ``--jobs 2``
and ``--jobs 4`` kill exactly the same attempts of exactly the same
trials, so the supervised runner's retry counts, backoff sequences, and
final journals are comparable across worker counts — the property
``tests/test_supervisor.py`` pins.

Modes:

* ``crash`` — the worker ``os._exit``\\ s mid-trial, as an OOM kill or
  segfault would.  ``point`` refines it: ``pre`` dies before the trial
  function runs; ``mid`` dies after computing the record but while
  journaling it, leaving a deliberately *torn* shard entry behind — the
  case the journal-merge hardening must survive.
* ``hang`` — the worker goes silent (no heartbeats) without exiting,
  the failure only a missed-heartbeat deadline can catch.

``kills`` is capped at 2 draws so any plan is transient under the
default ``max_retries=3``: a chaos campaign retries through every
injected kill and converges to the same results as a clean serial run.
Poison behaviour (quarantine) is exercised by planting genuinely
poisonous trial functions, not by the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rng import StreamFactory

__all__ = ["ENV_VAR", "HarnessFault", "plan_for", "injection_for"]

#: Environment fallback for the harness-chaos seed (the CLI flag wins).
ENV_VAR = "REPRO_HARNESS_CHAOS"


@dataclass(frozen=True)
class HarnessFault:
    """The fault plan for one trial key under one harness-chaos seed."""

    #: ``None`` (left alone), ``"crash"``, or ``"hang"``.
    mode: Optional[str]
    #: Attempts ``0 .. kills-1`` are killed; attempt ``kills`` survives.
    kills: int
    #: For crashes: ``"pre"`` (before the trial runs) or ``"mid"``
    #: (after computing, torn journal write).  Irrelevant for hangs.
    point: str


def plan_for(chaos_seed: int, key: str) -> HarnessFault:
    """The fault plan for *key* — a pure function of ``(seed, key)``.

    All three axes are drawn unconditionally and in a fixed order so the
    plan never shifts when one draw's interpretation changes.
    """
    rng = StreamFactory(int(chaos_seed)).stream(f"harness.kill.{key}")
    r_mode = float(rng.random())
    point = "pre" if float(rng.random()) < 0.5 else "mid"
    kills = 2 if float(rng.random()) < 0.25 else 1
    if r_mode < 0.45:
        return HarnessFault(None, 0, point)
    if r_mode < 0.85:
        return HarnessFault("crash", kills, point)
    return HarnessFault("hang", kills, point)


def injection_for(
    chaos_seed: int, key: str, attempt: int
) -> Optional[tuple[str, str]]:
    """What attempt *attempt* of *key* should suffer: ``(mode, point)``
    to inject, or ``None`` to run the trial honestly."""
    plan = plan_for(chaos_seed, key)
    if plan.mode is not None and attempt < plan.kills:
        return plan.mode, plan.point
    return None
