"""Deterministic *harness-level* fault plans: killing our own workers.

The chaos engine in this package fuzzes the *simulated* cluster.  This
module points the same seed-stream discipline at the execution substrate
itself: given a harness-chaos seed, every trial key gets a pure-function
fault plan — die this many times, in this mode, at this point — drawn
from its own named :mod:`repro.rng` stream (``harness.kill.<key>``).
Keying the stream by trial key (rather than by worker or by dispatch
order) is what makes the plan independent of scheduling: ``--jobs 2``
and ``--jobs 4`` kill exactly the same attempts of exactly the same
trials, so the supervised runner's retry counts, backoff sequences, and
final journals are comparable across worker counts — the property
``tests/test_supervisor.py`` pins.

Modes:

* ``crash`` — the worker ``os._exit``\\ s mid-trial, as an OOM kill or
  segfault would.  ``point`` refines it: ``pre`` dies before the trial
  function runs; ``mid`` dies after computing the record but while
  journaling it, leaving a deliberately *torn* shard entry behind — the
  case the journal-merge hardening must survive.
* ``hang`` — the worker goes silent (no heartbeats) without exiting,
  the failure only a missed-heartbeat deadline can catch.

``kills`` is capped at 2 draws so any plan is transient under the
default ``max_retries=3``: a chaos campaign retries through every
injected kill and converges to the same results as a clean serial run.
Poison behaviour (quarantine) is exercised by planting genuinely
poisonous trial functions, not by the plan.

**Store faults.**  The same seed-stream discipline also attacks the
content-addressed result store (:mod:`repro.store`): every stored
fingerprint gets its own plan from stream ``harness.store.<fingerprint>``
— torn record (truncated write), bit flip (silent media corruption),
duplicate identical writer (benign by the canonical-bytes contract), or
left alone — plus one injected crash-mid-GC (a mark journal with no
completed sweep).  ``store fsck`` must detect every one of the damaging
injections, ``fsck --repair`` must return the store to clean, and the
``dup`` axis must produce *zero* findings; that is the store-chaos
acceptance loop the CI smoke job drives.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.rng import StreamFactory

__all__ = [
    "ENV_VAR",
    "HarnessFault",
    "plan_for",
    "injection_for",
    "ShardKillFault",
    "shard_kill_plan",
    "StoreFault",
    "STORE_FAULT_MODES",
    "store_plan_for",
    "inject_store_fault",
    "inject_interrupted_gc",
]

#: Environment fallback for the harness-chaos seed (the CLI flag wins).
ENV_VAR = "REPRO_HARNESS_CHAOS"


@dataclass(frozen=True)
class HarnessFault:
    """The fault plan for one trial key under one harness-chaos seed."""

    #: ``None`` (left alone), ``"crash"``, or ``"hang"``.
    mode: Optional[str]
    #: Attempts ``0 .. kills-1`` are killed; attempt ``kills`` survives.
    kills: int
    #: For crashes: ``"pre"`` (before the trial runs) or ``"mid"``
    #: (after computing, torn journal write).  Irrelevant for hangs.
    point: str


def plan_for(chaos_seed: int, key: str) -> HarnessFault:
    """The fault plan for *key* — a pure function of ``(seed, key)``.

    All three axes are drawn unconditionally and in a fixed order so the
    plan never shifts when one draw's interpretation changes.
    """
    rng = StreamFactory(int(chaos_seed)).stream(f"harness.kill.{key}")
    r_mode = float(rng.random())
    point = "pre" if float(rng.random()) < 0.5 else "mid"
    kills = 2 if float(rng.random()) < 0.25 else 1
    if r_mode < 0.45:
        return HarnessFault(None, 0, point)
    if r_mode < 0.85:
        return HarnessFault("crash", kills, point)
    return HarnessFault("hang", kills, point)


def injection_for(
    chaos_seed: int, key: str, attempt: int
) -> Optional[tuple[str, str]]:
    """What attempt *attempt* of *key* should suffer: ``(mode, point)``
    to inject, or ``None`` to run the trial honestly."""
    plan = plan_for(chaos_seed, key)
    if plan.mode is not None and attempt < plan.kills:
        return plan.mode, plan.point
    return None


# ---------------------------------------------------------------------------
# Shard-worker kills: attacking the parallel-DES engine's own workers.


@dataclass(frozen=True)
class ShardKillFault:
    """The kill plan for one shard worker under one harness-chaos seed."""

    #: ``None`` (left alone) or ``"kill"`` (SIGKILL the worker process).
    mode: Optional[str]
    #: First superstep index attacked; kills repeat on consecutive
    #: supersteps until the budget is spent.
    window: int
    #: Number of kills (0 when ``mode`` is ``None``).  Capped at 2 so any
    #: plan is transient under ``run_parallel``'s default
    #: ``max_respawns=3``.
    kills: int
    #: ``"pre"`` — kill before the window directive is issued to the
    #: shard; ``"mid"`` — kill after every shard has its directive, while
    #: the worker is (plausibly) computing the window.
    point: str


def shard_kill_plan(chaos_seed: int, shard_id: int) -> ShardKillFault:
    """The kill plan for *shard_id* — a pure function of ``(seed, shard)``.

    Stream ``harness.shard.kill.<shard>`` mirrors :func:`plan_for`'s
    discipline: keyed to the victim, all axes drawn unconditionally in a
    fixed order, so the plan is independent of shard count, worker
    scheduling, and every other shard's plan.  The coordinator recovers
    each kill by respawn + deterministic replay, so a chaos run's digest
    must equal the clean run's byte-for-byte — the property
    ``tests/test_shard_recovery.py`` pins.
    """
    rng = StreamFactory(int(chaos_seed)).stream(f"harness.shard.kill.{shard_id}")
    r_mode = float(rng.random())
    window = int(float(rng.random()) * 4)
    point = "pre" if float(rng.random()) < 0.5 else "mid"
    kills = 2 if float(rng.random()) < 0.25 else 1
    if r_mode < 0.40:
        return ShardKillFault(None, window, 0, point)
    return ShardKillFault("kill", window, kills, point)


# ---------------------------------------------------------------------------
# Store faults: attacking the content-addressed result store's bytes.

#: Damage modes a store record can be dealt.  ``torn`` and ``bitflip``
#: must be *detected* (fsck finding, quarantined on read); ``dup`` must
#: be *survived silently* (identical bytes are the benign case).
STORE_FAULT_MODES = ("torn", "bitflip", "dup")


@dataclass(frozen=True)
class StoreFault:
    """The fault plan for one stored fingerprint under one chaos seed."""

    #: ``None`` (left alone) or one of :data:`STORE_FAULT_MODES`.
    mode: Optional[str]


def store_plan_for(chaos_seed: int, fingerprint: str) -> StoreFault:
    """The store-fault plan for *fingerprint* — a pure function of
    ``(seed, fingerprint)``, so re-running a chaos campaign against the
    same store damages exactly the same records."""
    rng = StreamFactory(int(chaos_seed)).stream(f"harness.store.{fingerprint}")
    r = float(rng.random())
    if r < 0.40:
        return StoreFault(None)
    if r < 0.65:
        return StoreFault("torn")
    if r < 0.90:
        return StoreFault("bitflip")
    return StoreFault("dup")


def inject_store_fault(store, fingerprint: str, mode: str) -> bool:
    """Deal *mode* damage to the record at *fingerprint* in-place.

    Writes are deliberately *non*-atomic — the whole point is simulating
    the failure modes the store's own write discipline rules out (torn
    half-writes, flipped bits under the checksum).  Returns ``False`` if
    no record exists at that fingerprint.
    """
    if mode not in STORE_FAULT_MODES:
        raise ValueError(f"unknown store fault mode {mode!r}; pick from {STORE_FAULT_MODES}")
    path = store.object_path(fingerprint)
    if not path.is_file():
        return False
    data = path.read_bytes()
    if mode == "torn":
        path.write_bytes(data[: len(data) // 2])
    elif mode == "bitflip":
        i = len(data) // 2
        path.write_bytes(data[:i] + bytes([data[i] ^ 0x01]) + data[i + 1 :])
    else:  # dup: an identical concurrent writer landed the same bytes again
        path.write_bytes(data)
    return True


def inject_interrupted_gc(store, chaos_seed: int) -> str:
    """Simulate a crash mid-GC: mark written, sweep never run.

    Plants one deterministic bait record and a ``gc/mark.json`` whose
    dead list names *only* that bait, then "crashes" before sweeping.
    fsck must flag ``interrupted-gc``; ``--repair`` (or the next
    :meth:`~repro.store.ResultStore.gc`) completes the sweep, removing
    the bait and leaving every real record untouched — so a warm rerun
    after repair still serves every trial from the store.  Returns the
    bait fingerprint.
    """
    from repro.store.records import encode_record
    from repro.store.store import _atomic_write_bytes

    bait_key = f"chaos-gc-bait-s{int(chaos_seed)}"
    bait_fp = hashlib.sha256(bait_key.encode("utf-8")).hexdigest()
    store.put(bait_fp, bait_key, {"chaos": "gc-bait", "seed": int(chaos_seed)})
    mark = encode_record({"kind": "gc-mark", "dead": [bait_fp]})
    _atomic_write_bytes(store.gc_mark_path, mark)
    return bait_fp
