"""Chaos campaigns: fan seeds over the trial runner, shrink failures.

One campaign = N seeds.  Each seed regenerates its schedule (pure
function of ``seed`` + workload shape), judges it with the oracle suite,
and lands one verdict record in the journal — so campaigns inherit every
:class:`~repro.experiments.runner.TrialRunner` property for free:
``--jobs N`` fan-out, per-trial wall-clock watchdogs, crash-safe journal
resume, and byte-identical serial-vs-parallel results.

Failures are then shrunk *in the parent process* (ddmin probes share
nothing, but shrinking is cheap relative to the campaign and keeping it
in-parent keeps the journal's verdict records pure) and written to the
regression corpus as minimized, replayable JSON counterexamples.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.generator import generate_schedule
from repro.chaos.oracles import ORACLES, judge
from repro.chaos.schedule import ChaosSchedule, ChaosWorkload
from repro.chaos.shrink import ShrinkResult, shrink_schedule
from repro.checkpoint.harness import SweepJournal
from repro.experiments.runner import TrialRunner, TrialSpec
from repro.faults.demo import ENV_VAR as _BUG_ENV

__all__ = [
    "ChaosCampaignResult",
    "run_chaos",
    "format_chaos",
    "chaos_workload",
    "save_corpus_entry",
    "load_corpus_entry",
    "replay_corpus_entry",
]

#: Workload shapes: the full campaign matches E8's resilience scale (the
#: run must span several 100 ms co-scheduler periods, or window/watchdog
#: faults fire into dead air); the quick one is sized for CI smoke —
#: fewer ranks and just over two periods, so a seed judges in about a
#: second while still cycling every defense.
_FULL_WORKLOAD = ChaosWorkload(n_ranks=16, tasks_per_node=8, calls=900)
_QUICK_WORKLOAD = ChaosWorkload(n_ranks=8, tasks_per_node=4, calls=420)


def chaos_workload(quick: bool = False) -> ChaosWorkload:
    """The campaign workload shape (``quick=True`` → the CI-smoke one)."""
    return _QUICK_WORKLOAD if quick else _FULL_WORKLOAD


def _chaos_trial(params: dict) -> dict:
    """One campaign trial: regenerate the seed's schedule and judge it.

    Top-level and pure (all inputs in *params*), per the TrialRunner
    contract; the returned record is plain JSON, and contains the entry
    list so a journaled verdict can be audited without regenerating.

    ``params["policy"]`` (a ``{"name": ..., <param>: ...}`` dict), when
    present, *forces* that policy entry onto the schedule — replacing
    whatever the ``chaos.policy`` axis drew — so a campaign can pin the
    whole seed range to one zoo member.
    """
    workload = ChaosWorkload(**params["workload"])
    schedule = generate_schedule(params["seed"], workload)
    forced = params.get("policy")
    if forced:
        entries = [e for e in schedule.entries if e["kind"] != "policy"]
        entries.append({"kind": "policy", **forced})
        schedule = schedule.with_entries(entries)
    report = judge(schedule)
    return {
        "seed": params["seed"],
        "ok": report.ok,
        "failed": list(report.failed),
        "n_entries": len(schedule.entries),
        "entries": [dict(e) for e in schedule.entries],
        "details": report.details,
    }


def _chaos_shard_trial(params: dict) -> dict:
    """One *sharded* campaign trial: judge the seed's schedule under
    conservative parallel DES against the serial engine.

    The full randomized fault schedule — stochastic drop/dup/delay, pipe
    loss, timesync loss, node/co-scheduler faults, retransmit, watchdog,
    policy swaps — runs at ``params["shards"]`` shards (forked workers)
    and at 1 shard in-process; the **determinism** oracle is digest (and
    summed-counter) equality between the two.  **liveness** reuses the
    analytic bound as the parallel run's horizon, and **safety** is
    reduction correctness.  ``params["shard_chaos"]``, when present,
    additionally SIGKILLs shard workers on their deterministic
    :func:`~repro.chaos.harness_faults.shard_kill_plan` schedules — the
    recovered run must still match the serial digest byte-for-byte.
    An unrecoverable shard (respawn budget exhausted) surfaces as a
    :class:`~repro.sim.parallel.ShardFailureError` trial error, which the
    campaign journals as a failed seed instead of hanging.
    """
    import multiprocessing

    from repro.chaos.oracles import build_cluster_config, liveness_bound_us
    from repro.sim.parallel import ShardFailureError, run_parallel

    workload = ChaosWorkload(**params["workload"])
    schedule = generate_schedule(params["seed"], workload)
    forced = params.get("policy")
    if forced:
        entries = [e for e in schedule.entries if e["kind"] != "policy"]
        entries.append({"kind": "policy", **forced})
        schedule = schedule.with_entries(entries)
    shards = params["shards"]
    shard_chaos = params.get("shard_chaos")
    daemonic = multiprocessing.current_process().daemon
    if shard_chaos is not None and daemonic:
        raise RuntimeError(
            "sharded chaos with worker kills needs non-daemonic trial "
            "execution (forked shard workers); rerun with --jobs 1"
        )
    cfg = build_cluster_config(
        workload, schedule.fault_config(), schedule.seed,
        policy=schedule.policy_spec(),
    )
    bound = liveness_bound_us(schedule)
    kw = dict(
        n_ranks=workload.n_ranks,
        tasks_per_node=workload.tasks_per_node,
        app="repro.apps.aggregate_trace:sharded_app",
        app_params=dict(
            loops=1,
            calls_per_loop=workload.calls,
            trace_block=32,
            compute_between_us=workload.compute_between_us,
            payload_bytes=8,
            record_nodes=(0,),
        ),
        horizon_us=bound,
        job_name="chaos",
    )

    def record(ok: bool, failed: list, details: dict) -> dict:
        return {
            "seed": params["seed"],
            "ok": ok,
            "failed": failed,
            "n_entries": len(schedule.entries),
            "entries": [dict(e) for e in schedule.entries],
            "details": details,
        }

    try:
        serial = run_parallel(cfg, shards=1, use_processes=False, **kw)
        sharded = run_parallel(
            cfg,
            shards=shards,
            use_processes=False if daemonic else True,
            shard_chaos_seed=shard_chaos,
            respawn_backoff_s=0.01,
            **kw,
        )
    except ShardFailureError:
        raise  # unrecoverable shard: journaled as a trial error, not a hang
    except RuntimeError as exc:
        # run_parallel raises at the horizon instead of returning an
        # incomplete run — the sharded analogue of a liveness failure.
        return record(
            False, ["liveness"],
            {"bound_us": bound, "elapsed_us": bound, "completed": False,
             "error": str(exc)},
        )
    failed = []
    if not (serial.ok and sharded.ok):
        failed.append("safety")
    if sharded.digest != serial.digest or sharded.counters != serial.counters:
        failed.append("determinism")
    return record(
        not failed, failed,
        {
            "bound_us": bound,
            "elapsed_us": sharded.elapsed_us,
            "completed": True,
            "values_ok": serial.ok and sharded.ok,
            "digest": sharded.digest,
            "serial_digest": serial.digest,
            "supersteps": sharded.supersteps,
            "counters": dict(sharded.counters),
            "recoveries": sharded.recoveries,
        },
    )


@dataclass
class ChaosCampaignResult:
    """Verdicts for every seed, plus the minimized counterexamples."""

    seeds: tuple
    records: tuple  # one _chaos_trial record (or error dict) per seed
    shrunk: tuple = ()  # (seed, primary_failure, ShrinkResult) triples
    corpus_paths: tuple = ()

    @property
    def failures(self) -> list:
        return [r for r in self.records if not r.get("ok", False)]


def run_chaos(
    seeds: int = 32,
    seed_base: int = 0,
    quick: bool = False,
    jobs: int = 1,
    journal: Optional[SweepJournal] = None,
    trial_timeout_s: Optional[float] = None,
    shrink: bool = True,
    shrink_budget: int = 60,
    corpus_out: Optional[str] = None,
    policy: Optional[str] = None,
    policy_params: tuple = (),
    shards: Optional[int] = None,
    shard_chaos: Optional[int] = None,
) -> ChaosCampaignResult:
    """Judge ``seed_base .. seed_base+seeds-1``; shrink and save failures.

    Deterministic end to end: the verdict table, the journal bytes, and
    the minimized counterexamples depend only on ``(seeds, seed_base,
    quick)`` and the forced *policy* — not on ``jobs``, resume state, or
    wall clock.  ``policy`` pins every seed's schedule to that dispatch
    policy (overriding the ``chaos.policy`` axis); journal keys carry the
    policy name so pinned and unpinned campaigns never collide.

    *shards* switches every seed to the **sharded** trial
    (:func:`_chaos_shard_trial`): the schedule runs under conservative
    parallel DES and is judged by digest equality against the serial
    engine; *shard_chaos* additionally kills shard workers on their
    deterministic plans.  Sharded records are digest verdicts, not oracle
    replays, so shrinking is disabled and journal keys carry ``-sh<N>``
    (and ``-hc<SEED>``).
    """
    workload = chaos_workload(quick)
    sharded = shards is not None
    if sharded:
        if shards > workload.n_nodes:
            raise ValueError(
                f"shards ({shards}) cannot exceed the chaos workload's "
                f"{workload.n_nodes} nodes"
            )
        shrink = False
    elif shard_chaos is not None:
        raise ValueError("shard_chaos requires shards (the sharded campaign)")
    wl_params = {
        "n_ranks": workload.n_ranks,
        "tasks_per_node": workload.tasks_per_node,
        "calls": workload.calls,
        "compute_between_us": workload.compute_between_us,
        "time_compression": workload.time_compression,
    }
    forced = dict((("name", policy),) + tuple(policy_params)) if policy else None
    suffix = (
        ("-quick" if quick else "")
        + (f"-p{policy}" if policy else "")
        + (f"-sh{shards}" if sharded else "")
        + (f"-hc{shard_chaos}" if shard_chaos is not None else "")
    )
    extra: dict = {"policy": forced} if forced else {}
    if sharded:
        extra["shards"] = shards
        if shard_chaos is not None:
            extra["shard_chaos"] = shard_chaos
    seed_list = tuple(range(seed_base, seed_base + seeds))
    specs = [
        TrialSpec(
            key=f"chaos-s{seed}{suffix}",
            fn=(
                "repro.chaos.campaign:_chaos_shard_trial"
                if sharded
                else "repro.chaos.campaign:_chaos_trial"
            ),
            params={"seed": seed, "workload": wl_params} | extra,
        )
        for seed in seed_list
    ]
    runner = TrialRunner(jobs=jobs, journal=journal, trial_timeout_s=trial_timeout_s)
    outcomes = runner.run(specs)

    records = []
    for seed, outcome in zip(seed_list, outcomes):
        if outcome.ok:
            records.append(outcome.record)
        else:
            # A trial-level error (crash/timeout in the harness, not an
            # oracle verdict) still counts as a failed seed.
            records.append(
                {"seed": seed, "ok": False, "failed": ["error"],
                 "error": outcome.error, "n_entries": None, "entries": None}
            )

    shrunk: list = []
    corpus_paths: list = []
    if shrink:
        for record in records:
            if record.get("ok", False) or record.get("entries") is None:
                continue
            primary = next(
                (f for f in ORACLES if f in record["failed"]), None
            )
            if primary is None:
                continue
            schedule = ChaosSchedule(
                seed=record["seed"],
                workload=workload,
                entries=tuple(record["entries"]),
            )
            result = shrink_schedule(schedule, primary, budget=shrink_budget)
            shrunk.append((record["seed"], primary, result))
            if corpus_out:
                path = save_corpus_entry(
                    corpus_out, result.schedule, primary, quick=quick
                )
                corpus_paths.append(path)

    return ChaosCampaignResult(
        seeds=seed_list,
        records=tuple(records),
        shrunk=tuple(shrunk),
        corpus_paths=tuple(corpus_paths),
    )


# ----------------------------------------------------------------------
# Regression corpus: minimized counterexamples, replayable under pytest
# ----------------------------------------------------------------------


def save_corpus_entry(
    corpus_dir: str,
    schedule: ChaosSchedule,
    primary_failure: Optional[str],
    *,
    quick: bool = False,
    note: str = "",
) -> str:
    """Write one corpus entry: a minimized counterexample, or (with
    ``primary_failure=None``) a survival regression — a hard schedule the
    system is expected to ride out cleanly.

    The file records the exact schedule, the expected oracle verdict, and
    the planted-bug environment it reproduces under (so fixed-bug
    regressions replay with the bug re-enabled, while real-bug entries
    replay in a clean environment).
    """
    entry = {
        "schedule": schedule.to_json(),
        "expect": {
            "ok": primary_failure is None,
            "failed": [primary_failure] if primary_failure else [],
        },
        "demo_bug": os.environ.get(_BUG_ENV, ""),
        "note": note or (
            f"seed {schedule.seed} minimized to {len(schedule.entries)} "
            f"entries; fails {primary_failure}"
            if primary_failure
            else f"seed {schedule.seed}: {len(schedule.entries)} entries, survives"
        ),
        "quick": quick,
    }
    os.makedirs(corpus_dir, exist_ok=True)
    stem = primary_failure or "ok"
    name = f"{stem}-s{schedule.seed}{'-quick' if quick else ''}.json"
    path = os.path.join(corpus_dir, name)
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus_entry(path: str) -> dict:
    """Read one corpus JSON file; the schedule comes back reconstructed."""
    with open(path) as fh:
        entry = json.load(fh)
    entry["schedule"] = ChaosSchedule.from_json(entry["schedule"])
    return entry


def replay_corpus_entry(path: str) -> tuple:
    """Re-judge a corpus entry; return ``(matches_expectation, report)``.

    The caller owns the :data:`~repro.faults.demo.ENV_VAR` environment —
    the pytest replay sets it from the entry's ``demo_bug`` field before
    calling this (monkeypatched, so entries cannot leak bugs into each
    other).
    """
    entry = load_corpus_entry(path)
    report = judge(entry["schedule"])
    expect = entry["expect"]
    matches = report.ok == expect["ok"] and set(expect["failed"]) <= set(report.failed)
    return matches, report


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def format_chaos(result: ChaosCampaignResult) -> str:
    """Human-readable verdict table for one campaign."""
    lines = [
        "E10: chaos campaign — randomized fault schedules vs. the oracle suite",
        "",
        f"  {'seed':>6}  {'entries':>7}  {'verdict':<24} detail",
        "  " + "-" * 66,
    ]
    for r in result.records:
        verdict = "ok" if r.get("ok") else "FAIL: " + ",".join(r.get("failed", []))
        detail = ""
        d = r.get("details") or {}
        if r.get("ok"):
            detail = (
                f"elapsed {d.get('elapsed_us', 0.0) / 1e3:.1f} ms"
                f" / bound {d.get('bound_us', 0.0) / 1e3:.1f} ms"
            )
        elif r.get("error"):
            detail = r["error"]
        elif d.get("violations"):
            detail = d["violations"][0]
        elif not d.get("completed", True):
            detail = f"did not finish within {d.get('bound_us', 0.0) / 1e3:.1f} ms"
        n = r.get("n_entries")
        lines.append(
            f"  {r['seed']:>6}  {('?' if n is None else n):>7}  {verdict:<24} {detail}"
        )
    n_fail = len(result.failures)
    lines.append("")
    lines.append(
        f"  {len(result.records)} seeds: {len(result.records) - n_fail} ok, {n_fail} failing"
    )
    for seed, primary, sr in result.shrunk:
        lines.append(
            f"  shrunk seed {seed} ({primary}): {sr.original_entries} -> "
            f"{sr.minimized_entries} entries in {sr.evals} oracle evals"
        )
    for path in result.corpus_paths:
        lines.append(f"  corpus: {path}")
    return "\n".join(lines)
