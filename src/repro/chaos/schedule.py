"""Chaos schedules: the pure-data unit the fuzzer generates and shrinks.

A :class:`ChaosSchedule` is one randomized fault scenario: the workload
shape (ranks, calls, time compression — identical to the E8 resilience
scale) plus a flat list of *fault entries*, each a plain JSON-able dict.
The flat list is the whole point: it is exactly the representation ddmin
wants (remove entries, schedule still composes), it round-trips through
JSON bit-exactly (doubles survive ``json`` unchanged), and it composes
deterministically into the :class:`~repro.config.FaultConfig` the fault
injector already understands.

Entry kinds
-----------
``net``       stochastic fabric faults: ``drop_prob`` / ``dup_prob`` /
              ``delay_prob``, ``delay_us``, active ``window_us=[lo, hi]``
``pipe``      control-pipe loss: ``prob``
``node``      one scheduled node fault: ``node``, ``fault`` ("crash" or
              "slowdown"), ``at_us``, ``duration_us``, ``fraction``
``cosched``   one co-scheduler fault: ``node``, ``fault`` ("die" or
              "hang"), ``at_us``, ``duration_us``
``timesync``  global clock loss: ``at_us``, ``jump_us``, ``drift_rate``
``policy``    node scheduling policy under test: ``name`` (a
              :mod:`repro.kernel.policy` registry name) plus optional
              per-policy params (``slice_us``, ``min_granularity_us``).
              Not a fault — it swaps the dispatch semantics the oracles
              must hold up under, sweeping the policy matrix.

``net``, ``pipe``, ``timesync`` and ``policy`` are singleton axes (at
most one entry each — :meth:`ChaosSchedule.fault_config` rejects
duplicates); ``node`` and ``cosched`` entries may appear any number of
times.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config import CoschedFaultSpec, FaultConfig, NodeFaultSpec
from repro.units import ms, s

__all__ = ["ChaosWorkload", "ChaosSchedule", "ENTRY_KINDS"]

#: Every entry ``kind`` the composer understands, singleton axes first.
ENTRY_KINDS = ("net", "pipe", "timesync", "policy", "node", "cosched")

_SINGLETON_KINDS = ("net", "pipe", "timesync", "policy")


@dataclass(frozen=True)
class ChaosWorkload:
    """Shape of the job every chaos run executes (compute + Allreduce
    loop, the aggregate_trace body), at E8's compressed time scale."""

    n_ranks: int = 16
    tasks_per_node: int = 8
    calls: int = 900
    compute_between_us: float = 200.0
    time_compression: float = 50.0

    def __post_init__(self) -> None:
        if self.n_ranks < 2 or self.tasks_per_node < 1 or self.calls < 1:
            raise ValueError("workload shape must be positive (>= 2 ranks)")
        if self.compute_between_us < 0 or self.time_compression <= 0:
            raise ValueError("compute/time_compression out of range")

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.tasks_per_node)

    @property
    def period_us(self) -> float:
        """Compressed co-scheduler window period (E8's scale rule)."""
        return s(5) / self.time_compression


@dataclass(frozen=True)
class ChaosSchedule:
    """One seed-deterministic fault scenario: workload + fault entries."""

    seed: int
    workload: ChaosWorkload = field(default_factory=ChaosWorkload)
    entries: tuple = ()

    def __post_init__(self) -> None:
        for e in self.entries:
            if not isinstance(e, dict) or e.get("kind") not in ENTRY_KINDS:
                raise ValueError(f"bad chaos entry {e!r}; kinds: {ENTRY_KINDS}")

    # ------------------------------------------------------------------
    # Composition into the injector's config
    # ------------------------------------------------------------------
    def fault_config(self) -> FaultConfig:
        """Compose the entries into one validated :class:`FaultConfig`.

        Resilience policy (retransmit timeouts, watchdog cadence) is part
        of the system under test, not the schedule: it is fixed here,
        scaled to the compressed co-scheduler period exactly as E8 does,
        so every generated scenario exercises the same defenses.
        """
        w = self.workload
        kinds = [e["kind"] for e in self.entries]
        for kind in _SINGLETON_KINDS:
            if kinds.count(kind) > 1:
                raise ValueError(f"duplicate singleton chaos axis {kind!r}")

        kwargs: dict = dict(
            enabled=True,
            retransmit_timeout_us=ms(2),
            retransmit_max_timeout_us=ms(16),
            watchdog_interval_us=w.period_us / 2.0,
        )
        node_faults = []
        cosched_faults = []
        for e in self.entries:
            kind = e["kind"]
            if kind == "net":
                kwargs.update(
                    msg_drop_prob=e.get("drop_prob", 0.0),
                    msg_dup_prob=e.get("dup_prob", 0.0),
                    msg_delay_prob=e.get("delay_prob", 0.0),
                    msg_delay_us=e.get("delay_us", ms(2)),
                    net_window_us=tuple(e.get("window_us", (0.0, float("inf")))),
                )
            elif kind == "pipe":
                kwargs.update(pipe_loss_prob=e["prob"])
            elif kind == "timesync":
                kwargs.update(
                    timesync_loss_at_us=e["at_us"],
                    clock_jump_us=e["jump_us"],
                    clock_drift_rate=e["drift_rate"],
                )
            elif kind == "policy":
                # Not a fault: consumed by policy_spec() / the oracle
                # harness, invisible to the injector.
                continue
            elif kind == "node":
                node_faults.append(
                    NodeFaultSpec(
                        node=e["node"],
                        at_us=e["at_us"],
                        duration_us=e["duration_us"],
                        kind=e["fault"],
                        fraction=e.get("fraction", 0.5),
                        period_us=e.get("period_us", ms(10)),
                    )
                )
            else:  # cosched
                cosched_faults.append(
                    CoschedFaultSpec(
                        node=e["node"],
                        at_us=e["at_us"],
                        kind=e["fault"],
                        duration_us=e.get("duration_us", 0.0),
                    )
                )
        cfg = FaultConfig(
            node_faults=tuple(node_faults),
            cosched_faults=tuple(cosched_faults),
            **kwargs,
        )
        cfg.validate_targets(w.n_nodes)
        return cfg

    def policy_spec(self) -> tuple:
        """``(name, params)`` of the policy entry — ``("aix", ())`` when
        the schedule carries none (the default system under test)."""
        for e in self.entries:
            if e["kind"] == "policy":
                params = tuple(
                    sorted((k, v) for k, v in e.items() if k not in ("kind", "name"))
                )
                return e["name"], params
        return "aix", ()

    # ------------------------------------------------------------------
    # Derivation helpers (used by the shrinker)
    # ------------------------------------------------------------------
    def with_entries(self, entries) -> "ChaosSchedule":
        """Copy with a different entry list (ddmin / field shrinking)."""
        return replace(self, entries=tuple(entries))

    # ------------------------------------------------------------------
    # Exact JSON round trip (regression corpus format)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-JSON form; ``from_json`` restores it bit-exactly."""
        return {
            "seed": self.seed,
            "workload": {
                "n_ranks": self.workload.n_ranks,
                "tasks_per_node": self.workload.tasks_per_node,
                "calls": self.workload.calls,
                "compute_between_us": self.workload.compute_between_us,
                "time_compression": self.workload.time_compression,
            },
            "entries": [dict(e) for e in self.entries],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChaosSchedule":
        return cls(
            seed=int(data["seed"]),
            workload=ChaosWorkload(**data["workload"]),
            entries=tuple(data["entries"]),
        )
