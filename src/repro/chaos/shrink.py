"""ddmin shrinking of failing chaos schedules.

A fuzzer-found failure usually carries a pile of irrelevant faults; the
counterexample worth committing to the regression corpus is the minimal
one.  Two phases, both re-running the oracle through the simulator:

* **Entry minimization** — Zeller & Hildebrandt's ddmin over the flat
  entry list: try complements at increasing granularity, keep any subset
  on which the *same oracle* still fails, until the list is 1-minimal
  (removing any single entry makes the failure vanish).
* **Field shrinking** — per-entry value reduction: halve probabilities,
  durations, delays, jumps and drifts; push fault times later (toward
  the end of the run).  Each candidate must keep the failure alive;
  passes repeat until a whole pass makes no progress.

Every probe costs one oracle evaluation (one or two DES runs), so the
shrinker runs under an evaluation budget: when it is exhausted the best
schedule found so far is returned — still failing, just possibly not
1-minimal.  All decisions are deterministic (no randomness, fixed probe
order), so shrinking the same failure twice yields byte-identical
minimized schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.chaos.oracles import judge
from repro.chaos.schedule import ChaosSchedule

__all__ = ["ShrinkResult", "shrink_schedule", "ddmin"]

#: Fields eligible for halving, per entry kind.
_HALVE_FIELDS = {
    "net": ("drop_prob", "dup_prob", "delay_prob", "delay_us"),
    "pipe": ("prob",),
    "node": ("duration_us", "fraction"),
    "cosched": ("duration_us",),
    "timesync": ("jump_us", "drift_rate"),
    "policy": ("slice_us", "min_granularity_us"),
}

#: Fields pushed later (toward the end of the run) instead of halved.
_LATER_FIELDS = {"node": ("at_us",), "cosched": ("at_us",), "timesync": ("at_us",)}

#: Below this, a probability/magnitude is not worth distinguishing from
#: zero and further halving just burns budget.
_FLOOR = 1e-4


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimized schedule plus telemetry."""

    schedule: ChaosSchedule
    original_entries: int
    evals: int
    budget: int

    @property
    def minimized_entries(self) -> int:
        return len(self.schedule.entries)


def ddmin(items: list, still_fails: Callable[[list], bool]) -> list:
    """Classic ddmin: 1-minimal sublist of *items* on which
    ``still_fails`` holds.  Assumes ``still_fails(items)`` is True."""
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk:]
            if complement and still_fails(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    return items


#: Optional fields the composer defaults when absent — removal is the
#: cleanest shrink of all, so it is tried before halving.
_REMOVABLE_FIELDS = {
    "net": ("drop_prob", "dup_prob", "delay_prob", "delay_us", "window_us"),
}


def _field_candidates(entry: dict, span_us: float):
    """Yield reduced variants of *entry*, one changed field at a time."""
    kind = entry["kind"]
    for name in _REMOVABLE_FIELDS.get(kind, ()):
        if name in entry:
            yield {k: v for k, v in entry.items() if k != name}
    for name in _HALVE_FIELDS.get(kind, ()):
        value = entry.get(name)
        if isinstance(value, (int, float)) and value > _FLOOR:
            yield {**entry, name: value * 0.5}
    for name in _LATER_FIELDS.get(kind, ()):
        value = entry.get(name)
        if isinstance(value, (int, float)):
            later = value + 0.5 * (0.9 * span_us - value)
            if later > value * 1.01:
                yield {**entry, name: later}
    if kind == "net" and isinstance(entry.get("window_us"), list):
        lo, hi = entry["window_us"]
        mid = lo + 0.5 * (hi - lo)
        if hi - mid > _FLOOR:
            yield {**entry, "window_us": [mid, hi]}  # shorter: starts later


def shrink_schedule(
    schedule: ChaosSchedule,
    primary_failure: str,
    *,
    check_determinism: Optional[bool] = None,
    budget: int = 60,
    span_us: Optional[float] = None,
) -> ShrinkResult:
    """Minimize *schedule* while *primary_failure* keeps failing.

    *primary_failure* is one oracle name (``liveness`` / ``safety`` /
    ``determinism``); a candidate reproduces the bug iff that oracle
    still fails on it — pinning the failure kind stops the shrinker from
    wandering onto a different bug mid-minimization.  The determinism
    replay is only paid when the bug *is* a determinism bug.
    """
    if check_determinism is None:
        check_determinism = primary_failure == "determinism"
    evals = 0

    def still_fails_schedule(candidate: ChaosSchedule) -> bool:
        nonlocal evals
        if evals >= budget:
            return False  # budget gone: conservatively reject the probe
        try:
            candidate.fault_config()  # invalid compositions never reproduce
        except ValueError:
            return False
        evals += 1
        report = judge(candidate, check_determinism=check_determinism)
        return primary_failure in report.failed

    def still_fails_entries(entries: list) -> bool:
        return still_fails_schedule(schedule.with_entries(entries))

    entries = ddmin(list(schedule.entries), still_fails_entries)

    # Field shrinking, to fixpoint or budget.
    span = span_us if span_us is not None else max(
        (e.get("at_us", 0.0) for e in entries), default=0.0
    ) + 2.0 * schedule.workload.period_us
    progress = True
    while progress and evals < budget:
        progress = False
        for i, entry in enumerate(entries):
            for candidate in _field_candidates(entry, span):
                trial = entries[:i] + [candidate] + entries[i + 1:]
                if still_fails_entries(trial):
                    entries = trial
                    progress = True
                    break  # re-derive candidates from the shrunk entry
            if progress:
                break

    return ShrinkResult(
        schedule=schedule.with_entries(entries),
        original_entries=len(schedule.entries),
        evals=evals,
        budget=budget,
    )
