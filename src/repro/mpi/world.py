"""Mailboxes, the per-rank API facade, and MPI job construction.

:class:`MpiWorld` owns delivery state; :class:`MpiApi` is the surface an
application body programs against; :class:`MpiJob` spawns the rank threads
(and their auxiliary timer threads) onto a cluster.

Timing semantics
----------------
* A send costs the LogP overhead *o* of CPU on the sender, then the fabric
  carries the message (latency + bytes/bandwidth) without consuming CPU.
* A receive costs *o* of CPU once the message is present.  While absent,
  the receiver either **spins** (default — keeps its CPU, preemptible) or
  **blocks** (releases the CPU), per ``MpiConfig.wait_mode``.
* Local reduction arithmetic costs ``reduce_op_us`` per combine.

The MPI timer threads ("progress engine", [MPICH02]-style) run every
``progress_interval_us`` at the priority of their task — they are threads
of the same process, so the co-scheduler's priority cycling moves them
together with the main thread, which is why the paper had to silence them
separately via ``MP_POLLING_INTERVAL``.
"""

from __future__ import annotations

import operator
from collections import deque
from typing import Any, Callable, Generator, Hashable, Optional

from repro.config import MpiConfig, PRIO_NORMAL
from repro.kernel.thread import Block, Compute, Sleep, SpinWait, Thread, ThreadState
from repro.machine.cluster import Cluster, Placement
from repro.mpi import collectives
from repro.mpi.messages import Message, ReliableTransport
from repro.sim.core import EventPriority
from repro.units import s

__all__ = ["MpiWorld", "MpiApi", "MpiJob"]


class MpiWorld:
    """Delivery fabric + mailboxes for one parallel job."""

    def __init__(self, cluster: Cluster, placement: Placement, config: MpiConfig) -> None:
        self.cluster = cluster
        self.placement = placement
        self.config = config
        self._mail: dict[tuple, deque] = {}
        self._spin_waiters: dict[tuple, Thread] = {}
        self._block_waiters: dict[tuple, Thread] = {}
        #: In-flight hardware-collective state, keyed by opid.
        self._hw_ops: dict = {}
        #: Rank -> thread, filled in by MpiJob.
        self.rank_threads: dict[int, Thread] = {}
        #: Optional hook called with each arriving Message before delivery
        #: (demand-based co-scheduling rides on this).
        self.arrival_listener = None
        #: Optional ReliableTransport installed by the fault injector; when
        #: present every point-to-point send is timeout/retransmit protected.
        self.reliability: Optional[ReliableTransport] = None
        #: Cross-shard identity (parallel DES).  Worlds are constructed in
        #: job-launch order on every shard, so the registration index names
        #: the same world everywhere without any exchange.
        self._world_uid: Optional[int] = None
        if cluster.router is not None:
            if config.algorithm == "hardware":
                raise ValueError(
                    "hardware collectives are not available under sharded "
                    "parallel DES (see repro.sim.parallel)"
                )
            self._world_uid = cluster.router.register(self._on_arrive)

    def install_reliability(self, faults) -> ReliableTransport:
        """Wrap sends in timeout + retransmit (see :class:`ReliableTransport`).

        Covers every software path — collectives are built from
        :meth:`send`/:meth:`recv` — but not the hardware-collective
        deposit/fan-out, which models a switch-internal guaranteed path.
        """
        self.reliability = ReliableTransport(
            self.cluster.sim,
            self.cluster.fabric,
            self._on_arrive,
            timeout_us=faults.retransmit_timeout_us,
            backoff=faults.retransmit_backoff,
            max_timeout_us=faults.retransmit_max_timeout_us,
            max_attempts=faults.retransmit_max_attempts,
            router=self.cluster.router,
        )
        return self.reliability

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, tag: Hashable, payload: Any, nbytes: int
    ) -> Generator:
        """Eager send: CPU overhead on the sender, then fire-and-forget."""
        yield Compute(self.cluster.config.network.overhead_us)
        msg = Message(src, dst, tag, payload, nbytes)
        src_node = self.placement.node_of(src)
        dst_node = self.placement.node_of(dst)
        router = self.cluster.router
        if self.reliability is not None:
            # The transport owns cross-shard routing for its own data and
            # ack envelopes (it registered dedicated router uids).
            self.reliability.send(src_node, dst_node, msg)
        elif router is not None and not router.owns(dst_node):
            # Cross-shard: account the send here (fault plane included —
            # per-link streams make its draws shard-stable), envelope each
            # surviving copy; the owning shard schedules delivery at the
            # same arrival times.
            for arrival in self.cluster.fabric.remote_arrivals(
                src_node, dst_node, nbytes
            ):
                router.emit(arrival, src_node, self._world_uid, dst_node, msg)
        else:
            self.cluster.fabric.transmit(src_node, dst_node, nbytes, msg, self._on_arrive)

    def recv(self, dst: int, src: int, tag: Hashable) -> Generator:
        """Receive; spins or blocks while the message is absent."""
        key = (dst, src, tag)
        q = self._mail.get(key)
        if q:
            msg = q.popleft()
        elif self.config.wait_mode == "poll":
            msg = yield SpinWait(self._make_spin_register(key))
        else:
            self._block_waiters[key] = self.rank_threads[dst]
            msg = yield Block()
            # The blocking path pays for the syscall + adapter interrupt +
            # scheduler wakeup that polling avoids.
            yield Compute(self.config.block_wakeup_cost_us)
        yield Compute(self.cluster.config.network.overhead_us)
        return msg

    def reduce_local(self, op: Callable, a: Any, b: Any, nbytes: int) -> Generator:
        """Combine two contributions, charging reduction CPU time."""
        yield Compute(self.config.reduce_op_us)
        return op(a, b)

    # ------------------------------------------------------------------
    # Hardware-assisted collectives (paper §7 future work)
    # ------------------------------------------------------------------
    def hw_allreduce(
        self, rank: int, size: int, opid: Any, value: Any, op: Callable, nbytes: int
    ) -> Generator:
        """Switch-combined Allreduce.

        Each rank pays send overhead and deposits its contribution at the
        adapter (half a wire hop to the switch); once all *size*
        contributions are in, the fabric combines them in
        ``hw_collective_latency_us`` and fans the result back out.  The
        laggard-rank sensitivity remains (the combine starts only after
        the slowest deposit) but the log-depth software cascade — where a
        preempted rank also stalls every later tree round — is gone.
        """
        net = self.cluster.config.network
        half_hop = net.latency_us / 2.0 + nbytes * net.per_byte_us
        state = self._hw_ops.get(opid)
        if state is None:
            state = {"count": 0, "acc": None, "op": op, "size": size}
            self._hw_ops[opid] = state

        yield Compute(net.overhead_us)
        self.cluster.sim.schedule(half_hop, self._hw_deposit, opid)
        # Contribution value folds immediately (the switch does the
        # arithmetic; order is fixed by rank for reproducibility).
        state["acc"] = value if state["acc"] is None else op(state["acc"], value)
        msg = yield from self.recv(rank, -1, ("hw", opid))
        return msg.payload

    def _hw_deposit(self, opid: Any) -> None:
        state = self._hw_ops[opid]
        state["count"] += 1
        if state["count"] < state["size"]:
            return
        del self._hw_ops[opid]
        result = state["acc"]
        net = self.cluster.config.network
        half_hop = net.latency_us / 2.0
        done = self.cluster.sim.now + net.hw_collective_latency_us + half_hop
        for r in range(state["size"]):
            self.cluster.sim.schedule_at(
                done,
                self._on_arrive,
                Message(-1, r, ("hw", opid), result, 8),
                priority=EventPriority.MESSAGE,
            )

    def _make_spin_register(self, key: tuple):
        def register(thread: Thread) -> Optional[Message]:
            q = self._mail.get(key)
            if q:
                return q.popleft()
            if key in self._spin_waiters:
                raise RuntimeError(f"second spinner for {key}")
            self._spin_waiters[key] = thread
            return None

        return register

    def _on_arrive(self, msg: Message) -> None:
        if self.arrival_listener is not None:
            self.arrival_listener(msg)
        key = msg.key
        spinner = self._spin_waiters.pop(key, None)
        if spinner is not None:
            node = self.cluster.nodes[spinner.node_id]
            node.scheduler.spin_deliver(spinner, msg)
            return
        blocker = self._block_waiters.pop(key, None)
        if blocker is not None and blocker.state is ThreadState.BLOCKED:
            node = self.cluster.nodes[blocker.node_id]
            node.scheduler.wake(blocker, msg)
            return
        if blocker is not None:
            # Registered but the Block syscall has not landed yet within
            # this timestamp; requeue and let the mailbox satisfy it.
            self._block_waiters[key] = blocker
        self._mail.setdefault(key, deque()).append(msg)

    def pending_messages(self) -> int:
        """Messages delivered but not yet received (test/debug aid)."""
        return sum(len(q) for q in self._mail.values())

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: mailboxes, waiters, hw-collective state.

        Mailbox keys are heterogeneous tuples (tags mix ints and strings),
        so entries sort by their repr — deterministic, and stable across
        rebuilds because keys contain only ranks and tags, never object
        identities.
        """
        by_repr = lambda kv: repr(kv[0])  # noqa: E731 - local sort key
        return {
            "mail": [
                [desc.value(k), [desc.value(m) for m in q]]
                for k, q in sorted(self._mail.items(), key=by_repr)
                if q
            ],
            "spin_waiters": [
                [desc.value(k), desc.thread(t)]
                for k, t in sorted(self._spin_waiters.items(), key=by_repr)
            ],
            "block_waiters": [
                [desc.value(k), desc.thread(t)]
                for k, t in sorted(self._block_waiters.items(), key=by_repr)
            ],
            "hw_ops": [
                [desc.value(opid), st["count"], st["size"], desc.value(st["acc"])]
                for opid, st in sorted(self._hw_ops.items(), key=by_repr)
            ],
            "reliability": (
                self.reliability.snapshot_state(desc)
                if self.reliability is not None
                else None
            ),
        }


class MpiApi:
    """Per-rank programming surface.

    Application bodies receive one of these and drive it with
    ``yield from``::

        def body(rank: int, api: MpiApi):
            yield from api.compute(1500.0)
            total = yield from api.allreduce(float(rank))
    """

    def __init__(self, world: MpiWorld, rank: int, size: int) -> None:
        self.world = world
        self.rank = rank
        self.size = size
        self._opid = 0
        #: Set by the co-scheduler integration; no-ops otherwise.
        self.cosched_control = None
        #: Set by the system builder when the node hosts an I/O service.
        self.io_service = None

    # -- environment ---------------------------------------------------
    @property
    def now(self) -> float:
        """Current global simulation time (µs)."""
        return self.world.cluster.sim.now

    def trace_mark(self, name: str, payload: Any = None) -> None:
        """Write an application trace record (AIX trace hook analogue)."""
        node = self.world.placement.node_of(self.rank)
        self.world.cluster.trace.mark(name, node, self.rank, self.now, payload)

    # -- local work ------------------------------------------------------
    def compute(self, duration_us: float) -> Generator:
        """Burn *duration_us* of CPU (preemptible)."""
        yield Compute(duration_us)

    def sleep(self, duration_us: float) -> Generator:
        """Release the CPU for *duration_us* (tick-quantised wakeup)."""
        yield Sleep(duration_us)

    # -- point-to-point --------------------------------------------------
    def send(self, dst: int, tag: Hashable, payload: Any = None, nbytes: int = 8) -> Generator:
        """Eager point-to-point send to *dst*."""
        yield from self.world.send(self.rank, dst, ("p2p", tag), payload, nbytes)

    def recv(self, src: int, tag: Hashable) -> Generator:
        """Receive from *src* (spins or blocks per wait_mode); returns payload."""
        msg = yield from self.world.recv(self.rank, src, ("p2p", tag))
        return msg.payload

    # -- collectives -----------------------------------------------------
    def _next_opid(self) -> int:
        self._opid += 1
        return self._opid

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = operator.add,
        nbytes: int = 8,
) -> Generator:
        """Allreduce *value* across the communicator with *op*."""
        opid = self._next_opid()
        if self.world.config.algorithm == "binomial":
            result = yield from collectives.allreduce_binomial(
                self.world, self.rank, self.size, opid, value, op, nbytes
            )
        elif self.world.config.algorithm == "hardware":
            result = yield from self.world.hw_allreduce(
                self.rank, self.size, opid, value, op, nbytes
            )
        else:
            result = yield from collectives.allreduce_recursive_doubling(
                self.world, self.rank, self.size, opid, value, op, nbytes
            )
        return result

    def barrier(self) -> Generator:
        """Dissemination barrier across all ranks."""
        opid = self._next_opid()
        yield from collectives.barrier_dissemination(self.world, self.rank, self.size, opid)

    def allgather(self, value: Any, nbytes: int = 8) -> Generator:
        """Ring allgather; returns the list of every rank's value."""
        opid = self._next_opid()
        result = yield from collectives.allgather_ring(
            self.world, self.rank, self.size, opid, value, nbytes
        )
        return result

    def bcast(self, value: Any, nbytes: int = 8) -> Generator:
        """Binomial broadcast from rank 0; returns the value everywhere."""
        opid = self._next_opid()
        result = yield from collectives.bcast_binomial(
            self.world, self.rank, self.size, opid, value, nbytes
        )
        return result

    def reduce_scatter(
        self,
        values: list,
        op: Callable[[Any, Any], Any] = operator.add,
        nbytes_per_block: int = 8,
    ) -> Generator:
        """Ring reduce-scatter; returns this rank's reduced block."""
        opid = self._next_opid()
        result = yield from collectives.reduce_scatter_ring(
            self.world, self.rank, self.size, opid, values, op, nbytes_per_block
        )
        return result

    def alltoall(self, values: list, nbytes_per_block: int = 8) -> Generator:
        """Pairwise all-to-all; returns blocks indexed by source rank."""
        opid = self._next_opid()
        result = yield from collectives.alltoall_pairwise(
            self.world, self.rank, self.size, opid, values, nbytes_per_block
        )
        return result

    def scan(
        self, value: Any, op: Callable[[Any, Any], Any] = operator.add, nbytes: int = 8
) -> Generator:
        """Inclusive prefix scan (op over ranks 0..self)."""
        opid = self._next_opid()
        result = yield from collectives.scan_linear_tree(
            self.world, self.rank, self.size, opid, value, op, nbytes
        )
        return result

    # -- I/O ---------------------------------------------------------------
    def io_request(self, nbytes: int) -> Generator:
        """Blocking I/O of *nbytes* through the node I/O service.

        The request completes only after the I/O worker daemon obtains CPU
        — the dependency that made naive co-scheduling slow ALE3D down.
        Without an installed I/O service the call is free (diskless runs).
        """
        if self.io_service is None:
            return
        yield from self.io_service.request(nbytes, self.world.rank_threads[self.rank])

    # -- co-scheduler escape hatch (paper §4) ------------------------------
    def cosched_detach(self) -> None:
        """Ask the node co-scheduler to stop boosting this task (I/O phase)."""
        if self.cosched_control is not None:
            self.cosched_control.request_detach(self.rank)

    def cosched_attach(self) -> None:
        """Re-enter co-scheduling after an I/O phase."""
        if self.cosched_control is not None:
            self.cosched_control.request_attach(self.rank)

    def fine_grain_begin(self) -> None:
        """Declare entry into a fine-grain region (tight collectives).

        With a ``fine_grain_only`` co-scheduler schedule, only declared
        regions receive the favored priority — the paper's §7 future-work
        mechanism.  No-op without a co-scheduler.
        """
        if self.cosched_control is not None:
            self.cosched_control.fine_grain(self.rank, True)

    def fine_grain_end(self) -> None:
        """Declare exit from a fine-grain region."""
        if self.cosched_control is not None:
            self.cosched_control.fine_grain(self.rank, False)


class MpiJob:
    """A parallel job: rank threads + auxiliary timer threads on a cluster.

    Parameters
    ----------
    body_factory:
        ``body_factory(rank, api) -> generator`` building each rank's body.
    priority:
        Starting dispatch priority of the tasks (AIX normal: 60).
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: Placement,
        body_factory: Callable[[int, MpiApi], Generator],
        config: Optional[MpiConfig] = None,
        priority: int = PRIO_NORMAL,
        name: str = "job",
        on_api: Optional[Callable[[MpiApi], None]] = None,
    ) -> None:
        self.cluster = cluster
        self.placement = placement
        self.config = config if config is not None else cluster.config.mpi
        self.world = MpiWorld(cluster, placement, self.config)
        self.name = name
        self.apis: list[MpiApi] = []
        self.tasks: list[Thread] = []
        self.timer_threads: list[Thread] = []
        self._done = 0
        self._finish_times: dict[int, float] = {}
        self.start_time = cluster.sim.now
        #: Ranks this cluster instance simulates (all of them serially;
        #: the owned shard block under parallel DES).
        self.local_ranks: list[int] = [
            r
            for r in range(placement.n_ranks)
            if cluster.owns_node(placement.node_of(r))
        ]

        n = placement.n_ranks
        local = set(self.local_ranks)
        for rank in range(n):
            node = cluster.nodes[placement.node_of(rank)]
            cpu = placement.cpu_of(rank)
            api = MpiApi(self.world, rank, n)
            if rank not in local:
                # Remote rank: keep the api list rank-indexed (environment
                # wiring is positional) but spawn nothing — its thread
                # lives on the owning shard.
                self.apis.append(api)
                continue
            if on_api is not None:
                # Environment wiring (I/O services etc.) must precede the
                # spawn: a body's first requests execute immediately.
                on_api(api)
            self.apis.append(api)
            body = self._wrap(body_factory(rank, api), rank)
            task = node.scheduler.spawn(
                body,
                name=f"{name}.r{rank}",
                priority=priority,
                affinity_cpu=cpu,
                category="app",
                allow_steal=False,
                start=False,
            )
            # Register before the first advance: a body's opening request
            # (e.g. an I/O submit) may need its own thread handle.
            self.world.rank_threads[rank] = task
            node.scheduler.start(task)
            self.tasks.append(task)
            if self.config.progress_threads_enabled:
                timer = node.scheduler.spawn(
                    self._timer_body(),
                    name=f"{name}.r{rank}.timer",
                    priority=priority,
                    affinity_cpu=cpu,
                    category="mpi_timer",
                    allow_steal=False,
                )
                self.timer_threads.append(timer)
                # Process-level priority changes (the co-scheduler's renice)
                # carry every thread of the process along.
                task.on_priority_change = self._make_mirror(node.scheduler, timer)

    @staticmethod
    def _make_mirror(scheduler, timer: Thread):
        def mirror(_task: Thread, _old: int, new: int) -> None:
            if timer.state is not ThreadState.FINISHED:
                scheduler.set_priority(timer, new)

        return mirror

    def _wrap(self, gen: Generator, rank: int) -> Generator:
        yield from gen
        self._done += 1
        self._finish_times[rank] = self.cluster.sim.now

    def _timer_body(self) -> Generator:
        # The progress engine runs for the life of the job.
        while not self.done:
            yield Sleep(self.config.progress_interval_us)
            if self.done:
                return
            yield Compute(self.config.progress_cost_us)

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: job progress plus the world underneath."""
        return {
            "name": self.name,
            "start_time": self.start_time,
            "done_count": self._done,
            "finish_times": [
                [r, t] for r, t in sorted(self._finish_times.items())
            ],
            "tasks": [desc.thread(t) for t in self.tasks],
            "timer_threads": [desc.thread(t) for t in self.timer_threads],
            "world": self.world.snapshot_state(desc),
        }

    @property
    def local_done(self) -> int:
        """Locally-simulated ranks that have finished (parallel DES)."""
        return self._done

    @property
    def done(self) -> bool:
        """All locally-simulated ranks finished.

        Serially that is every rank.  Under parallel DES it is the owned
        block — which is exactly what the per-shard consumers (timer-thread
        shutdown, co-scheduler retirement) should key on; *global*
        completion is the coordinator's business (it sums
        :attr:`local_done` across shards).
        """
        return self._done >= len(self.local_ranks)

    @property
    def finish_time(self) -> float:
        """Global time the last rank finished (only valid once done)."""
        if not self.done:
            raise RuntimeError("job not finished")
        return max(self._finish_times.values())

    @property
    def elapsed_us(self) -> float:
        return self.finish_time - self.start_time

    def run(self, horizon_us: float, chunk_us: float = s(1.0)) -> float:
        """Drive the simulator until the job completes; returns elapsed µs.

        Raises if the job has not finished by ``horizon_us`` — a run that
        needs more time is almost always a deadlock or a starved I/O
        daemon, and failing fast beats simulating silence.
        """
        sim = self.cluster.sim
        while not self.done and sim.now < horizon_us:
            sim.run_until(min(horizon_us, sim.now + chunk_us))
        if not self.done:
            raise RuntimeError(
                f"job {self.name!r} incomplete at horizon {horizon_us}: "
                f"{self._done}/{self.placement.n_ranks} ranks finished"
            )
        return self.elapsed_us
