"""Message envelope and reliable-delivery layer for the MPI model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.sim.core import EventPriority

__all__ = ["Message", "ReliableTransport"]


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    ``tag`` is any hashable; collectives use ``(operation id, phase)``
    tuples so that concurrent operations and rounds can never be confused
    (the simulator equivalent of MPI's reserved collective tag space).
    """

    src: int
    dst: int
    tag: Hashable
    payload: Any
    nbytes: int

    @property
    def key(self) -> tuple:
        return (self.dst, self.src, self.tag)


class ReliableTransport:
    """Sender-side timeout + retransmit over a lossy fabric.

    Installed per job world by the fault injector; every point-to-point
    send (and hence every software collective round) flows through it.
    Each message carries a ``(src_node, seq)`` key — sequence numbers are
    allocated per source node, so the key is globally unique even when
    the job's nodes are split across parallel-DES shards.  The receive
    side suppresses duplicates (retransmitted or fabric-duplicated
    copies) and, on first delivery, sends an **ack** back on the
    link-level-guaranteed path (``faultable=False``, zero bytes); the ack
    cancels the sender's pending retransmit timer.  Retransmits back off
    exponentially up to ``max_timeout_us``; the attempt that reaches
    ``max_attempts`` goes out on the guaranteed path itself, which bounds
    loss and is why collectives cannot deadlock even at
    ``msg_drop_prob = 1``.

    Under parallel DES (*router* given) both data and acks cross shard
    boundaries as first-class router envelopes: the transport registers
    one delivery uid for data and one for acks at construction — worlds
    and transports are constructed in launch order on every shard, so the
    uids agree without any exchange.  Acks never consult the fault plane,
    so they consume no per-link fault draws, and their wire time is the
    full remote latency — at or above the coordinator's lookahead —
    keeping the conservative window sound.

    With no faults active the extra cost per message is one wrapper
    tuple, one timer event, and one ack message; the timer is cancelled
    when the ack lands, well before ms-scale timeouts fire, so timings of
    the data path are unperturbed.
    """

    #: Acks model a header-only control packet: zero payload bytes.
    ACK_NBYTES = 0

    def __init__(
        self,
        sim,
        fabric,
        deliver: Callable[[Message], None],
        *,
        timeout_us: float,
        backoff: float,
        max_timeout_us: float,
        max_attempts: int,
        router=None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.deliver = deliver
        self.timeout_us = timeout_us
        self.backoff = backoff
        self.max_timeout_us = max_timeout_us
        self.max_attempts = max_attempts
        self.router = router
        #: Per-source-node sequence counters.
        self._next_seq: dict[int, int] = {}
        #: (src_node, seq) -> [src_node, dst_node, msg, attempt, timeout, timer_event]
        self._inflight: dict[tuple, list] = {}
        self._delivered: set[tuple] = set()
        self.retransmits = 0
        self.duplicates_dropped = 0
        self.forced = 0
        #: Messages abandoned at the attempt cap — only the planted
        #: ``retransmit_giveup`` demo bug can make this non-zero.
        self.gaveup = 0
        if router is not None:
            self._data_uid = router.register(self._on_arrive)
            self._ack_uid = router.register(self._on_ack)
        else:
            self._data_uid = self._ack_uid = None

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: counters, in-flight entries, delivered digest."""
        import hashlib

        delivered = ",".join(map(str, sorted(self._delivered)))
        return {
            "next_seq": [list(kv) for kv in sorted(self._next_seq.items())],
            "retransmits": self.retransmits,
            "duplicates_dropped": self.duplicates_dropped,
            "forced": self.forced,
            "n_delivered": len(self._delivered),
            "delivered": hashlib.sha256(delivered.encode()).hexdigest(),
            "inflight": [
                [
                    list(key),
                    e[0],
                    e[1],
                    desc.value(e[2]),
                    e[3],
                    e[4],
                    desc.event(e[5]),
                ]
                for key, e in sorted(self._inflight.items())
            ],
        }

    def send(self, src_node: int, dst_node: int, msg: Message) -> None:
        """Launch *msg* with retransmit protection."""
        seq = self._next_seq.get(src_node, 0)
        self._next_seq[src_node] = seq + 1
        key = (src_node, seq)
        entry = [src_node, dst_node, msg, 1, self.timeout_us, None]
        self._inflight[key] = entry
        self._transmit_data(key, entry, faultable=True)
        entry[5] = self.sim.schedule(
            self.timeout_us, self._on_timeout, key, priority=EventPriority.KERNEL
        )

    def _transmit_data(self, key: tuple, entry: list, faultable: bool) -> None:
        """One data copy, local schedule or cross-shard envelope(s)."""
        src_node, dst_node, msg = entry[0], entry[1], entry[2]
        wrapped = (key, dst_node, msg)
        if self.router is not None and not self.router.owns(dst_node):
            for arrival in self.fabric.remote_arrivals(
                src_node, dst_node, msg.nbytes, faultable=faultable
            ):
                self.router.emit(arrival, src_node, self._data_uid, dst_node, wrapped)
        else:
            self.fabric.transmit(
                src_node, dst_node, msg.nbytes, wrapped, self._on_arrive,
                faultable=faultable,
            )

    def _on_arrive(self, wrapped: tuple) -> None:
        key, dst_node, msg = wrapped
        if key in self._delivered:
            self.duplicates_dropped += 1
            return
        self._delivered.add(key)
        self._send_ack(key, dst_node)
        self.deliver(msg)

    def _send_ack(self, key: tuple, dst_node: int) -> None:
        """Ack from the receiver's node back to the sender's (guaranteed)."""
        src_node = key[0]
        if self.router is not None and not self.router.owns(src_node):
            for arrival in self.fabric.remote_arrivals(
                dst_node, src_node, self.ACK_NBYTES, faultable=False
            ):
                self.router.emit(arrival, dst_node, self._ack_uid, src_node, key)
        else:
            self.fabric.transmit(
                dst_node, src_node, self.ACK_NBYTES, key, self._on_ack,
                faultable=False,
            )

    def _on_ack(self, key: tuple) -> None:
        entry = self._inflight.pop(key, None)
        if entry is not None and entry[5] is not None:
            entry[5].cancel()
            entry[5] = None

    def _on_timeout(self, key: tuple) -> None:
        entry = self._inflight.get(key)
        if entry is None:  # acked in the meantime
            return
        attempt = entry[3] + 1
        self.retransmits += 1
        entry[3] = attempt
        if attempt >= self.max_attempts:
            # Imported here, not at module top: repro.faults pulls in the
            # co-scheduler which pulls in repro.mpi.world (cycle), and
            # this branch is cold — it runs once per attempt-capped
            # message, never in a fault-free run.
            from repro.faults.demo import demo_bug_enabled

            if demo_bug_enabled("retransmit_giveup"):
                # Planted bug (REPRO_CHAOS_BUG=retransmit_giveup): give up
                # instead of taking the guaranteed path.  The message is
                # silently lost forever; the entry stays in-flight with no
                # timer, so seq accounting holds but the receiver starves —
                # the deadlock the chaos liveness oracle must catch.
                self.gaveup += 1
                entry[5] = None
                return
            # Last resort: the guaranteed link-level path.  No further timer
            # — this copy always lands (dedup still applies if an earlier
            # copy limps in first), and its ack retires the entry.
            self.forced += 1
            entry[5] = None
            self._transmit_data(key, entry, faultable=False)
            return
        entry[4] = min(entry[4] * self.backoff, self.max_timeout_us)
        self._transmit_data(key, entry, faultable=True)
        entry[5] = self.sim.schedule(
            entry[4], self._on_timeout, key, priority=EventPriority.KERNEL
        )
