"""Message envelope and reliable-delivery layer for the MPI model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.sim.core import EventPriority

__all__ = ["Message", "ReliableTransport"]


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    ``tag`` is any hashable; collectives use ``(operation id, phase)``
    tuples so that concurrent operations and rounds can never be confused
    (the simulator equivalent of MPI's reserved collective tag space).
    """

    src: int
    dst: int
    tag: Hashable
    payload: Any
    nbytes: int

    @property
    def key(self) -> tuple:
        return (self.dst, self.src, self.tag)


class ReliableTransport:
    """Sender-side timeout + retransmit over a lossy fabric.

    Installed per job world by the fault injector; every point-to-point
    send (and hence every software collective round) flows through it.
    Each message carries a sequence number: the receive side suppresses
    duplicates (retransmitted or fabric-duplicated copies) and, on first
    delivery, cancels the sender's pending retransmit timer — the abstract
    equivalent of a zero-cost ack.  Retransmits back off exponentially up
    to ``max_timeout_us``; the attempt that reaches ``max_attempts`` goes
    out on the link-level-guaranteed path (``faultable=False``), which
    bounds loss and is why collectives cannot deadlock even at
    ``msg_drop_prob = 1``.

    With no faults active the extra cost is one wrapper tuple and one
    timer event per message; the timer is cancelled on delivery, so it
    never fires and never perturbs timings.
    """

    def __init__(
        self,
        sim,
        fabric,
        deliver: Callable[[Message], None],
        *,
        timeout_us: float,
        backoff: float,
        max_timeout_us: float,
        max_attempts: int,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.deliver = deliver
        self.timeout_us = timeout_us
        self.backoff = backoff
        self.max_timeout_us = max_timeout_us
        self.max_attempts = max_attempts
        self._next_seq = 0
        #: seq -> [src_node, dst_node, msg, attempt, timeout, timer_event]
        self._inflight: dict[int, list] = {}
        self._delivered: set[int] = set()
        self.retransmits = 0
        self.duplicates_dropped = 0
        self.forced = 0
        #: Messages abandoned at the attempt cap — only the planted
        #: ``retransmit_giveup`` demo bug can make this non-zero.
        self.gaveup = 0

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: counters, in-flight entries, delivered digest."""
        import hashlib

        delivered = ",".join(map(str, sorted(self._delivered)))
        return {
            "next_seq": self._next_seq,
            "retransmits": self.retransmits,
            "duplicates_dropped": self.duplicates_dropped,
            "forced": self.forced,
            "n_delivered": len(self._delivered),
            "delivered": hashlib.sha256(delivered.encode()).hexdigest(),
            "inflight": [
                [
                    seq,
                    e[0],
                    e[1],
                    desc.value(e[2]),
                    e[3],
                    e[4],
                    desc.event(e[5]),
                ]
                for seq, e in sorted(self._inflight.items())
            ],
        }

    def send(self, src_node: int, dst_node: int, msg: Message) -> None:
        """Launch *msg* with retransmit protection."""
        seq = self._next_seq
        self._next_seq += 1
        entry = [src_node, dst_node, msg, 1, self.timeout_us, None]
        self._inflight[seq] = entry
        self.fabric.transmit(src_node, dst_node, msg.nbytes, (seq, msg), self._on_arrive)
        entry[5] = self.sim.schedule(
            self.timeout_us, self._on_timeout, seq, priority=EventPriority.KERNEL
        )

    def _on_arrive(self, wrapped: tuple) -> None:
        seq, msg = wrapped
        if seq in self._delivered:
            self.duplicates_dropped += 1
            return
        self._delivered.add(seq)
        entry = self._inflight.pop(seq, None)
        if entry is not None and entry[5] is not None:
            entry[5].cancel()
        self.deliver(msg)

    def _on_timeout(self, seq: int) -> None:
        entry = self._inflight.get(seq)
        if entry is None:  # delivered in the meantime
            return
        src_node, dst_node, msg, attempt, timeout, _ = entry
        attempt += 1
        self.retransmits += 1
        entry[3] = attempt
        if attempt >= self.max_attempts:
            # Imported here, not at module top: repro.faults pulls in the
            # co-scheduler which pulls in repro.mpi.world (cycle), and
            # this branch is cold — it runs once per attempt-capped
            # message, never in a fault-free run.
            from repro.faults.demo import demo_bug_enabled

            if demo_bug_enabled("retransmit_giveup"):
                # Planted bug (REPRO_CHAOS_BUG=retransmit_giveup): give up
                # instead of taking the guaranteed path.  The message is
                # silently lost forever; the entry stays in-flight with no
                # timer, so seq accounting holds but the receiver starves —
                # the deadlock the chaos liveness oracle must catch.
                self.gaveup += 1
                entry[5] = None
                return
            # Last resort: the guaranteed link-level path.  No further timer
            # — this copy always lands (dedup still applies if an earlier
            # copy limps in first).
            self.forced += 1
            entry[5] = None
            self.fabric.transmit(
                src_node, dst_node, msg.nbytes, (seq, msg), self._on_arrive, faultable=False
            )
            return
        timeout = min(timeout * self.backoff, self.max_timeout_us)
        entry[4] = timeout
        self.fabric.transmit(src_node, dst_node, msg.nbytes, (seq, msg), self._on_arrive)
        entry[5] = self.sim.schedule(
            timeout, self._on_timeout, seq, priority=EventPriority.KERNEL
        )
