"""Message envelope for the MPI model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    ``tag`` is any hashable; collectives use ``(operation id, phase)``
    tuples so that concurrent operations and rounds can never be confused
    (the simulator equivalent of MPI's reserved collective tag space).
    """

    src: int
    dst: int
    tag: Hashable
    payload: Any
    nbytes: int

    @property
    def key(self) -> tuple:
        return (self.dst, self.src, self.tag)
