"""MPI runtime model (IBM Parallel Environment class).

Ranks are kernel threads whose bodies express communication through the
world/API layer; every send/receive charges CPU overhead as schedulable
work, and a waiting receive **spins on its CPU** by default (IBM MPI's
``MP_WAIT_MODE=poll``), so "waiting" tasks still occupy processors and are
exposed to preemption by daemons — the substrate of the paper's pathology.

* :mod:`repro.mpi.world` — mailboxes, delivery, the per-rank API facade,
  and job construction (including the MPI timer "progress engine" threads,
  §5.3);
* :mod:`repro.mpi.collectives` — recursive-doubling and binomial-tree
  Allreduce, dissemination Barrier, ring Allgather, binomial Bcast; each
  is a generator composed of point-to-point operations, so collective
  latency under interference is emergent.
"""

from repro.mpi.world import MpiApi, MpiJob, MpiWorld
from repro.mpi.messages import Message

__all__ = ["MpiWorld", "MpiApi", "MpiJob", "Message"]
