"""Collective algorithms as point-to-point compositions.

Each collective is a generator to be driven inside an MPI rank's thread
body (``result = yield from allreduce_recursive_doubling(...)``).  All CPU
costs — send/receive overheads, reduction arithmetic — surface as Compute
requests through the world layer, so a daemon preempting one rank mid-tree
stalls exactly the subtree that depends on it.

Algorithms
----------
* ``allreduce_recursive_doubling`` — MPICH-style, with the standard
  fold/unfold handling for non-power-of-two sizes.  Each rank performs
  about ``2·log2(N)`` point-to-point communications, the figure the paper
  quotes for "the standard tree algorithm for MPI_Allreduce", and the
  zero-noise latency grows logarithmically — the baseline the measured
  linear scaling is contrasted against.
* ``allreduce_binomial`` — binomial-tree reduce to rank 0 followed by a
  binomial broadcast; deeper critical path, used for the algorithm
  ablation.
* ``barrier_dissemination`` — ceil(log2 N) rounds of staggered tokens.
* ``allgather_ring`` — the ring pattern the paper lists among fine-grain
  susceptible operations.
* ``bcast_binomial`` / ``reduce_binomial`` — building blocks, also public.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Hashable

__all__ = [
    "allreduce_recursive_doubling",
    "allreduce_binomial",
    "reduce_binomial",
    "bcast_binomial",
    "barrier_dissemination",
    "allgather_ring",
    "reduce_scatter_ring",
    "alltoall_pairwise",
    "scan_linear_tree",
]


def _pof2_below(n: int) -> int:
    """Largest power of two <= n."""
    return 1 << (n.bit_length() - 1)


def allreduce_recursive_doubling(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    nbytes: int = 8,
):
    """Recursive-doubling Allreduce (MPICH lineage).

    Non-power-of-two sizes fold the first ``2·rem`` ranks pairwise onto the
    odd members, run recursive doubling among ``pof2`` participants, then
    unfold the result back to the even members.
    """
    if size == 1:
        return value
    pof2 = _pof2_below(size)
    rem = size - pof2

    def tag(phase: Hashable) -> tuple:
        return (opid, phase)

    newrank = -1
    if rank < 2 * rem:
        if rank % 2 == 0:
            # Fold: hand my contribution to my odd neighbour and wait for
            # the final result at the end.
            yield from world.send(rank, rank + 1, tag("fold"), value, nbytes)
            msg = yield from world.recv(rank, rank + 1, tag("unfold"))
            return msg.payload
        msg = yield from world.recv(rank, rank - 1, tag("fold"))
        value = yield from world.reduce_local(op, value, msg.payload, nbytes)
        newrank = rank // 2
    else:
        newrank = rank - rem

    mask = 1
    rnd = 0
    while mask < pof2:
        newdst = newrank ^ mask
        dst = newdst * 2 + 1 if newdst < rem else newdst + rem
        yield from world.send(rank, dst, tag(("rd", rnd)), value, nbytes)
        msg = yield from world.recv(rank, dst, tag(("rd", rnd)))
        value = yield from world.reduce_local(op, value, msg.payload, nbytes)
        mask <<= 1
        rnd += 1

    if rank < 2 * rem:  # odd member: unfold to my even neighbour
        yield from world.send(rank, rank - 1, tag("unfold"), value, nbytes)
    return value


def reduce_binomial(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    nbytes: int = 8,
):
    """Binomial-tree reduction to rank 0; non-roots return None."""
    if size == 1:
        return value

    def tag(phase: Hashable) -> tuple:
        return (opid, "reduce", phase)

    mask = 1
    while mask < size:
        if rank & mask:
            dst = rank & ~mask
            yield from world.send(rank, dst, tag(rank), value, nbytes)
            return None
        src = rank | mask
        if src < size:
            msg = yield from world.recv(rank, src, tag(src))
            value = yield from world.reduce_local(op, value, msg.payload, nbytes)
        mask <<= 1
    return value


def bcast_binomial(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    value: Any,
    nbytes: int = 8,
):
    """Binomial broadcast from rank 0; every rank returns the value."""
    if size == 1:
        return value

    def tag(dst: int) -> tuple:
        return (opid, "bcast", dst)

    if rank != 0:
        src = rank & (rank - 1)  # clear lowest set bit: binomial parent
        msg = yield from world.recv(rank, src, tag(rank))
        value = msg.payload

    # Children of r are r + 2^j for 2^j below r's lowest set bit (all j for
    # the root).  Larger subtrees first, so deep branches start early.
    low = rank & -rank if rank != 0 else _pof2_below(size) << 1
    child_bit = _pof2_below(size)
    while child_bit >= 1:
        if child_bit < low:
            child = rank + child_bit
            if child < size:
                yield from world.send(rank, child, tag(child), value, nbytes)
        child_bit >>= 1
    return value


def allreduce_binomial(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    nbytes: int = 8,
):
    """Reduce-then-broadcast Allreduce (deeper critical path than RD)."""
    reduced = yield from reduce_binomial(world, rank, size, opid, value, op, nbytes)
    result = yield from bcast_binomial(world, rank, size, opid, reduced, nbytes)
    return result


def barrier_dissemination(world, rank: int, size: int, opid: Hashable):
    """Dissemination barrier: ceil(log2 N) token rounds."""
    if size == 1:
        return None
    k = 0
    dist = 1
    while dist < size:
        dst = (rank + dist) % size
        src = (rank - dist) % size
        yield from world.send(rank, dst, (opid, "bar", k), None, 4)
        yield from world.recv(rank, src, (opid, "bar", k))
        k += 1
        dist <<= 1
    return None


def reduce_scatter_ring(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    values: list,
    op: Callable[[Any, Any], Any] = operator.add,
    nbytes_per_block: int = 8,
):
    """Ring reduce-scatter: rank *i* ends with the reduction of block *i*.

    N−1 steps; at step *s* each rank sends the partially-reduced block
    ``(rank - s - 1) mod N`` to its right neighbour and folds the block it
    receives — the bandwidth-optimal half of Rabenseifner's Allreduce.
    """
    if len(values) != size:
        raise ValueError(f"need one block per rank; got {len(values)} for {size}")
    if size == 1:
        return values[0]
    blocks = list(values)
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        # Offsets chosen so the last fold lands on the rank's own block.
        send_idx = (rank - step - 1) % size
        recv_idx = (rank - step - 2) % size
        yield from world.send(
            rank, right, (opid, "rs", step), (send_idx, blocks[send_idx]), nbytes_per_block
        )
        msg = yield from world.recv(rank, left, (opid, "rs", step))
        idx, val = msg.payload
        assert idx == recv_idx
        blocks[idx] = yield from world.reduce_local(op, blocks[idx], val, nbytes_per_block)
    return blocks[rank]


def alltoall_pairwise(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    values: list,
    nbytes_per_block: int = 8,
):
    """Pairwise-exchange all-to-all: N−1 rounds, partner ``rank XOR step``
    when N is a power of two, else the shifted-ring schedule.

    Returns the list of blocks received (index = source rank).
    """
    if len(values) != size:
        raise ValueError(f"need one block per rank; got {len(values)} for {size}")
    result: list[Any] = [None] * size
    result[rank] = values[rank]
    pow2 = size & (size - 1) == 0
    for step in range(1, size):
        if pow2:
            partner = rank ^ step
        else:
            partner = (rank + step) % size
        src = partner if pow2 else (rank - step) % size
        yield from world.send(rank, partner, (opid, "a2a", step), values[partner], nbytes_per_block)
        msg = yield from world.recv(rank, src, (opid, "a2a", step))
        result[src] = msg.payload
    return result


def scan_linear_tree(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    value: Any,
    op: Callable[[Any, Any], Any] = operator.add,
    nbytes: int = 8,
):
    """Inclusive scan via recursive doubling: rank *i* gets op over ranks
    0..i.  log2(N) rounds; each rank folds contributions arriving from the
    left and forwards its running prefix to the right."""
    if size == 1:
        return value
    prefix = value
    dist = 1
    rnd = 0
    while dist < size:
        if rank + dist < size:
            yield from world.send(rank, rank + dist, (opid, "scan", rnd), prefix, nbytes)
        if rank - dist >= 0:
            msg = yield from world.recv(rank, rank - dist, (opid, "scan", rnd))
            prefix = yield from world.reduce_local(op, msg.payload, prefix, nbytes)
        dist <<= 1
        rnd += 1
    return prefix


def allgather_ring(
    world,
    rank: int,
    size: int,
    opid: Hashable,
    value: Any,
    nbytes: int = 8,
):
    """Ring allgather: N−1 neighbour exchanges; returns the full list."""
    blocks: list[Any] = [None] * size
    blocks[rank] = value
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_idx = rank
    for step in range(size - 1):
        yield from world.send(rank, right, (opid, "ring", step), (send_idx, blocks[send_idx]), nbytes)
        msg = yield from world.recv(rank, left, (opid, "ring", step))
        idx, val = msg.payload
        blocks[idx] = val
        send_idx = idx
    return blocks
