"""High-level system builder: cluster + noise + I/O + job + co-scheduler.

The one-stop assembly used by examples, experiments and integration tests::

    from repro.system import System
    sys_ = System(config)                       # cluster + daemon ecology
    job = sys_.launch(n_ranks=64, tasks_per_node=16, body_factory=body)
    elapsed = job.run(horizon_us=s(60))

``System`` owns everything long-lived (cluster, daemons, per-node I/O
services); ``launch`` starts a parallel job and — when the config enables
it — the co-scheduler, exactly as POE would when ``MP_PRIORITY`` matches
an admin-file record.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.config import ClusterConfig, NoiseConfig, PRIO_NORMAL
from repro.cosched.coscheduler import JobCoscheduler
from repro.daemons.engine import DaemonHandle, install_noise
from repro.daemons.io import IoService
from repro.faults.injector import FaultInjector
from repro.machine.cluster import Cluster
from repro.mpi.world import MpiApi, MpiJob
from repro.trace.recorder import TraceRecorder

__all__ = ["System"]


class System:
    """A booted machine ready to run parallel jobs.

    Parameters
    ----------
    config:
        Full cluster description (machine/kernel/network/mpi/cosched/noise).
    noise:
        Override the config's noise ecology (ablations); ``None`` uses
        ``config.noise``.
    trace:
        Optional recorder wired into every node's dispatcher.
    with_io:
        Install an :class:`~repro.daemons.io.IoService` per node
        (applications with I/O phases need one).
    io_priority:
        Priority of the I/O worker daemons (paper: mmfsd at 40).
    shard:
        ``(shard_id, ShardPlan)`` under parallel DES
        (:mod:`repro.sim.parallel`); installs only the owned node block.
    meanfield:
        Optional :class:`~repro.sim.meanfield.MeanFieldConfig` batching
        background daemon activations on unwatched nodes.
    """

    def __init__(
        self,
        config: ClusterConfig,
        noise: Optional[NoiseConfig] = None,
        trace: Optional[TraceRecorder] = None,
        with_io: bool = False,
        io_priority: int = 40,
        shard: Optional[tuple] = None,
        meanfield=None,
    ) -> None:
        self.config = config
        self.cluster = Cluster(config, trace=trace, shard=shard)
        self.daemons: list[DaemonHandle] = install_noise(
            self.cluster,
            noise if noise is not None else config.noise,
            meanfield=meanfield,
        )
        self.io_services: list[Optional[IoService]] = []
        if with_io:
            # Rank-indexed wiring stays positional; non-owned nodes (parallel
            # DES) get None so no worker daemon is spawned on an inert replica.
            self.io_services = [
                IoService(node, priority=io_priority)
                if self.cluster.owns_node(node.id)
                else None
                for node in self.cluster.nodes
            ]
        self.coscheds: list[JobCoscheduler] = []
        #: Every job ever launched, in launch order (checkpoint walk).
        self.jobs: list[MpiJob] = []
        #: Fault injector, or None when ``config.faults.enabled`` is off —
        #: in which case no hook of any kind is installed (zero overhead).
        self.injector: Optional[FaultInjector] = (
            FaultInjector(self.cluster, config.faults) if config.faults.enabled else None
        )

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def trace(self) -> TraceRecorder:
        return self.cluster.trace

    def launch(
        self,
        n_ranks: int,
        tasks_per_node: int,
        body_factory: Callable[[int, MpiApi], Generator],
        priority: int = PRIO_NORMAL,
        name: str = "job",
    ) -> MpiJob:
        """Start an MPI job (and its co-scheduler when configured)."""
        placement = self.cluster.place(n_ranks, tasks_per_node)

        def wire(api: MpiApi) -> None:
            if self.io_services:
                api.io_service = self.io_services[placement.node_of(api.rank)]

        job = MpiJob(
            self.cluster, placement, body_factory, priority=priority, name=name, on_api=wire
        )
        job_cosched = None
        if self.config.cosched.enabled:
            job_cosched = JobCoscheduler(
                self.cluster,
                job,
                pipe_filter=self.injector.pipe_filter if self.injector is not None else None,
            )
            self.coscheds.append(job_cosched)
        if self.injector is not None:
            self.injector.attach_job(job, job_cosched)
        self.jobs.append(job)
        return job

    def snapshot_state(self, desc) -> dict:
        """Full-system checkpoint view: every mutable layer, one dict.

        The describer normalises thread identity (tids are process-global
        and differ between rebuilds), so two runs that performed the same
        events produce byte-identical JSON — the property the checkpoint
        fingerprint relies on.
        """
        return {
            "cluster": self.cluster.snapshot_state(desc),
            "daemons": [
                {
                    "name": h.spec.name,
                    "node": h.node,
                    "cpu": h.cpu,
                    "thread": desc.thread(h.thread),
                    "activations": h.activations[0],
                }
                for h in self.daemons
            ],
            "coscheds": [jc.snapshot_state(desc) for jc in self.coscheds],
            "injector": (
                self.injector.snapshot_state(desc)
                if self.injector is not None
                else None
            ),
            "jobs": [job.snapshot_state(desc) for job in self.jobs],
        }
