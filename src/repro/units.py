"""Time units and formatting helpers.

The canonical simulated-time unit throughout :mod:`repro` is the
**microsecond**, stored as a ``float``.  The paper reports collective
latencies in microseconds, daemon service times in milliseconds, and
co-scheduler periods in seconds; these helpers keep call sites legible
(``ms(10)`` instead of ``10_000.0``) and make unit mistakes greppable.
"""

from __future__ import annotations

__all__ = [
    "USEC",
    "MSEC",
    "SEC",
    "us",
    "ms",
    "s",
    "to_ms",
    "to_s",
    "format_time",
]

#: One microsecond expressed in canonical units (identity).
USEC: float = 1.0
#: One millisecond expressed in canonical units.
MSEC: float = 1_000.0
#: One second expressed in canonical units.
SEC: float = 1_000_000.0


def us(value: float) -> float:
    """Return *value* microseconds in canonical units (identity, for symmetry)."""
    return float(value)


def ms(value: float) -> float:
    """Return *value* milliseconds in canonical units (microseconds)."""
    return float(value) * MSEC


def s(value: float) -> float:
    """Return *value* seconds in canonical units (microseconds)."""
    return float(value) * SEC


def to_ms(value_us: float) -> float:
    """Convert canonical microseconds to milliseconds."""
    return value_us / MSEC


def to_s(value_us: float) -> float:
    """Convert canonical microseconds to seconds."""
    return value_us / SEC


def format_time(value_us: float) -> str:
    """Render a canonical time compactly with an appropriate unit.

    >>> format_time(350.0)
    '350.0us'
    >>> format_time(2_240.0)
    '2.240ms'
    >>> format_time(5_000_000.0)
    '5.000s'
    """
    if value_us < 0:
        return "-" + format_time(-value_us)
    if value_us < MSEC:
        return f"{value_us:.1f}us"
    if value_us < SEC:
        return f"{value_us / MSEC:.3f}ms"
    return f"{value_us / SEC:.3f}s"
