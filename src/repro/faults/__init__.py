"""Deterministic fault injection and resilience (see :mod:`repro.faults.injector`).

The paper's argument is about what happens when coordination is absent or
broken; this package makes the broken cases expressible.  Everything is
seed-driven through :mod:`repro.rng` named streams and scheduled on the
shared :class:`~repro.sim.core.Simulator` — no wall-clock randomness — so
every fault scenario replays exactly.
"""

from repro.faults.injector import FaultInjector, NetFaultPlane
from repro.faults.watchdog import CoschedWatchdog

__all__ = ["FaultInjector", "NetFaultPlane", "CoschedWatchdog"]
