"""Per-node watchdog for the co-scheduler daemon.

The co-scheduler is a single point of failure per node: if it dies after
an unfavor flip, the job's tasks are stuck at the unfavored priority and
the node falls out of the coordinated schedule entirely.  The watchdog is
a tiny independent thread (think init/srcmstr respawn) that periodically
checks the daemon:

* thread finished while the job is still running → daemon died → restart;
* heartbeat stale by more than ``watchdog_staleness_periods`` co-schedule
  periods → daemon wedged in a stuck syscall → kill and restart;
* a live task the daemon does not know about → its control-pipe
  registration was lost → re-send it.

Restarts go through ``JobCoscheduler.restart_node``, which re-registers
the node's tasks over the (possibly still lossy) control pipe; a lost
re-registration is caught again by the audit on a later pass.

The watchdog never issues ``Compute`` requests — it wakes, inspects
state, and sleeps — so it occupies no CPU, produces no trace intervals,
and cannot itself perturb the schedule it guards.
"""

from __future__ import annotations

from repro.kernel.thread import Sleep, ThreadState

__all__ = ["CoschedWatchdog"]


class CoschedWatchdog:
    """Guards one node's co-scheduler daemon for one job."""

    def __init__(self, injector, job_cosched, node_id: int) -> None:
        self.injector = injector
        self.jc = job_cosched
        self.node_id = node_id
        #: Restarts this watchdog has performed (tests/stats).
        self.restarts = 0
        self.reregistrations = 0
        node = injector.cluster.nodes[node_id]
        self.thread = node.scheduler.spawn(
            self._body(),
            name=f"watchdog.n{node_id}",
            priority=injector.cluster.config.cosched.self_priority,
            affinity_cpu=0,
            category="watchdog",
            allow_steal=True,
            tick_quantized=False,
        )

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: restart/re-registration counters."""
        return {
            "node": self.node_id,
            "restarts": self.restarts,
            "reregistrations": self.reregistrations,
            "thread": desc.thread(self.thread),
        }

    def _body(self):
        cfg = self.injector.config
        sim = self.injector.cluster.sim
        jc = self.jc
        staleness = cfg.watchdog_staleness_periods * jc.config.period_us
        while True:
            yield Sleep(cfg.watchdog_interval_us)
            if jc.job.done:
                return
            nc = jc.node_coscheds[self.node_id]
            if nc.thread.state is ThreadState.FINISHED:
                self.injector.record("cosched_restarted", self.node_id, "dead")
                jc.restart_node(self.node_id)
                self.restarts += 1
                continue
            if sim.now - nc.heartbeat > staleness:
                self.injector.record("cosched_restarted", self.node_id, "hung")
                jc.restart_node(self.node_id)
                self.restarts += 1
                continue
            # Registration audit: catch control-pipe messages the pipe ate.
            for task in jc.node_tasks(self.node_id):
                if task.state is not ThreadState.FINISHED and not nc.knows(task):
                    self.injector.record("task_reregistered", self.node_id, task.name)
                    self.reregistrations += 1
                    jc._pipe_send(nc, nc.pipe_register, task)
