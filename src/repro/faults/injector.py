"""The fault injector: primitives, scheduling, and resilience wiring.

One :class:`FaultInjector` per run (built by :class:`repro.system.System`
when ``ClusterConfig.faults.enabled``).  Construction installs the
cluster-level machinery:

* a :class:`NetFaultPlane` on the fabric when any stochastic message
  fault has non-zero probability (drop / duplicate / delay);
* one simulator event per scheduled :class:`~repro.config.NodeFaultSpec`
  (node crash = all-CPU freeze, slowdown = duty-cycled CPU theft);
* the timesync-loss event, which fails the switch clock register, slams
  each node's time-of-day clock by a random step, and starts per-node
  free drift.

:meth:`FaultInjector.attach_job` then installs the per-job resilience:
the reliable transport on the MPI world, the timesync health probe and
degradation hook on each node co-scheduler, the scheduled co-scheduler
die/hang faults, and one :class:`~repro.faults.watchdog.CoschedWatchdog`
per job node.

Every injected fault and resilience action is recorded via
``TraceRecorder.record_fault`` (and mirrored on ``injector.events``), so
``trace.analysis.attribute_faults`` can blame slow windows on specific
injections.
"""

from __future__ import annotations

from typing import Optional

from repro.config import CoschedFaultSpec, FaultConfig, NodeFaultSpec
from repro.cosched.timesync import TimesyncMonitor
from repro.kernel.thread import ThreadState
from repro.trace.recorder import FaultEvent

__all__ = ["FaultInjector", "NetFaultPlane"]


class NetFaultPlane:
    """Per-message fault decisions for the fabric.

    ``plan(src, dst, nbytes)`` returns the extra latencies at which copies
    of the message should arrive: ``(0.0,)`` is clean delivery, ``()`` a
    drop, two entries a duplication.  Node-internal (shared-memory)
    transfers are never faulted.

    Draws come from **per-link, per-type** named streams
    (``faults.net.<kind>.<src>-><dst>`` for each ordered node pair),
    created lazily on first use of the link.  Two contracts ride on this
    naming:

    * enabling one fault type cannot reshuffle another type's draws, and
      traffic on one link cannot reshuffle another link's draws (the
      stream-ordering contracts the hypothesis property tests in
      ``tests/test_faults.py`` pin; chaos shrinking relies on the former
      to vary one axis at a time);
    * every draw for link ``src->dst`` happens inside an event on node
      ``src``, whose local event order the serial engine fixes — so the
      decision sequence is **shard-stable**: independent of how nodes are
      partitioned across parallel-DES shards (the contract
      :mod:`repro.sim.parallel` rests on).

    *rngf* is a :class:`repro.rng.StreamFactory` (anything with a
    ``stream(name)`` method).
    """

    def __init__(self, sim, config: FaultConfig, rngf, stats) -> None:
        self.sim = sim
        self.config = config
        self.rngf = rngf
        self.stats = stats
        self._link_rngs: dict[tuple, object] = {}
        self.drops = 0
        self.dups = 0
        self.delays = 0

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: fault decision counters."""
        return {"drops": self.drops, "dups": self.dups, "delays": self.delays}

    def _rng(self, kind: str, src_node: int, dst_node: int):
        key = (kind, src_node, dst_node)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = self.rngf.stream(f"faults.net.{kind}.{src_node}->{dst_node}")
            self._link_rngs[key] = rng
        return rng

    def plan(self, src_node: int, dst_node: int, nbytes: int) -> tuple:
        """Decide this message's fate; see the class docstring."""
        if src_node == dst_node:
            return (0.0,)
        cfg = self.config
        lo, hi = cfg.net_window_us
        if not lo <= self.sim.now <= hi:
            return (0.0,)
        if cfg.msg_drop_prob and float(
            self._rng("drop", src_node, dst_node).random()
        ) < cfg.msg_drop_prob:
            self.drops += 1
            self.stats.dropped += 1
            return ()
        first = 0.0
        if cfg.msg_delay_prob and float(
            self._rng("delay", src_node, dst_node).random()
        ) < cfg.msg_delay_prob:
            self.delays += 1
            self.stats.delayed += 1
            first = cfg.msg_delay_us
        if cfg.msg_dup_prob and float(
            self._rng("dup", src_node, dst_node).random()
        ) < cfg.msg_dup_prob:
            self.dups += 1
            self.stats.duplicated += 1
            return (first, first + cfg.msg_delay_us)
        return (first,)


class FaultInjector:
    """Owns all fault state for one run; see the module docstring."""

    def __init__(self, cluster, config: FaultConfig) -> None:
        if not config.enabled:
            raise ValueError("FaultInjector requires FaultConfig.enabled")
        config.validate_targets(len(cluster.nodes))
        self.cluster = cluster
        self.config = config
        #: Every injected fault / resilience action, in injection order
        #: (also mirrored into the trace when recording is enabled).
        self.events: list[FaultEvent] = []
        self.pipe_losses = 0
        self.watchdogs = []
        self.monitor = TimesyncMonitor(cluster.switch)
        # Dedicated streams: consuming fault randomness must never shift
        # the draws of daemons, clocks, or apps (variance isolation).
        # Network faults go further — one stream per fault type *per
        # link* — and pipe loss draws per node, so every stochastic fault
        # decision sequence is keyed to the entity it strikes and stays
        # shard-stable under parallel DES (see NetFaultPlane).
        self._pipe_rngs: dict[int, object] = {}
        self._clock_rng = cluster.rngf.stream("faults.clock")

        self.net_plane: Optional[NetFaultPlane] = None
        if config.any_net_faults:
            self.net_plane = NetFaultPlane(
                cluster.sim, config, cluster.rngf, cluster.fabric.stats
            )
            cluster.fabric.fault_plane = self.net_plane

        sim = cluster.sim
        for spec in config.node_faults:
            # Parallel DES: a fault on a remote node fires on its owning
            # shard; scheduling it here would freeze an inert replica.
            if cluster.owns_node(spec.node):
                sim.schedule_at(spec.at_us, self._fire_node_fault, spec)
        if config.timesync_loss_at_us is not None:
            sim.schedule_at(config.timesync_loss_at_us, self._lose_timesync)

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: injected events, pipe losses, watchdog state."""
        return {
            "events": [
                [e.kind, e.node, e.time, repr(e.detail)] for e in self.events
            ],
            "pipe_losses": self.pipe_losses,
            "net_plane": (
                self.net_plane.snapshot_state(desc)
                if self.net_plane is not None
                else None
            ),
            "watchdogs": [w.snapshot_state(desc) for w in self.watchdogs],
        }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, node: int, detail: object = None) -> None:
        """Log one fault/resilience event (own list + trace recorder)."""
        now = self.cluster.sim.now
        self.events.append(FaultEvent(kind, node, now, detail))
        self.cluster.trace.record_fault(kind, node, now, detail)

    # ------------------------------------------------------------------
    # Cluster-level fault firing
    # ------------------------------------------------------------------
    def _fire_node_fault(self, spec: NodeFaultSpec) -> None:
        node = self.cluster.nodes[spec.node]
        if spec.kind == "crash":
            node.inject_freeze(spec.duration_us)
            self.record("node_crash", spec.node, {"duration_us": spec.duration_us})
        else:
            node.inject_slowdown(spec.duration_us, spec.fraction, spec.period_us)
            self.record(
                "node_slowdown",
                spec.node,
                {"duration_us": spec.duration_us, "fraction": spec.fraction},
            )

    def _lose_timesync(self) -> None:
        """Switch clock register dies; node clocks scatter and drift."""
        cfg = self.config
        sim = self.cluster.sim
        self.cluster.switch.fail()
        self.record("timesync_lost", -1)
        rng = self._clock_rng
        for node in self.cluster.nodes:
            jump = float(rng.uniform(-cfg.clock_jump_us, cfg.clock_jump_us))
            drift = float(rng.uniform(-cfg.clock_drift_rate, cfg.clock_drift_rate))
            node.jump_clock(jump)
            node.set_clock_drift(drift, sim.now)

    # ------------------------------------------------------------------
    # Control-pipe loss
    # ------------------------------------------------------------------
    def pipe_filter(self, node_id: int) -> bool:
        """JobCoscheduler hook: False means this pipe message is lost.

        Draws from a per-node stream (``faults.pipe.n<node>``): pipe
        messages are node-local, so keying the stream to the node makes
        the loss sequence shard-stable under parallel DES.
        """
        if self.config.pipe_loss_prob <= 0.0:
            return True
        rng = self._pipe_rngs.get(node_id)
        if rng is None:
            rng = self.cluster.rngf.stream(f"faults.pipe.n{node_id}")
            self._pipe_rngs[node_id] = rng
        if float(rng.random()) < self.config.pipe_loss_prob:
            self.pipe_losses += 1
            self.record("pipe_msg_lost", node_id)
            return False
        return True

    # ------------------------------------------------------------------
    # Per-job resilience wiring
    # ------------------------------------------------------------------
    def attach_job(self, job, job_cosched=None) -> None:
        """Install resilience for *job* (and its co-scheduler, if any)."""
        from repro.faults.watchdog import CoschedWatchdog

        cfg = self.config
        if cfg.retransmit_enabled:
            job.world.install_reliability(cfg)
        if job_cosched is None:
            return
        if cfg.degrade_on_timesync_loss:
            for nc in job_cosched.node_coscheds.values():
                nc.sync_check = self.monitor.ok
                nc.on_degrade = self._on_degrade
        for spec in cfg.cosched_faults:
            if self.cluster.owns_node(spec.node):
                self.cluster.sim.schedule_at(
                    spec.at_us, self._fire_cosched_fault, job_cosched, spec
                )
        if cfg.watchdog_enabled:
            for node_id in job_cosched.node_coscheds:
                self.watchdogs.append(CoschedWatchdog(self, job_cosched, node_id))

    def _on_degrade(self, node_cosched) -> None:
        self.record("timesync_degraded", node_cosched.node.id)

    def _fire_cosched_fault(self, job_cosched, spec: CoschedFaultSpec) -> None:
        nc = job_cosched.node_coscheds.get(spec.node)
        if nc is None or job_cosched.job.done:
            return
        if spec.kind == "die":
            if nc.thread.state is not ThreadState.FINISHED:
                nc.node.scheduler.kill(nc.thread)
            self.record("cosched_died", spec.node)
        else:
            nc.hang_for(spec.duration_us)
            self.record("cosched_hung", spec.node, {"duration_us": spec.duration_us})
