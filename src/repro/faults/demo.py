"""Test-only planted resilience bugs — the chaos fuzzer's shooting range.

The chaos campaign (:mod:`repro.chaos`) earns its keep by finding real
resilience bugs, but a healthy tree has none to find.  This module lets
tests and CI *plant* one: each named bug, when enabled, re-introduces a
specific, realistic defect into the resilience layer so the fuzzer can
demonstrate end-to-end that it detects the failure, ddmin-shrinks the
triggering schedule, and replays the minimized counterexample from the
corpus.

Bugs are enabled via the ``REPRO_CHAOS_BUG`` environment variable (a
comma-separated list of names), which survives the ``fork``/``spawn``
into :class:`~repro.experiments.runner.TrialRunner` worker processes —
the campaign path the fuzzer actually runs on.  The guard is consulted
only on cold resilience paths (e.g. the retransmit attempt that reaches
the cap), so the flag costs nothing in ordinary runs.

Known bugs
----------
``retransmit_giveup``
    :class:`~repro.mpi.messages.ReliableTransport` gives up after
    ``max_attempts`` instead of taking the guaranteed link-level path:
    the message is silently lost forever, so a collective that loses one
    of its round messages deadlocks — the exact bounded-loss violation
    the forced path exists to prevent, and the one the liveness oracle
    must catch.
"""

from __future__ import annotations

import os

__all__ = ["KNOWN_BUGS", "demo_bug_enabled"]

#: Environment variable holding the comma-separated list of planted bugs.
ENV_VAR = "REPRO_CHAOS_BUG"

#: Every bug name the resilience layer knows how to plant.
KNOWN_BUGS = frozenset({"retransmit_giveup"})


def demo_bug_enabled(name: str) -> bool:
    """True when the named planted bug is switched on via ``REPRO_CHAOS_BUG``.

    Reads the environment on every call (cheap: callers sit on cold
    paths) so tests can flip bugs with ``monkeypatch.setenv`` and worker
    processes inherit the campaign's setting without plumbing.
    """
    if name not in KNOWN_BUGS:
        raise ValueError(f"unknown demo bug {name!r}; known: {sorted(KNOWN_BUGS)}")
    flags = os.environ.get(ENV_VAR, "")
    if not flags:
        return False
    return name in {f.strip() for f in flags.split(",")}
