"""Interconnect model: LogP-style fabric plus the SP switch global clock.

The paper's platform interconnect matters to the reproduction in exactly
two ways, and this package models both and nothing more:

* **Message timing** (:mod:`repro.net.fabric`): point-to-point deliveries
  with wire latency + per-byte cost, cheaper within a node (shared
  memory).  Send/receive *CPU overheads* are charged by the MPI layer as
  Compute requests, because that CPU time is exactly what scheduling
  interference perturbs.
* **Global time** (:mod:`repro.net.switch`): the SP switch exposes a
  globally synchronised clock register readable from user space; the
  co-scheduler uses it to align the low-order bits of each node's
  time-of-day clock (paper §4).
"""

from repro.net.fabric import Fabric, MessageStats
from repro.net.switch import SwitchClock

__all__ = ["Fabric", "MessageStats", "SwitchClock"]
