"""Point-to-point message delivery.

A flat-switch LogP-flavoured model: wire time is ``latency + bytes × G``
(node-internal transfers use a lower shared-memory latency).  The fabric
delivers payloads by scheduling a callback at the arrival time; what the
*receiver* does — wake a blocked thread or satisfy a spin — is the MPI
layer's business.

Sender/receiver CPU overheads (LogP *o*) are deliberately **not** included
here: the MPI layer issues them as Compute requests so that they contend
for CPUs like any other work.  That is the paper's whole subject — the
"overhead" of communication is mostly CPU time exposed to scheduling
interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import NetworkConfig
from repro.sim.core import EventPriority, Simulator

__all__ = ["Fabric", "MessageStats"]


@dataclass
class MessageStats:
    messages: int = 0
    bytes: int = 0
    intra_node: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0


class Fabric:
    """Schedules message arrivals on the shared simulator.

    ``fault_plane`` is an optional hook installed by the fault injector
    (:mod:`repro.faults`): when present, each faultable transmit asks it for
    the list of extra latencies at which copies should arrive — ``[0.0]``
    means clean delivery, ``[]`` a drop, two entries a duplication.  When it
    is ``None`` (every non-fault run) the path is a single ``is None`` test.
    """

    def __init__(self, sim: Simulator, config: NetworkConfig) -> None:
        self.sim = sim
        self.config = config
        self.stats = MessageStats()
        self.fault_plane = None

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: cumulative message counters."""
        return {
            "messages": self.stats.messages,
            "bytes": self.stats.bytes,
            "intra_node": self.stats.intra_node,
            "dropped": self.stats.dropped,
            "duplicated": self.stats.duplicated,
            "delayed": self.stats.delayed,
            "faulted": self.fault_plane is not None,
        }

    def transmit(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        payload: Any,
        on_arrive: Callable[[Any], None],
        faultable: bool = True,
    ) -> float:
        """Launch a message; returns its nominal arrival time.

        ``on_arrive(payload)`` fires at the arrival instant with
        message-delivery event priority (before same-instant kernel work,
        after interrupts), modelling the adapter raising completion ahead
        of dispatcher decisions.

        ``faultable=False`` bypasses any installed fault plane — the
        link-level-guaranteed path the retransmit layer falls back to on its
        final attempt, which is what bounds loss and rules out deadlock.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        same = src_node == dst_node
        wire = self.wire_time(nbytes, same_node=same)
        self.stats.messages += 1
        self.stats.bytes += nbytes
        if same:
            self.stats.intra_node += 1
        arrival = self.sim.now + wire
        if self.fault_plane is not None and faultable:
            for extra in self.fault_plane.plan(src_node, dst_node, nbytes):
                self.sim.schedule_at(
                    arrival + extra, on_arrive, payload, priority=EventPriority.MESSAGE
                )
            return arrival
        self.sim.schedule_at(arrival, on_arrive, payload, priority=EventPriority.MESSAGE)
        return arrival

    def wire_time(self, nbytes: int, same_node: bool) -> float:
        """Wire time at the *current* simulated instant.

        Same LogP expression as ``NetworkConfig.p2p_time``, except the
        remote latency honours ``NetworkConfig.latency_changes`` — the
        time-dependent schedule the parallel-DES adaptive lookahead also
        reads, keeping window safety and actual arrivals consistent.
        """
        lat = (
            self.config.shm_latency_us
            if same_node
            else self.config.latency_at(self.sim.now)
        )
        return lat + nbytes * self.config.per_byte_us

    def remote_arrivals(
        self, src_node: int, dst_node: int, nbytes: int, faultable: bool = True
    ) -> tuple:
        """Arrival times for a message whose destination lives on another shard.

        Charges this shard's send-side statistics and consults the fault
        plane exactly as :meth:`transmit` would, but schedules nothing:
        the caller wraps each returned arrival in a router envelope and
        the owning shard schedules delivery there.  ``()`` means the
        message was dropped.  Since ``dst_node`` is remote, every arrival
        is ``>= now + latency_at(now)`` — the conservative lookahead
        :mod:`repro.sim.parallel` relies on.
        """
        if src_node == dst_node:
            raise ValueError("cross-shard transmit cannot be node-internal")
        wire = self.wire_time(nbytes, same_node=False)
        self.stats.messages += 1
        self.stats.bytes += nbytes
        base = self.sim.now + wire
        if self.fault_plane is not None and faultable:
            return tuple(
                base + extra
                for extra in self.fault_plane.plan(src_node, dst_node, nbytes)
            )
        return (base,)
