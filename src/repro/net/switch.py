"""The switch global clock register.

On the IBM SP, "the switch provides a globally synchronized time that is
available by reading a register on the switch adapter".  In the simulator,
global simulation time *is* that reference; the register read returns it
with a small, per-read jitter modelling bus/adapter sampling error.  Node
time-of-day clocks, by contrast, carry per-node offsets — the gap the
co-scheduler's startup synchronisation closes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SwitchClock"]


class SwitchClock:
    """Globally synchronised clock source with bounded read error.

    Parameters
    ----------
    read_error_us:
        Half-width of the uniform error on each register read.  A couple of
        microseconds models adapter sampling; it is what limits how tightly
        nodes can align after synchronisation.
    """

    def __init__(self, rng: np.random.Generator, read_error_us: float = 2.0) -> None:
        if read_error_us < 0:
            raise ValueError("read_error_us must be >= 0")
        self._rng = rng
        self.read_error_us = read_error_us
        self.reads = 0
        #: Set by the fault injector when the adapter clock register dies;
        #: consumers (the timesync monitor) must stop trusting reads.
        self.failed = False

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: read count and health (RNG state is captured
        with the rest of the stream factory, not here)."""
        return {
            "reads": self.reads,
            "failed": self.failed,
            "read_error_us": self.read_error_us,
        }

    def fail(self) -> None:
        """Fail the clock register (fault injection: timesync loss)."""
        self.failed = True

    def restore(self) -> None:
        """Bring the clock register back."""
        self.failed = False

    def read(self, global_now: float) -> float:
        """One register read: global time plus bounded sampling error."""
        self.reads += 1
        if self.read_error_us == 0.0:
            return global_now
        return global_now + float(self._rng.uniform(-self.read_error_us, self.read_error_us))
