"""Named, seeded random-number streams.

Every stochastic element of the simulation — daemon service times, cron
phases, page-fault draws, clock skew — pulls from its own named stream
derived from a single experiment seed.  This gives two properties the
experiment harness depends on:

* **Exact reproducibility.**  The same ``(seed, name)`` pair always yields
  the same sequence, so every figure in EXPERIMENTS.md can be regenerated
  bit-for-bit.
* **Variance isolation.**  Adding a new consumer of randomness (say, a new
  daemon) does not perturb the draws seen by existing consumers, because
  streams are independent children keyed by name rather than a shared
  global sequence.

Streams are :class:`numpy.random.Generator` instances created via
:func:`numpy.random.SeedSequence.spawn`-style keyed derivation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["StreamFactory", "Distribution", "Constant", "Uniform", "Exponential", "LogNormal"]


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key.

    Uses CRC32 rather than :func:`hash` because the latter is salted per
    interpreter run (``PYTHONHASHSEED``) and would destroy reproducibility.
    """
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class StreamFactory:
    """Factory for independent named RNG streams derived from one seed.

    >>> f = StreamFactory(seed=42)
    >>> a = f.stream("daemon.syncd")
    >>> b = f.stream("daemon.cron")
    >>> a is f.stream("daemon.syncd")   # streams are cached by name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_key(name),))
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
        return gen

    def snapshot_state(self) -> dict:
        """Bit-exact state of every stream created so far.

        ``Generator.bit_generator.state`` is a plain dict of Python ints
        (PCG64 position + increment), so the snapshot is JSON-able and two
        factories that made the same draws compare equal.  Streams are
        keyed by name; restore-by-replay recreates them in the same order,
        so equality of this dict is equality of all future draws.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: self._streams[name].bit_generator.state
                for name in sorted(self._streams)
            },
        }

    def fork(self, salt: int) -> "StreamFactory":
        """Return a new factory whose streams are independent of this one.

        Used for per-repetition seeding inside parameter sweeps: repetition
        *k* uses ``factory.fork(k)`` so that repetitions differ while the
        sweep as a whole remains a pure function of the base seed.
        """
        return StreamFactory(seed=(self.seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)


@dataclass(frozen=True)
class Distribution:
    """Base class for serialisable service-time distributions.

    Subclasses implement :meth:`sample`, drawing from a provided generator
    so the distribution object itself stays immutable and shareable.
    """

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (µs) using *rng*."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean, used by the vectorised noise model and by tests."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution: always *value* (µs)."""

    value: float

    def sample(self, rng: np.random.Generator) -> float:
        """Return the constant (the generator is unused)."""
        return self.value

    def mean(self) -> float:
        """The constant itself."""
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform distribution on ``[low, high]`` (µs)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"Uniform: high ({self.high}) < low ({self.low})")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw uniformly from [low, high]."""
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        """Midpoint of the interval."""
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given mean (µs), optionally shifted.

    ``shift`` models a fixed minimum service time below which the daemon
    never completes (entry/exit overhead).
    """

    mean_value: float
    shift: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("Exponential mean must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw shift + Exp(mean_value)."""
        return self.shift + float(rng.exponential(self.mean_value))

    def mean(self) -> float:
        """shift + mean_value."""
        return self.shift + self.mean_value


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal distribution parameterised by its actual mean and sigma.

    Daemon service times observed in AIX traces are right-skewed with a hard
    floor; log-normal captures the occasional multi-millisecond excursions
    that drive the paper's outliers.
    """

    mean_value: float
    sigma: float = 0.5

    _mu: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("LogNormal mean must be positive")
        # Solve for mu such that E[X] = exp(mu + sigma^2/2) = mean_value.
        object.__setattr__(self, "_mu", float(np.log(self.mean_value) - 0.5 * self.sigma**2))

    def sample(self, rng: np.random.Generator) -> float:
        """Draw LogNormal(mu, sigma) with E[X] = mean_value."""
        return float(rng.lognormal(self._mu, self.sigma))

    def mean(self) -> float:
        """The targeted E[X] (mean_value)."""
        return self.mean_value
