"""Run-interval recorder.

The scheduler calls :meth:`TraceRecorder.record_interval` whenever a thread
leaves a CPU, producing a stream of ``(node, cpu, thread identity, t0, t1)``
records.  Applications add :class:`Mark` records (e.g. Allreduce begin/end
per rank).  Recording is opt-in per category so large sweeps don't pay the
memory cost; the Figure 4 experiment records everything on one node, which
is also how the paper worked around classified-system data limits (trace a
subset, extract summaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["RunInterval", "Mark", "FaultEvent", "TraceRecorder"]


@dataclass(frozen=True)
class RunInterval:
    """One contiguous occupancy of a CPU by a thread."""

    node: int
    cpu: int
    tid: int
    name: str
    category: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class Mark:
    """An application trace record (the paper's `trace hook` analogue)."""

    name: str
    node: int
    rank: int
    time: float
    payload: object = None


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or resilience action (``node=-1``: cluster-wide).

    ``kind`` values shipped by :mod:`repro.faults`: ``node_crash``,
    ``node_slowdown``, ``cosched_died``, ``cosched_hung``,
    ``cosched_restarted``, ``timesync_lost``, ``timesync_degraded``,
    ``pipe_msg_lost``, ``task_reregistered``.
    """

    kind: str
    node: int
    time: float
    detail: object = None


class TraceRecorder:
    """Collects run intervals and marks.

    Parameters
    ----------
    enabled:
        Master switch; when False every record call is a cheap no-op.
    nodes:
        If given, only record intervals on these node ids (the Fig-4 style
        "trace one node of a large run").
    categories:
        If given, only record intervals for threads whose ``category`` is
        in the set.  Marks are always recorded while enabled.
    min_duration_us:
        Drop intervals shorter than this (defaults to keeping everything).
    """

    def __init__(
        self,
        enabled: bool = True,
        nodes: Optional[Iterable[int]] = None,
        categories: Optional[Iterable[str]] = None,
        min_duration_us: float = 0.0,
    ) -> None:
        self.enabled = enabled
        self.node_filter = frozenset(nodes) if nodes is not None else None
        self.category_filter = frozenset(categories) if categories is not None else None
        self.min_duration_us = min_duration_us
        self.intervals: list[RunInterval] = []
        self.marks: list[Mark] = []
        self.faults: list[FaultEvent] = []

    def record_interval(self, node: int, cpu: int, thread, t0: float, t1: float) -> None:
        """Record one CPU occupancy (called by the dispatcher; stays cheap)."""
        if not self.enabled:
            return
        if t1 - t0 < self.min_duration_us:
            return
        if self.node_filter is not None and node not in self.node_filter:
            return
        if self.category_filter is not None and thread.category not in self.category_filter:
            return
        self.intervals.append(
            RunInterval(node, cpu, thread.tid, thread.name, thread.category, t0, t1)
        )

    def mark(self, name: str, node: int, rank: int, time: float, payload: object = None) -> None:
        """Write an application trace record."""
        if not self.enabled:
            return
        self.marks.append(Mark(name, node, rank, time, payload))

    def record_fault(self, kind: str, node: int, time: float, detail: object = None) -> None:
        """Record one injected fault / resilience action (node/category
        filters don't apply — fault events are rare and always wanted)."""
        if not self.enabled:
            return
        self.faults.append(FaultEvent(kind, node, time, detail))

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: record counts plus content digests.

        Digests use thread *names* rather than tids (tids come from a
        module-global counter and differ between rebuilds of the same
        run), so a restored-and-replayed run digests identically to the
        uninterrupted one — the bit-identical-trace acceptance check.
        """
        import hashlib
        import json

        def digest(rows) -> str:
            blob = json.dumps(rows, default=repr)
            return hashlib.sha256(blob.encode("utf-8")).hexdigest()

        return {
            "enabled": self.enabled,
            "n_intervals": len(self.intervals),
            "n_marks": len(self.marks),
            "n_faults": len(self.faults),
            "intervals": digest(
                [
                    [iv.node, iv.cpu, iv.name, iv.category, iv.t0, iv.t1]
                    for iv in self.intervals
                ]
            ),
            "marks": digest(
                [[m.name, m.node, m.rank, m.time, repr(m.payload)] for m in self.marks]
            ),
            "faults": digest(
                [[f.kind, f.node, f.time, repr(f.detail)] for f in self.faults]
            ),
        }

    def clear(self) -> None:
        """Drop all recorded intervals, marks, and fault events."""
        self.intervals.clear()
        self.marks.clear()
        self.faults.clear()

    def intervals_on(self, node: int) -> list[RunInterval]:
        """All intervals recorded on *node*."""
        return [iv for iv in self.intervals if iv.node == node]

    def marks_named(self, name: str) -> list[Mark]:
        """All marks with the given name."""
        return [m for m in self.marks if m.name == name]

    def __len__(self) -> int:
        return len(self.intervals)
