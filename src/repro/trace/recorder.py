"""Run-interval recorder.

The scheduler calls :meth:`TraceRecorder.record_interval` whenever a thread
leaves a CPU, producing a stream of ``(node, cpu, thread identity, t0, t1)``
records.  Applications add :class:`Mark` records (e.g. Allreduce begin/end
per rank).  Recording is opt-in per category so large sweeps don't pay the
memory cost; the Figure 4 experiment records everything on one node, which
is also how the paper worked around classified-system data limits (trace a
subset, extract summaries).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["RunInterval", "Mark", "FaultEvent", "NodeIntervalIndex", "TraceRecorder"]


@dataclass(frozen=True)
class RunInterval:
    """One contiguous occupancy of a CPU by a thread."""

    node: int
    cpu: int
    tid: int
    name: str
    category: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class Mark:
    """An application trace record (the paper's `trace hook` analogue)."""

    name: str
    node: int
    rank: int
    time: float
    payload: object = None


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or resilience action (``node=-1``: cluster-wide).

    ``kind`` values shipped by :mod:`repro.faults`: ``node_crash``,
    ``node_slowdown``, ``cosched_died``, ``cosched_hung``,
    ``cosched_restarted``, ``timesync_lost``, ``timesync_degraded``,
    ``pipe_msg_lost``, ``task_reregistered``.
    """

    kind: str
    node: int
    time: float
    detail: object = None


class NodeIntervalIndex:
    """Stabbing index over one node's intervals: sorted by start time with
    a running max-end array.

    ``overlapping(t0, t1)`` returns every interval with ``iv.t0 < t1`` and
    ``iv.t1 > t0`` in **insertion order**, in O(log I + k) for k results:
    a bisect bounds the candidates by start time, and the backwards scan
    stops as soon as the running maximum of end times falls to or below
    ``t0`` (everything earlier ends even sooner).  Insertion order matters:
    attribution sums floats, and returning intervals in the order the
    naive full scan visits them keeps the sums bit-identical.

    Candidates are a *superset* of positive-overlap intervals (a
    zero-length interval inside the window matches the inequalities but
    has zero overlap); callers apply the same ``overlap > 0`` filter the
    naive scan uses.
    """

    __slots__ = ("_starts", "_max_end", "_entries")

    def __init__(self, rows: list[tuple[float, int, RunInterval]]) -> None:
        # rows: (t0, insertion position, interval), sorted by (t0, pos).
        self._entries = rows
        self._starts = [r[0] for r in rows]
        max_end = []
        m = float("-inf")
        for r in rows:
            t1 = r[2].t1
            if t1 > m:
                m = t1
            max_end.append(m)
        self._max_end = max_end

    def __len__(self) -> int:
        return len(self._entries)

    def overlapping(self, t0: float, t1: float) -> list[RunInterval]:
        """Intervals with ``iv.t0 < t1 and iv.t1 > t0``, insertion order."""
        entries = self._entries
        max_end = self._max_end
        out = []
        i = bisect_left(self._starts, t1) - 1
        while i >= 0 and max_end[i] > t0:
            e = entries[i]
            if e[2].t1 > t0:
                out.append((e[1], e[2]))
            i -= 1
        out.sort()
        return [iv for _, iv in out]


class TraceRecorder:
    """Collects run intervals and marks.

    Parameters
    ----------
    enabled:
        Master switch; when False every record call is a cheap no-op.
    nodes:
        If given, only record intervals on these node ids (the Fig-4 style
        "trace one node of a large run").
    categories:
        If given, only record intervals for threads whose ``category`` is
        in the set.  Marks are always recorded while enabled.
    min_duration_us:
        Drop intervals shorter than this (defaults to keeping everything).
    """

    def __init__(
        self,
        enabled: bool = True,
        nodes: Optional[Iterable[int]] = None,
        categories: Optional[Iterable[str]] = None,
        min_duration_us: float = 0.0,
    ) -> None:
        self.enabled = enabled
        self.node_filter = frozenset(nodes) if nodes is not None else None
        self.category_filter = frozenset(categories) if categories is not None else None
        self.min_duration_us = min_duration_us
        self.intervals: list[RunInterval] = []
        self.marks: list[Mark] = []
        self.faults: list[FaultEvent] = []
        # Lazy per-node interval index (and its fault-time sibling).
        # Validity is keyed on record counts: appends (the only mutation
        # the recording path performs) grow the list, so a count mismatch
        # means "stale, rebuild on next query" without the recording hot
        # path ever touching index state.
        self._interval_index: dict[int, NodeIntervalIndex] = {}
        self._interval_index_len = -1
        self._fault_rows: list[tuple[float, int, FaultEvent]] = []
        self._fault_times: list[float] = []
        self._fault_index_len = -1

    def record_interval(self, node: int, cpu: int, thread, t0: float, t1: float) -> None:
        """Record one CPU occupancy (called by the dispatcher; stays cheap)."""
        if not self.enabled:
            return
        if t1 - t0 < self.min_duration_us:
            return
        if self.node_filter is not None and node not in self.node_filter:
            return
        if self.category_filter is not None and thread.category not in self.category_filter:
            return
        self.intervals.append(
            RunInterval(node, cpu, thread.tid, thread.name, thread.category, t0, t1)
        )

    def mark(self, name: str, node: int, rank: int, time: float, payload: object = None) -> None:
        """Write an application trace record."""
        if not self.enabled:
            return
        self.marks.append(Mark(name, node, rank, time, payload))

    def record_fault(self, kind: str, node: int, time: float, detail: object = None) -> None:
        """Record one injected fault / resilience action (node/category
        filters don't apply — fault events are rare and always wanted)."""
        if not self.enabled:
            return
        self.faults.append(FaultEvent(kind, node, time, detail))

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: record counts plus content digests.

        Digests use thread *names* rather than tids (tids come from a
        module-global counter and differ between rebuilds of the same
        run), so a restored-and-replayed run digests identically to the
        uninterrupted one — the bit-identical-trace acceptance check.
        """
        import hashlib
        import json

        def digest(rows) -> str:
            blob = json.dumps(rows, default=repr)
            return hashlib.sha256(blob.encode("utf-8")).hexdigest()

        return {
            "enabled": self.enabled,
            "n_intervals": len(self.intervals),
            "n_marks": len(self.marks),
            "n_faults": len(self.faults),
            "intervals": digest(
                [
                    [iv.node, iv.cpu, iv.name, iv.category, iv.t0, iv.t1]
                    for iv in self.intervals
                ]
            ),
            "marks": digest(
                [[m.name, m.node, m.rank, m.time, repr(m.payload)] for m in self.marks]
            ),
            "faults": digest(
                [[f.kind, f.node, f.time, repr(f.detail)] for f in self.faults]
            ),
        }

    def clear(self) -> None:
        """Drop all recorded intervals, marks, and fault events."""
        self.intervals.clear()
        self.marks.clear()
        self.faults.clear()
        self._interval_index = {}
        self._interval_index_len = -1
        self._fault_rows = []
        self._fault_times = []
        self._fault_index_len = -1

    # ------------------------------------------------------------------
    # Query indexes (built lazily, invalidated by appends)
    # ------------------------------------------------------------------
    def interval_index(self, node: int) -> Optional[NodeIntervalIndex]:
        """The stabbing index for *node*'s intervals (None: none recorded).

        Built lazily over all nodes in one pass and reused until the next
        append invalidates it; analysis sweeps that attribute hundreds of
        windows against the same trace pay the O(I log I) build once.
        """
        if self._interval_index_len != len(self.intervals):
            per_node: dict[int, list] = {}
            for pos, iv in enumerate(self.intervals):
                per_node.setdefault(iv.node, []).append((iv.t0, pos, iv))
            # Rows are generated in pos order, so each node list is already
            # sorted by pos; sort by (t0, pos) never compares intervals.
            self._interval_index = {
                node: NodeIntervalIndex(sorted(rows)) for node, rows in per_node.items()
            }
            self._interval_index_len = len(self.intervals)
        return self._interval_index.get(node)

    def faults_in(self, t0: float, t1: float) -> list[FaultEvent]:
        """Fault events with ``t0 <= time <= t1``, in insertion order.

        Backed by a lazily-built sorted time index, so window sweeps cost
        O(log F + k) each instead of re-scanning every recorded fault.
        """
        if self._fault_index_len != len(self.faults):
            self._fault_rows = sorted(
                (ev.time, pos, ev) for pos, ev in enumerate(self.faults)
            )
            self._fault_times = [r[0] for r in self._fault_rows]
            self._fault_index_len = len(self.faults)
        lo = bisect_left(self._fault_times, t0)
        hi = bisect_right(self._fault_times, t1)
        rows = sorted(self._fault_rows[lo:hi], key=lambda r: r[1])
        return [r[2] for r in rows]

    def intervals_on(self, node: int) -> list[RunInterval]:
        """All intervals recorded on *node*."""
        return [iv for iv in self.intervals if iv.node == node]

    def marks_named(self, name: str) -> list[Mark]:
        """All marks with the given name."""
        return [m for m in self.marks if m.name == name]

    def __len__(self) -> int:
        return len(self.intervals)
