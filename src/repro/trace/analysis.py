"""Attribution analysis over recorded traces.

Reproduces the paper's §5.3 methodology: take the trace of a slow window
(e.g. one Allreduce), compute how much CPU time each non-application thread
consumed inside it, and name the culprits.  The paper's worst outlier was
an administrative cron job consuming >600 ms across multiple nodes; lesser
outliers were syncd/mmfsd/hatsd-class daemons, device interrupt handlers,
and the MPI timer ("progress engine") threads.

Performance: every window query runs against the recorder's per-node
interval index (:class:`repro.trace.recorder.NodeIntervalIndex`), so a
sweep attributing W windows over I recorded intervals costs
O(I log I + W·(log I + k)) instead of the naive O(W·I) full re-scan that
used to dominate the Figure-4 analysis.  The naive implementations are
kept (``*_naive``) as the executable specification: results must match
them **bit-identically** — candidate intervals are accumulated in
insertion order precisely so the float sums agree to the last ulp.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.trace.recorder import FaultEvent, RunInterval, TraceRecorder

__all__ = [
    "WindowAttribution",
    "attribute_window",
    "attribute_window_naive",
    "attribute_windows",
    "window_breakdown",
    "explain_outliers",
    "overhead_report",
    "OverheadReport",
    "attribute_faults",
    "attribute_faults_naive",
    "fault_summary",
]


@dataclass(frozen=True)
class WindowAttribution:
    """Attribution of one time window on one node."""

    node: int
    t0: float
    t1: float
    #: CPU-µs by thread name for non-app threads active in the window.
    by_name: dict[str, float]
    #: CPU-µs by thread category.
    by_category: dict[str, float]

    @property
    def interference_us(self) -> float:
        """Total non-application CPU inside the window."""
        return sum(self.by_name.values())

    def top(self, n: int = 3) -> list[tuple[str, float]]:
        """The *n* biggest interferers, (name, CPU-µs), descending."""
        return sorted(self.by_name.items(), key=lambda kv: -kv[1])[:n]


def _overlap(iv: RunInterval, t0: float, t1: float) -> float:
    return max(0.0, min(iv.t1, t1) - max(iv.t0, t0))


def _window_candidates(trace: TraceRecorder, node: int, t0: float, t1: float):
    """Node-*node* intervals possibly overlapping ``[t0, t1]``, insertion order.

    Uses the recorder's stabbing index when available; objects that merely
    quack like a recorder (bare ``intervals`` list) fall back to the full
    scan with identical semantics.
    """
    index_of = getattr(trace, "interval_index", None)
    if index_of is not None:
        idx = index_of(node)
        return idx.overlapping(t0, t1) if idx is not None else ()
    return [iv for iv in trace.intervals if iv.node == node]


def attribute_window(
    trace: TraceRecorder,
    node: int,
    t0: float,
    t1: float,
    app_categories: tuple[str, ...] = ("app",),
) -> WindowAttribution:
    """Attribute non-application CPU time inside ``[t0, t1]`` on *node*.

    Only threads whose ``category`` is not in *app_categories* count as
    interference; the MPI timer threads use category ``mpi_timer`` and thus
    show up as interference, matching the paper's classification of the
    "auxiliary threads of the user processes".
    """
    by_name: dict[str, float] = defaultdict(float)
    by_category: dict[str, float] = defaultdict(float)
    for iv in _window_candidates(trace, node, t0, t1):
        ov = min(iv.t1, t1) - max(iv.t0, t0)
        if ov <= 0.0:
            continue
        by_category[iv.category] += ov
        if iv.category not in app_categories:
            by_name[iv.name] += ov
    return WindowAttribution(node, t0, t1, dict(by_name), dict(by_category))


def attribute_window_naive(
    trace: TraceRecorder,
    node: int,
    t0: float,
    t1: float,
    app_categories: tuple[str, ...] = ("app",),
) -> WindowAttribution:
    """Reference full-scan implementation of :func:`attribute_window`.

    O(I) per window; kept as the executable specification the indexed
    path is equivalence-tested against (bit-identical sums included).
    """
    by_name: dict[str, float] = defaultdict(float)
    by_category: dict[str, float] = defaultdict(float)
    for iv in trace.intervals:
        if iv.node != node:
            continue
        ov = _overlap(iv, t0, t1)
        if ov <= 0.0:
            continue
        by_category[iv.category] += ov
        if iv.category not in app_categories:
            by_name[iv.name] += ov
    return WindowAttribution(node, t0, t1, dict(by_name), dict(by_category))


def attribute_windows(
    trace: TraceRecorder,
    node: int,
    windows: list[tuple[float, float]],
    app_categories: tuple[str, ...] = ("app",),
) -> list[WindowAttribution]:
    """Attribute a batch of windows on *node* in one sweep.

    The per-node index is built once (lazily, on the first query) and
    every window then resolves in O(log I + k) — this is the API the
    Figure-4 outlier scan and the ALE3D analysis should prefer over
    calling :func:`attribute_window` in a hand-rolled loop.
    """
    return [
        attribute_window(trace, node, t0, t1, app_categories) for t0, t1 in windows
    ]


def window_breakdown(
    trace: TraceRecorder, node: int, t0: float, t1: float, n_cpus: int
) -> dict[str, float]:
    """Fractional CPU occupancy by category for a window (idle included).

    Returns fractions of the window's total CPU capacity
    (``(t1 - t0) × n_cpus``) consumed by each thread category, plus an
    ``"idle"`` entry for the remainder.
    """
    if t1 <= t0:
        raise ValueError("empty window")
    att = attribute_window(trace, node, t0, t1)
    capacity = (t1 - t0) * n_cpus
    out = {cat: cpu / capacity for cat, cpu in att.by_category.items()}
    out["idle"] = max(0.0, 1.0 - sum(out.values()))
    return out


@dataclass(frozen=True)
class OverheadReport:
    """System-overhead accounting for one node over an observation window.

    The empirical counterpart of the paper's claim that "typical operating
    system and daemon activity consumes 0.2% to 1.1% of each CPU" — here
    measured from the recorded dispatch intervals rather than assumed.
    """

    node: int
    t0: float
    t1: float
    n_cpus: int
    #: CPU-µs by daemon/interrupt thread name.
    by_daemon: dict[str, float]

    @property
    def total_overhead_us(self) -> float:
        return sum(self.by_daemon.values())

    @property
    def per_cpu_fraction(self) -> float:
        """Overhead as a fraction of each CPU (the paper's 0.2–1.1% metric)."""
        capacity = (self.t1 - self.t0) * self.n_cpus
        return self.total_overhead_us / capacity if capacity > 0 else 0.0

    def daemon_fraction(self, name: str) -> float:
        """One daemon's consumption as a fraction of a single CPU."""
        window = self.t1 - self.t0
        return self.by_daemon.get(name, 0.0) / window if window > 0 else 0.0

    def top(self, n: int = 5) -> list[tuple[str, float]]:
        """The *n* biggest overhead sources, (name, CPU-µs), descending."""
        return sorted(self.by_daemon.items(), key=lambda kv: -kv[1])[:n]


def overhead_report(
    trace: TraceRecorder,
    node: int,
    t0: float,
    t1: float,
    n_cpus: int,
    categories: tuple[str, ...] = ("daemon", "interrupt", "io"),
) -> OverheadReport:
    """Measure per-daemon CPU consumption on *node* over ``[t0, t1]``."""
    by_daemon: dict[str, float] = defaultdict(float)
    for iv in _window_candidates(trace, node, t0, t1):
        if iv.category not in categories:
            continue
        ov = min(iv.t1, t1) - max(iv.t0, t0)
        if ov > 0.0:
            # Per-CPU instances (caddpin.c3) fold into their base name.
            name = iv.name.split(".c")[0] if iv.category == "interrupt" else iv.name
            by_daemon[name] += ov
    return OverheadReport(node, t0, t1, n_cpus, dict(by_daemon))


def explain_outliers(
    trace: TraceRecorder,
    windows: list[tuple[float, float]],
    node: int,
    threshold_us: float,
) -> list[tuple[int, float, list[tuple[str, float]]]]:
    """For each window longer than *threshold_us*, name the top interferers.

    Returns ``(window index, duration, [(name, cpu_us), ...])`` for the
    outliers, sorted by duration descending — the shape of the paper's
    Figure 4 discussion.
    """
    out = []
    for i, (t0, t1) in enumerate(windows):
        dur = t1 - t0
        if dur <= threshold_us:
            continue
        att = attribute_window(trace, node, t0, t1)
        out.append((i, dur, att.top()))
    out.sort(key=lambda row: -row[1])
    return out


def attribute_faults(
    trace: TraceRecorder,
    windows: list[tuple[float, float]],
    node: int | None = None,
    slack_us: float = 0.0,
) -> list[tuple[int, float, list[FaultEvent]]]:
    """Attribute recorded fault events to the windows they land in.

    For each window overlapping at least one fault event (optionally
    filtered to *node*; cluster-wide events with ``node == -1`` always
    match), returns ``(window index, duration, [events...])``.  A fault's
    effects outlive its instant — ``slack_us`` extends each window
    backwards so an injection shortly *before* a window still gets the
    blame (e.g. a node freeze starting between two Allreduces).
    """
    faults_in = getattr(trace, "faults_in", None)
    if faults_in is None:
        return attribute_faults_naive(trace, windows, node, slack_us)
    out = []
    for i, (t0, t1) in enumerate(windows):
        hits = [
            ev
            for ev in faults_in(t0 - slack_us, t1)
            if node is None or ev.node == -1 or ev.node == node
        ]
        if hits:
            out.append((i, t1 - t0, hits))
    return out


def attribute_faults_naive(
    trace: TraceRecorder,
    windows: list[tuple[float, float]],
    node: int | None = None,
    slack_us: float = 0.0,
) -> list[tuple[int, float, list[FaultEvent]]]:
    """Reference full-scan implementation of :func:`attribute_faults`."""
    out = []
    for i, (t0, t1) in enumerate(windows):
        hits = [
            ev
            for ev in trace.faults
            if t0 - slack_us <= ev.time <= t1
            and (node is None or ev.node == -1 or ev.node == node)
        ]
        if hits:
            out.append((i, t1 - t0, hits))
    return out


def fault_summary(trace: TraceRecorder) -> dict[str, int]:
    """Count recorded fault events by kind (quick sanity/reporting aid)."""
    counts: dict[str, int] = defaultdict(int)
    for ev in trace.faults:
        counts[ev.kind] += 1
    return dict(counts)
