"""AIX-trace-style event recording and attribution analysis.

The paper's methodology leaned on the AIX ``trace`` facility: record which
threads ran on which CPUs, bracket regions of interest with application
marks (their ``aggregate_trace`` wrote a trace record around every 64th
Allreduce), then attribute slow intervals to the daemons/interrupts that
consumed CPU inside them.  This package is the simulator-side equivalent:

* :class:`~repro.trace.recorder.TraceRecorder` — run-interval capture
  (fed by the scheduler) plus user marks;
* :mod:`repro.trace.analysis` — per-window CPU attribution and outlier
  explanation, reproducing the paper's Figure 4 narrative.
"""

from repro.trace.recorder import Mark, NodeIntervalIndex, RunInterval, TraceRecorder
from repro.trace.analysis import (
    attribute_window,
    attribute_windows,
    explain_outliers,
    window_breakdown,
)

__all__ = [
    "TraceRecorder",
    "RunInterval",
    "NodeIntervalIndex",
    "Mark",
    "attribute_window",
    "attribute_windows",
    "window_breakdown",
    "explain_outliers",
]
