"""Workloads: the paper's benchmark and application analogues.

* :mod:`repro.apps.bsp` — generic Bulk-Synchronous SPMD generator
  (paper Fig 2): compute phases alternating with fine-grain collective
  communication, with configurable imbalance.
* :mod:`repro.apps.aggregate_trace` — the synthetic benchmark
  ``aggregate_trace.c``: loops of timed Allreduce calls with trace marks
  every 64th call (paper §5.1).
* :mod:`repro.apps.ale3d` — a proxy for the ALE3D multi-physics code's
  explicit-hydro test problem: ~50 timesteps of nearest-neighbour
  exchange + global reductions, bracketed by I/O phases that depend on
  the node I/O service (paper §5.1/§5.3).
"""

from repro.apps.bsp import BspConfig, BspResult, run_bsp
from repro.apps.aggregate_trace import (
    AggregateTraceConfig,
    AggregateTraceResult,
    aggregate_trace_body,
    run_aggregate_trace,
)
from repro.apps.ale3d import Ale3dConfig, Ale3dResult, run_ale3d

__all__ = [
    "BspConfig",
    "BspResult",
    "run_bsp",
    "AggregateTraceConfig",
    "AggregateTraceResult",
    "aggregate_trace_body",
    "run_aggregate_trace",
    "Ale3dConfig",
    "Ale3dResult",
    "run_ale3d",
]
