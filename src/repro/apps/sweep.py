"""Wavefront sweep proxy (Sweep3D / SAGE class).

The OS-noise studies the paper cites ([Hoisie03] on ASCI Q) worked with
wavefront transport codes: a 2-D processor grid pipelines "planes" of work
diagonally — each rank receives boundary data from its upstream
neighbours, computes a block, and forwards downstream (the KBA
decomposition).  The communication is *pipelined point-to-point* rather
than synchronising collectives, which gives a different noise signature:

* a delayed rank stalls only its downstream cone, and the pipeline's
  other diagonals keep computing — noise is partially *absorbed*;
* but a sweep's critical path crosses the whole grid (px + py − 1 plane
  steps), so sufficiently long interruptions still serialise.

The workload-sensitivity experiment (E6) contrasts this shape with the
Allreduce-dominated ``aggregate_trace``: the paper's co-scheduling matters
most for the collective-heavy end of the spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.world import MpiApi
from repro.system import System
from repro.units import ms, s, us

__all__ = ["SweepConfig", "SweepResult", "sweep_body", "run_sweep", "grid_shape"]

#: The four sweep corners (dx, dy): NE, NW, SE, SW — real transport codes
#: sweep all octants; alternating corners exercises both diagonals.
DIRECTIONS = ((1, 1), (-1, 1), (1, -1), (-1, -1))


def grid_shape(n_ranks: int) -> tuple[int, int]:
    """Most-square (px, py) factorisation of *n_ranks*."""
    best = (1, n_ranks)
    for px in range(1, int(np.sqrt(n_ranks)) + 1):
        if n_ranks % px == 0:
            best = (px, n_ranks // px)
    return best


@dataclass(frozen=True)
class SweepConfig:
    """KBA-style sweep parameters."""

    #: Full sweeps (one direction each) to perform.
    sweeps: int = 8
    #: Pipelined planes per sweep (the k-blocking factor).
    planes: int = 10
    #: Compute per rank per plane.
    block_compute_us: float = us(400)
    #: Boundary exchange size per neighbour per plane.
    boundary_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.sweeps < 1 or self.planes < 1:
            raise ValueError("sweeps and planes must be >= 1")


@dataclass
class SweepResult:
    elapsed_us: float
    #: Per-sweep wall time as seen by rank 0.
    sweep_times_us: np.ndarray
    grid: tuple[int, int]
    n_ranks: int
    config: SweepConfig

    @property
    def mean_sweep_us(self) -> float:
        return float(np.mean(self.sweep_times_us))

    def ideal_sweep_us(self, per_hop_us: float) -> float:
        """Zero-noise estimate: pipeline fill + drain across the grid."""
        px, py = self.grid
        fill = (px + py - 2) * (self.config.block_compute_us + per_hop_us)
        return fill + self.config.planes * self.config.block_compute_us


def sweep_body(config: SweepConfig, grid: tuple[int, int], sink: dict):
    """Body factory for the wavefront proxy."""
    px, py = grid

    def factory(rank: int, api: MpiApi):
        i, j = rank % px, rank // px
        times = []
        for sweep in range(config.sweeps):
            dx, dy = DIRECTIONS[sweep % len(DIRECTIONS)]
            t0 = api.now
            up_x = i - dx
            up_y = j - dy
            down_x = i + dx
            down_y = j + dy
            for plane in range(config.planes):
                if 0 <= up_x < px:
                    yield from api.recv(up_x + j * px, ("sw", sweep, plane, "x"))
                if 0 <= up_y < py:
                    yield from api.recv(i + up_y * px, ("sw", sweep, plane, "y"))
                yield from api.compute(config.block_compute_us)
                if 0 <= down_x < px:
                    yield from api.send(
                        down_x + j * px, ("sw", sweep, plane, "x"), None, config.boundary_bytes
                    )
                if 0 <= down_y < py:
                    yield from api.send(
                        i + down_y * px, ("sw", sweep, plane, "y"), None, config.boundary_bytes
                    )
            # Sweeps are separated by a light synchronisation (flux sum).
            yield from api.allreduce(1.0)
            times.append(api.now - t0)
        if rank == 0:
            sink["sweep_times"] = times

    return factory


def run_sweep(
    system: System,
    n_ranks: int,
    tasks_per_node: int,
    config: SweepConfig | None = None,
    horizon_us: float = s(600),
) -> SweepResult:
    """Run the wavefront proxy to completion on *system*."""
    cfg = config if config is not None else SweepConfig()
    grid = grid_shape(n_ranks)
    sink: dict = {}
    job = system.launch(n_ranks, tasks_per_node, sweep_body(cfg, grid, sink), name="sweep")
    elapsed = job.run(horizon_us=horizon_us)
    return SweepResult(
        elapsed_us=elapsed,
        sweep_times_us=np.asarray(sink["sweep_times"], dtype=float),
        grid=grid,
        n_ranks=n_ranks,
        config=cfg,
    )
