"""The ``aggregate_trace`` synthetic benchmark (paper §5.1).

"In this particular code, three loops are done where the timings of 4096
MPI_Allreduce calls were measured.  In addition to the overall timings, a
call to AIX trace was done before and after every 64th call to
MPI_Allreduce."  The 64-call blocks give a statistical picture: some
blocks catch interference, some don't.

This module reproduces that structure.  Call counts are configurable so
test-scale runs stay fast; the paper-scale defaults are preserved as
:data:`PAPER_CONFIG`.  Per-call durations are recorded for every rank on
node 0 (the "trace one node of a big run" methodology behind Figure 4)
and for rank 0 globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpi.world import MpiApi
from repro.system import System
from repro.units import s, us

__all__ = [
    "AggregateTraceConfig",
    "AggregateTraceResult",
    "PAPER_CONFIG",
    "aggregate_trace_body",
    "run_aggregate_trace",
    "sharded_app",
]


@dataclass(frozen=True)
class AggregateTraceConfig:
    loops: int = 1
    calls_per_loop: int = 128
    #: Trace mark (AIX `trace` hook analogue) every this many calls.
    trace_block: int = 64
    #: Light work between Allreduce calls ("the sorts of tasks programs may
    #: perform in the section of code where they use MPI_Allreduce").
    compute_between_us: float = us(200)
    payload_bytes: int = 8

    def __post_init__(self) -> None:
        if self.loops < 1 or self.calls_per_loop < 1:
            raise ValueError("loops and calls_per_loop must be >= 1")

    @property
    def total_calls(self) -> int:
        return self.loops * self.calls_per_loop


#: The configuration the paper actually ran (3 × 4096 calls).
PAPER_CONFIG = AggregateTraceConfig(loops=3, calls_per_loop=4096)


@dataclass
class AggregateTraceResult:
    """Timings and integrity check from one run."""

    #: Per-call Allreduce durations (µs) observed by rank 0, all loops.
    durations_us: np.ndarray
    #: rank -> per-call durations for every rank placed on node 0.
    node0_durations_us: dict[int, np.ndarray]
    elapsed_us: float
    n_ranks: int
    config: AggregateTraceConfig
    #: All reduction results matched the expected value.
    values_ok: bool

    @property
    def mean_us(self) -> float:
        return float(np.mean(self.durations_us))

    @property
    def median_us(self) -> float:
        return float(np.median(self.durations_us))

    @property
    def max_us(self) -> float:
        return float(np.max(self.durations_us))

    @property
    def min_us(self) -> float:
        return float(np.min(self.durations_us))

    def sorted_node0_sample(self) -> np.ndarray:
        """All node-0 per-call durations, sorted ascending — the Figure 4
        presentation (448 sorted Allreduce times from one node)."""
        if not self.node0_durations_us:
            return np.sort(self.durations_us)
        return np.sort(np.concatenate(list(self.node0_durations_us.values())))


def aggregate_trace_body(config: AggregateTraceConfig, sink: dict, node0_ranks: set[int]):
    """Body factory; ranks deposit duration arrays into *sink*."""
    def factory(rank: int, api: MpiApi):
        record = rank == 0 or rank in node0_ranks
        durations = [] if record else None
        expected = None
        ok = True
        for loop in range(config.loops):
            for i in range(config.calls_per_loop):
                if i % config.trace_block == 0:
                    api.trace_mark("aggr.block", payload=(loop, i))
                if config.compute_between_us > 0:
                    yield from api.compute(config.compute_between_us)
                t0 = api.now
                v = yield from api.allreduce(1.0, nbytes=config.payload_bytes)
                if record:
                    durations.append(api.now - t0)
                if expected is None:
                    expected = float(api.size)
                if v != expected:
                    ok = False
            api.trace_mark("aggr.loop_end", payload=loop)
        if record:
            sink[rank] = (np.asarray(durations, dtype=float), ok)
        elif not ok:
            sink.setdefault("bad_values", []).append(rank)

    return factory


def sharded_app(params: dict):
    """Parallel-DES app provider (``repro.apps.aggregate_trace:sharded_app``).

    Referenced by name from :func:`repro.sim.parallel.run_parallel` so the
    spec stays picklable across shard workers.  *params* feeds
    :class:`AggregateTraceConfig` (``loops``, ``calls_per_loop``,
    ``trace_block``, ``compute_between_us``, ``payload_bytes``) plus
    ``record_nodes`` — the nodes whose ranks' per-call durations enter the
    result digest (default node 0, the Figure-4 methodology).  Rank 0
    always records.  Each shard collects only the ranks it simulated; the
    coordinator merges the per-shard dicts.
    """
    cfg_keys = ("loops", "calls_per_loop", "trace_block", "compute_between_us", "payload_bytes")
    cfg = AggregateTraceConfig(**{k: params[k] for k in cfg_keys if k in params})
    record_nodes = frozenset(params.get("record_nodes", (0,)))
    sink: dict = {}

    def body_factory(rank: int, api: MpiApi):
        node = api.world.placement.node_of(rank)
        recording = {rank} if (rank == 0 or node in record_nodes) else set()
        return aggregate_trace_body(cfg, sink, recording)(rank, api)

    def collect() -> dict:
        ranks = {
            str(r): [float(x) for x in sink[r][0]]
            for r in sink
            if isinstance(r, int)
        }
        ok = all(sink[r][1] for r in sink if isinstance(r, int))
        ok = ok and "bad_values" not in sink
        return {"ranks": ranks, "ok": ok}

    class _App:
        pass

    app = _App()
    app.body_factory = body_factory
    app.collect = collect
    return app


def run_aggregate_trace(
    system: System,
    n_ranks: int,
    tasks_per_node: int,
    config: AggregateTraceConfig | None = None,
    horizon_us: float = s(600),
) -> AggregateTraceResult:
    """Run the benchmark to completion and collect results."""
    cfg = config if config is not None else AggregateTraceConfig()
    placement = system.cluster.place(n_ranks, tasks_per_node)
    node0_ranks = {r for r in range(n_ranks) if placement.node_of(r) == 0}
    sink: dict = {}
    job = system.launch(n_ranks, tasks_per_node, aggregate_trace_body(cfg, sink, node0_ranks), name="aggr")
    elapsed = job.run(horizon_us=horizon_us)
    durations0, ok0 = sink[0]
    node0 = {r: sink[r][0] for r in node0_ranks if r in sink}
    values_ok = ok0 and all(sink[r][1] for r in node0_ranks if r in sink) and "bad_values" not in sink
    return AggregateTraceResult(
        durations_us=durations0,
        node0_durations_us=node0,
        elapsed_us=elapsed,
        n_ranks=n_ranks,
        config=cfg,
        values_ok=values_ok,
    )
