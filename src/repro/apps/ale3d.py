"""ALE3D proxy application (paper §5.1, §5.3).

A structural stand-in for the LLNL multi-physics code's explicit-hydro
test problem: "approximately 50 timesteps, and each timestep involved a
large amount of point-to-point MPI message passing, as well as several
global reduction operations.  The problem performed a fair amount of I/O
by reading an initial state file at the beginning of the run, and dumping
a restart file at the calculation's terminus."

The proxy keeps exactly the features that interact with scheduling:

* nearest-neighbour (ring) exchanges — element-boundary communication of
  explicit hydrodynamics;
* per-rank compute with mild imbalance (mesh/material heterogeneity);
* several Allreduce per step (time-step control, energy sums);
* I/O phases through the node :class:`~repro.daemons.io.IoService` — the
  dependency that made naive co-scheduling *slow the application down*
  until the favored priority was placed just above the I/O daemons;
* optional use of the co-scheduler detach/attach API around I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.world import MpiApi
from repro.system import System
from repro.units import ms, s

__all__ = ["Ale3dConfig", "Ale3dResult", "ale3d_body", "run_ale3d"]


def _lcg_unit(rank: int, step: int, salt: int) -> float:
    """Deterministic per-(rank, step) value in [0, 1) (pure, reproducible)."""
    x = (rank * 2654435761 + step * 40503 + salt * 131) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 2246822519) & 0xFFFFFFFF
    x ^= x >> 13
    return x / 2**32


@dataclass(frozen=True)
class Ale3dConfig:
    timesteps: int = 50
    #: Lagrange-step compute per rank per timestep.
    lagrange_us: float = ms(6)
    #: Mesh-remap/advection compute per rank per timestep.
    remap_us: float = ms(3)
    #: Fractional per-rank compute imbalance.
    imbalance: float = 0.08
    #: Ring-neighbour exchanges per timestep (each is send+recv both ways).
    exchanges_per_step: int = 2
    exchange_bytes: int = 32_768
    #: Global reductions per timestep.
    allreduces_per_step: int = 4
    #: Initial-state read at job start (bytes per rank).
    initial_read_bytes: int = 6_000_000
    #: Restart dump at the calculation's terminus (bytes per rank).
    restart_write_bytes: int = 12_000_000
    #: Use the MPI library's co-scheduler detach/attach API around I/O.
    use_detach_api: bool = False
    #: Declare the collective section of each timestep as a fine-grain
    #: region (paper §7 future work; pairs with CoschedConfig.fine_grain_only).
    use_fine_grain_hints: bool = False
    salt: int = 0


@dataclass
class Ale3dResult:
    elapsed_us: float
    step_times_us: np.ndarray
    #: Wall time rank 0 spent inside I/O phases.
    io_time_us: float
    n_ranks: int
    config: Ale3dConfig

    @property
    def mean_step_us(self) -> float:
        return float(np.mean(self.step_times_us))


def ale3d_body(config: Ale3dConfig, sink: dict):
    """Body factory for the proxy app."""

    def factory(rank: int, api: MpiApi):
        size = api.size
        left = (rank - 1) % size
        right = (rank + 1) % size
        io_time = 0.0

        # ---- initial state read ---------------------------------------
        t0 = api.now
        if config.use_detach_api:
            api.cosched_detach()
        yield from api.io_request(config.initial_read_bytes)
        if config.use_detach_api:
            api.cosched_attach()
        yield from api.barrier()
        io_time += api.now - t0

        # ---- timestep loop ---------------------------------------------
        step_times = []
        for step in range(config.timesteps):
            ts0 = api.now
            jitter = 1.0 + config.imbalance * (2.0 * _lcg_unit(rank, step, config.salt) - 1.0)
            yield from api.compute(config.lagrange_us * jitter)
            for ex in range(config.exchanges_per_step):
                # Slide-surface / element-boundary exchange with both
                # neighbours; eager sends first, then receives.
                yield from api.send(right, ("ex", step, ex, "r"), None, config.exchange_bytes)
                yield from api.send(left, ("ex", step, ex, "l"), None, config.exchange_bytes)
                yield from api.recv(left, ("ex", step, ex, "r"))
                yield from api.recv(right, ("ex", step, ex, "l"))
            yield from api.compute(config.remap_us * jitter)
            if config.use_fine_grain_hints:
                api.fine_grain_begin()
            for _ in range(config.allreduces_per_step):
                yield from api.allreduce(1.0)
            if config.use_fine_grain_hints:
                api.fine_grain_end()
            step_times.append(api.now - ts0)

        # ---- restart dump -----------------------------------------------
        t0 = api.now
        if config.use_detach_api:
            api.cosched_detach()
        yield from api.io_request(config.restart_write_bytes)
        if config.use_detach_api:
            api.cosched_attach()
        yield from api.barrier()
        io_time += api.now - t0

        if rank == 0:
            sink["step_times"] = step_times
            sink["io_time"] = io_time

    return factory


def run_ale3d(
    system: System,
    n_ranks: int,
    tasks_per_node: int,
    config: Ale3dConfig | None = None,
    horizon_us: float = s(3600),
) -> Ale3dResult:
    """Run the proxy to completion; the system should be built ``with_io``."""
    cfg = config if config is not None else Ale3dConfig()
    sink: dict = {}
    job = system.launch(n_ranks, tasks_per_node, ale3d_body(cfg, sink), name="ale3d")
    elapsed = job.run(horizon_us=horizon_us)
    return Ale3dResult(
        elapsed_us=elapsed,
        step_times_us=np.asarray(sink["step_times"], dtype=float),
        io_time_us=sink["io_time"],
        n_ranks=n_ranks,
        config=cfg,
    )
