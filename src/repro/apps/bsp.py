"""Bulk-Synchronous SPMD workload generator (paper Fig 2).

"Each process of a parallel job executes on a separate processor and
alternates between computation and communication phases."  The generator
produces exactly that: configurable compute phases (with optional per-rank
imbalance) separated by a synchronising collective.  Cycle times versus
the ideal (compute + zero-noise collective) give the efficiency number
that OS interference erodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.mpi.world import MpiApi
from repro.system import System
from repro.units import ms, s

__all__ = ["BspConfig", "BspResult", "bsp_body", "run_bsp"]


def _lcg_unit(rank: int, cycle: int, salt: int) -> float:
    """Deterministic per-(rank, cycle) value in [0, 1) without RNG state.

    Keeps app bodies pure functions of their arguments so runs stay
    reproducible regardless of generator interleaving.
    """
    x = (rank * 2654435761 + cycle * 40503 + salt * 97) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 2246822519) & 0xFFFFFFFF
    x ^= x >> 13
    return x / 2**32


@dataclass(frozen=True)
class BspConfig:
    """Shape of the synthetic bulk-synchronous cycle."""

    cycles: int = 50
    compute_us: float = ms(2)
    #: Fractional compute imbalance across ranks (0 = perfectly balanced).
    imbalance: float = 0.05
    collective: Literal["allreduce", "barrier", "allgather"] = "allreduce"
    salt: int = 0


@dataclass
class BspResult:
    """Per-cycle timings as observed by rank 0."""

    cycle_times_us: np.ndarray
    elapsed_us: float
    n_ranks: int
    config: BspConfig

    @property
    def mean_cycle_us(self) -> float:
        return float(np.mean(self.cycle_times_us))

    def efficiency(self, ideal_cycle_us: float) -> float:
        """Fraction of ideal throughput achieved."""
        return ideal_cycle_us / self.mean_cycle_us


def bsp_body(config: BspConfig, sink: dict):
    """Body factory for a BSP job; rank 0 deposits timings into *sink*."""

    def factory(rank: int, api: MpiApi):
        times = []
        for cycle in range(config.cycles):
            t0 = api.now
            work = config.compute_us * (
                1.0 + config.imbalance * (2.0 * _lcg_unit(rank, cycle, config.salt) - 1.0)
            )
            yield from api.compute(work)
            if config.collective == "allreduce":
                yield from api.allreduce(float(rank))
            elif config.collective == "barrier":
                yield from api.barrier()
            else:
                yield from api.allgather(float(rank))
            times.append(api.now - t0)
        if rank == 0:
            sink["cycle_times"] = times

    return factory


def run_bsp(
    system: System,
    n_ranks: int,
    tasks_per_node: int,
    config: BspConfig | None = None,
    horizon_us: float = s(120),
) -> BspResult:
    """Launch and run a BSP job to completion on *system*."""
    cfg = config if config is not None else BspConfig()
    sink: dict = {}
    job = system.launch(n_ranks, tasks_per_node, bsp_body(cfg, sink), name="bsp")
    elapsed = job.run(horizon_us=horizon_us)
    return BspResult(
        cycle_times_us=np.asarray(sink["cycle_times"], dtype=float),
        elapsed_us=elapsed,
        n_ranks=n_ranks,
        config=cfg,
    )
