"""Whole-cluster assembly and rank placement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import ClusterConfig
from repro.machine.node import Node
from repro.net.fabric import Fabric
from repro.net.switch import SwitchClock
from repro.rng import StreamFactory
from repro.sim.core import Simulator
from repro.sim.shard import ShardPlan, ShardRouter
from repro.trace.recorder import TraceRecorder

__all__ = ["Cluster", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Where each MPI rank lives: ``(node, cpu)`` per rank.

    Standard SPMD block placement: rank *r* goes to node ``r // tpn``, CPU
    ``r % tpn``.  With ``tasks_per_node < cpus_per_node`` the highest CPUs
    of each node stay free — the "leave one CPU idle for the daemons"
    mitigation the paper discusses (and improves upon).
    """

    n_ranks: int
    tasks_per_node: int

    def node_of(self, rank: int) -> int:
        """Node index hosting *rank*."""
        return rank // self.tasks_per_node

    def cpu_of(self, rank: int) -> int:
        """CPU index (within its node) that *rank* is pinned to."""
        return rank % self.tasks_per_node

    @property
    def n_nodes(self) -> int:
        return -(-self.n_ranks // self.tasks_per_node)


class Cluster:
    """A built machine: simulator + switch + fabric + nodes.

    Construction applies the co-scheduler's startup clock synchronisation
    when configured (paper §4: the daemon reads the switch clock register
    and slews the node's time-of-day low-order bits to match), because tick
    alignment to global time depends on the post-sync offsets.
    """

    def __init__(
        self,
        config: ClusterConfig,
        trace: Optional[TraceRecorder] = None,
        shard: Optional[tuple[int, ShardPlan]] = None,
    ) -> None:
        self.config = config
        self.sim = Simulator()
        self.rngf = StreamFactory(config.seed)
        #: Cross-shard router (parallel DES), or None for a serial cluster.
        #: Every shard builds the *full* node list below — construction
        #: schedules no events and fixes the construction-time RNG draw
        #: order identically on every shard — but installers (daemons,
        #: I/O, co-schedulers, jobs) consult :meth:`owns_node` so only the
        #: owned block ever gets threads.
        self.router: Optional[ShardRouter] = None
        if shard is not None:
            shard_id, plan = shard
            if plan.n_nodes != config.machine.n_nodes:
                raise ValueError(
                    f"shard plan covers {plan.n_nodes} nodes; "
                    f"machine has {config.machine.n_nodes}"
                )
            self.router = ShardRouter(plan, shard_id)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.switch = SwitchClock(self.rngf.stream("switch.clock"))
        self.fabric = Fabric(self.sim, config.network)

        clock_rng = self.rngf.stream("machine.clock")
        phase_rng = self.rngf.stream("machine.tickphase")
        sync = config.cosched.enabled and config.cosched.sync_clock
        self.nodes: list[Node] = []
        for i in range(config.machine.n_nodes):
            raw_offset = float(
                clock_rng.uniform(
                    -config.machine.max_clock_offset_us, config.machine.max_clock_offset_us
                )
            )
            if sync:
                # Startup sync: the node slews its clock to the switch
                # register; the residual is the register read error.
                offset = self.switch.read(0.0)
            else:
                offset = raw_offset
            tick_phase = float(phase_rng.uniform(0.0, config.kernel.physical_tick_period_us))
            self.nodes.append(
                Node(
                    self.sim,
                    node_id=i,
                    n_cpus=config.machine.cpus_per_node,
                    kernel=config.kernel,
                    clock_offset_us=offset,
                    tick_phase_us=tick_phase,
                    trace=self.trace,
                    rng_streams=self.rngf,
                )
            )

    def owns_node(self, node_id: int) -> bool:
        """True when this cluster instance simulates *node_id* (always
        true for serial clusters; the owned shard block otherwise)."""
        return self.router is None or self.router.owns(node_id)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cpus_per_node(self) -> int:
        return self.config.machine.cpus_per_node

    @property
    def total_cpus(self) -> int:
        return self.n_nodes * self.cpus_per_node

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view of everything the cluster owns.

        The event calendar is captured as described coordinates (time,
        priority, sequence, callback reference) — callbacks themselves are
        re-bound on restore by rebuilding through the checkpoint builder
        registry and replaying to the snapshot instant.
        """
        return {
            "sim": {
                "now": self.sim.now,
                "events_processed": self.sim.events_processed,
                "events": [desc.event(ev) for ev in self.sim.active_events()],
            },
            "rng": self.rngf.snapshot_state(),
            "switch": self.switch.snapshot_state(desc),
            "fabric": self.fabric.snapshot_state(desc),
            "trace": self.trace.snapshot_state(desc),
            "shard": (
                self.router.snapshot_state(desc) if self.router is not None else None
            ),
            "nodes": [node.snapshot_state(desc) for node in self.nodes],
        }

    def place(self, n_ranks: int, tasks_per_node: Optional[int] = None) -> Placement:
        """Block placement of *n_ranks* MPI tasks onto the cluster."""
        tpn = tasks_per_node if tasks_per_node is not None else self.cpus_per_node
        if tpn < 1 or tpn > self.cpus_per_node:
            raise ValueError(f"tasks_per_node {tpn} out of range 1..{self.cpus_per_node}")
        placement = Placement(n_ranks, tpn)
        if placement.n_nodes > self.n_nodes:
            raise ValueError(
                f"{n_ranks} ranks at {tpn}/node needs {placement.n_nodes} nodes; "
                f"cluster has {self.n_nodes}"
            )
        return placement

    def run_for(self, duration_us: float, max_events: Optional[int] = None) -> int:
        """Advance the whole cluster by *duration_us*."""
        return self.sim.run_until(self.sim.now + duration_us, max_events=max_events)
