"""Cluster hardware assembly.

:class:`~repro.machine.node.Node` wires one SMP node together (CPUs +
scheduler + tick schedule + time-of-day clock offset);
:class:`~repro.machine.cluster.Cluster` builds the whole machine from a
:class:`~repro.config.ClusterConfig` — simulator, switch clock, fabric,
trace recorder, and all nodes — and provides rank placement and local/global
time conversion.  Higher layers (daemons, MPI, co-scheduler) install
themselves onto a built cluster.
"""

from repro.machine.node import Node
from repro.machine.cluster import Cluster, Placement

__all__ = ["Node", "Cluster", "Placement"]
