"""One SMP node: CPUs, dispatcher, tick schedule, local clock."""

from __future__ import annotations

from typing import Optional

from repro.config import KernelConfig
from repro.kernel.scheduler import NodeScheduler
from repro.kernel.thread import Compute, Sleep, Thread
from repro.kernel.ticks import TickSchedule
from repro.sim.core import Simulator

__all__ = ["Node"]


class Node:
    """A 16-way (configurable) SMP node.

    Parameters
    ----------
    clock_offset_us:
        This node's time-of-day offset from global simulation time
        (``local = global + offset``).  Zero-ish after switch-clock
        synchronisation; up to ``MachineConfig.max_clock_offset_us``
        otherwise.
    tick_phase_us:
        Base phase of this node's timer ticks, drawn per node unless the
        kernel aligns ticks to global time (in which case the tick engine
        derives the phase from the clock offset).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        n_cpus: int,
        kernel: KernelConfig,
        clock_offset_us: float = 0.0,
        tick_phase_us: float = 0.0,
        trace=None,
        rng_streams=None,
    ) -> None:
        self.id = node_id
        self.n_cpus = n_cpus
        self.sim = sim
        self.clock_offset_us = clock_offset_us
        #: Time-of-day drift rate (µs of local clock per µs of global time,
        #: beyond 1.0) — zero while switch-clock sync holds; set by the fault
        #: injector when timesync is lost.
        self.drift_rate = 0.0
        self.drift_start_us = 0.0
        self.ticks = TickSchedule(
            kernel,
            n_cpus,
            node_phase_us=tick_phase_us,
            clock_offset_us=clock_offset_us,
        )
        self.scheduler = NodeScheduler(
            sim, node_id, n_cpus, kernel, self.ticks, trace=trace, rng_streams=rng_streams
        )

    def local_time(self, global_now: float) -> float:
        """This node's time-of-day reading at global time *global_now*."""
        t = global_now + self.clock_offset_us
        if self.drift_rate:
            t += self.drift_rate * (global_now - self.drift_start_us)
        return t

    def global_time(self, local_time: float) -> float:
        """Global instant at which this node's clock reads *local_time*."""
        if self.drift_rate:
            return (
                local_time - self.clock_offset_us + self.drift_rate * self.drift_start_us
            ) / (1.0 + self.drift_rate)
        return local_time - self.clock_offset_us

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: clock state + the dispatcher underneath."""
        return {
            "id": self.id,
            "clock_offset_us": self.clock_offset_us,
            "drift_rate": self.drift_rate,
            "drift_start_us": self.drift_start_us,
            "scheduler": self.scheduler.snapshot_state(desc),
        }

    # ------------------------------------------------------------------
    # Fault-injection hooks (repro.faults)
    # ------------------------------------------------------------------
    def jump_clock(self, delta_us: float) -> None:
        """Step this node's time-of-day clock by *delta_us* (an NTP slam)."""
        self.clock_offset_us += delta_us

    def set_clock_drift(self, rate: float, start_us: float) -> None:
        """Begin free-drifting at *rate* from global instant *start_us*.

        Folds any previously accumulated drift into the static offset first
        so the clock reading is continuous at the change point.
        """
        if self.drift_rate:
            self.clock_offset_us += self.drift_rate * (start_us - self.drift_start_us)
        self.drift_rate = rate
        self.drift_start_us = start_us

    def inject_freeze(self, duration_us: float) -> list[Thread]:
        """Seize every CPU for *duration_us*: a node crash / kernel hang.

        One top-priority hog per CPU (asserted like a hardware interrupt, so
        the takeover is immediate) computes flat out for the window.  Resident
        threads make zero progress; the fabric keeps delivering into their
        mailboxes, which is what makes the retransmit path testable.
        """

        def hog(duration: float):
            yield Compute(duration)

        return [
            self.scheduler.spawn(
                hog(duration_us),
                name=f"fault-freeze-n{self.id}c{cpu}",
                priority=0,
                affinity_cpu=cpu,
                category="fault",
                allow_steal=False,
                tick_quantized=False,
                hardware=True,
            )
            for cpu in range(self.n_cpus)
        ]

    def inject_slowdown(
        self, duration_us: float, fraction: float, period_us: float
    ) -> list[Thread]:
        """Steal *fraction* of every CPU for *duration_us* (thermal throttle).

        Duty-cycled top-priority hogs: busy for ``fraction * period_us``,
        asleep for the rest, until the window closes.
        """
        busy = fraction * period_us
        idle = period_us - busy
        end = self.sim.now + duration_us

        def hog():
            while self.sim.now < end:
                yield Compute(busy)
                if self.sim.now >= end:
                    break
                yield Sleep(idle)

        return [
            self.scheduler.spawn(
                hog(),
                name=f"fault-slow-n{self.id}c{cpu}",
                priority=0,
                affinity_cpu=cpu,
                category="fault",
                allow_steal=False,
                tick_quantized=False,
                hardware=True,
            )
            for cpu in range(self.n_cpus)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} cpus={self.n_cpus} offset={self.clock_offset_us:.1f}us>"
