"""One SMP node: CPUs, dispatcher, tick schedule, local clock."""

from __future__ import annotations

from typing import Optional

from repro.config import KernelConfig
from repro.kernel.scheduler import NodeScheduler
from repro.kernel.ticks import TickSchedule
from repro.sim.core import Simulator

__all__ = ["Node"]


class Node:
    """A 16-way (configurable) SMP node.

    Parameters
    ----------
    clock_offset_us:
        This node's time-of-day offset from global simulation time
        (``local = global + offset``).  Zero-ish after switch-clock
        synchronisation; up to ``MachineConfig.max_clock_offset_us``
        otherwise.
    tick_phase_us:
        Base phase of this node's timer ticks, drawn per node unless the
        kernel aligns ticks to global time (in which case the tick engine
        derives the phase from the clock offset).
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        n_cpus: int,
        kernel: KernelConfig,
        clock_offset_us: float = 0.0,
        tick_phase_us: float = 0.0,
        trace=None,
    ) -> None:
        self.id = node_id
        self.n_cpus = n_cpus
        self.clock_offset_us = clock_offset_us
        self.ticks = TickSchedule(
            kernel,
            n_cpus,
            node_phase_us=tick_phase_us,
            clock_offset_us=clock_offset_us,
        )
        self.scheduler = NodeScheduler(sim, node_id, n_cpus, kernel, self.ticks, trace=trace)

    def local_time(self, global_now: float) -> float:
        """This node's time-of-day reading at global time *global_now*."""
        return global_now + self.clock_offset_us

    def global_time(self, local_time: float) -> float:
        """Global instant at which this node's clock reads *local_time*."""
        return local_time - self.clock_offset_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} cpus={self.n_cpus} offset={self.clock_offset_us:.1f}us>"
