"""Statistics helpers for experiment reporting.

The paper's methodology is statistical at heart — "each plotted datum is
the average of at least 3 runs, and each run is the result of thousands of
Allreduces"; Figure 4 is a sorted-sample study; the text repeatedly
contrasts *variability* across kernels.  This module centralises the
summaries the experiment layer reports:

* :func:`summarize` — the five-number-plus profile of a duration sample;
* :func:`bootstrap_ci` — nonparametric confidence interval on any
  statistic of a sample (means of heavy-tailed noise distributions need
  better than ±σ);
* :func:`variability` — the coefficient-of-variation and tail-weight
  measures the paper's "extreme variability" claim is about;
* :func:`slowdown_profile` — per-quantile ratio of two samples (how a
  treatment reshapes the distribution, not just the mean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "SampleSummary",
    "summarize",
    "bootstrap_ci",
    "variability",
    "Variability",
    "slowdown_profile",
]


@dataclass(frozen=True)
class SampleSummary:
    """Distribution profile of a duration sample (µs)."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    p99: float
    maximum: float

    def rows(self) -> list[tuple[str, float]]:
        """(name, value) pairs in report order."""
        return [
            ("min", self.minimum),
            ("p25", self.p25),
            ("median", self.median),
            ("p75", self.p75),
            ("p90", self.p90),
            ("p99", self.p99),
            ("max", self.maximum),
            ("mean", self.mean),
        ]


def summarize(sample: Sequence[float]) -> SampleSummary:
    """Profile a sample; raises on empty input (silent NaNs hide bugs)."""
    x = np.asarray(sample, dtype=float)
    if x.size == 0:
        raise ValueError("cannot summarise an empty sample")
    q = np.percentile(x, [0, 25, 50, 75, 90, 99, 100])
    return SampleSummary(
        n=int(x.size),
        mean=float(x.mean()),
        std=float(x.std()),
        minimum=float(q[0]),
        p25=float(q[1]),
        median=float(q[2]),
        p75=float(q[3]),
        p90=float(q[4]),
        p99=float(q[5]),
        maximum=float(q[6]),
    )


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for *statistic*.

    Heavy-tailed interference samples (log-normal daemon services, the
    cron outlier) make normal-theory intervals on the mean badly wrong;
    the bootstrap stays honest.
    """
    x = np.asarray(sample, dtype=float)
    if x.size < 2:
        raise ValueError("need at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(n_resamples, x.size))
    stats = np.asarray([statistic(x[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)


@dataclass(frozen=True)
class Variability:
    """The 'extreme variability' measures of Figures 3-5."""

    #: Coefficient of variation (std / mean).
    cv: float
    #: Mean / median — >1 indicates a right tail dragging the mean.
    mean_over_median: float
    #: Share of total time in the slowest 1% of calls.
    top1pct_share: float

    @property
    def is_heavy_tailed(self) -> bool:
        """Rule of thumb separating Fig-3-like from Fig-5-like samples."""
        return self.mean_over_median > 1.5 or self.top1pct_share > 0.2


def variability(sample: Sequence[float]) -> Variability:
    """Compute the tail/variability profile of a duration sample."""
    x = np.asarray(sample, dtype=float)
    if x.size == 0:
        raise ValueError("cannot assess an empty sample")
    mean = float(x.mean())
    median = float(np.median(x))
    k = max(1, int(np.ceil(0.01 * x.size)))
    top = float(np.sort(x)[-k:].sum())
    total = float(x.sum())
    return Variability(
        cv=float(x.std() / mean) if mean > 0 else 0.0,
        mean_over_median=mean / median if median > 0 else float("inf"),
        top1pct_share=top / total if total > 0 else 0.0,
    )


def slowdown_profile(
    baseline: Sequence[float],
    treated: Sequence[float],
    quantiles: Sequence[float] = (0.25, 0.5, 0.75, 0.9, 0.99),
) -> list[tuple[float, float]]:
    """Per-quantile baseline/treated ratio (>1 = treatment is faster).

    A treatment that only trims the tail shows ratios near 1 at the median
    and large at p99 — exactly how the co-scheduler reads at low scale.
    """
    b = np.asarray(baseline, dtype=float)
    t = np.asarray(treated, dtype=float)
    if b.size == 0 or t.size == 0:
        raise ValueError("both samples must be non-empty")
    out = []
    for q in quantiles:
        bq = float(np.quantile(b, q))
        tq = float(np.quantile(t, q))
        out.append((q, bq / tq if tq > 0 else float("inf")))
    return out
