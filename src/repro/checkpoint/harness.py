"""Crash-safe experiment harness: trial journaling and wall-clock watchdog.

A sweep is a loop over (scenario, proc-count, seed) trials, each costing
minutes of wall clock.  The journal records every completed trial to its
own atomically-written JSON file, so a crash (or a ``kill -9``) between
trials loses at most the trial in flight; re-running the sweep with the
same journal skips finished trials and recomputes only the rest.  Because
``json`` round-trips doubles exactly, a resumed sweep is bit-identical to
an uninterrupted one.

Failed trials are journaled too — with ``status: "failed"`` — but are
*retried* on resume: a failure is usually environmental (timeout, OOM),
and permanently skipping it would silently shrink the sweep.  Only
``status: "ok"`` entries short-circuit.

:func:`trial_watchdog` bounds each trial's wall-clock time with a real
``SIGALRM`` timer, so a wedged trial (a livelock in a model under an
adversarial fault config) kills itself, gets recorded as failed, and the
sweep moves on instead of hanging the whole campaign.
"""

from __future__ import annotations

import json
import logging
import os
import re
import signal
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

__all__ = [
    "TrialFailure",
    "TrialTimeout",
    "SweepJournal",
    "trial_watchdog",
    "sanitize_key",
    "valid_journal_entry",
]

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")

_log = logging.getLogger("repro.harness")


def sanitize_key(key: str) -> str:
    """Filesystem-safe form of a trial key (shared with the result store,
    whose key index uses the same names so journals and store line up)."""
    return _UNSAFE.sub("_", key)


def valid_journal_entry(obj) -> bool:
    """Is *obj* a structurally valid journal entry?

    An entry is a dict whose ``status`` is ``"ok"`` (with a ``record``)
    or ``"failed"``.  Anything else — valid JSON of the wrong shape, a
    bare list, a half-migrated file — is treated exactly like a torn
    write: dropped by :meth:`SweepJournal.merge_shards`, ignored by
    :meth:`SweepJournal.lookup`, recomputed on resume.
    """
    if not isinstance(obj, dict):
        return False
    status = obj.get("status")
    if status == "ok":
        return "record" in obj
    return status == "failed"


class TrialFailure(RuntimeError):
    """A trial failed in a way the sweep should record and survive."""


class TrialTimeout(TrialFailure):
    """A trial exceeded its wall-clock budget (raised from SIGALRM)."""


def _atomic_write_json(path: Path, obj) -> None:
    """Write *obj* as JSON via temp-file + ``os.replace`` (crash-safe)."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=1, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SweepJournal:
    """Per-trial completion journal under ``<root>/journal/``.

    One JSON file per trial key; keys are free-form strings (e.g.
    ``"proto16-n512-s2"``) sanitised for the filesystem.  ``lookup``
    returns the recorded result for finished trials (and counts the hit,
    so resume tests can assert how much work was skipped).

    Multiprocess safety: a journal opened with a *shard* name (as each
    :class:`~repro.experiments.runner.TrialRunner` worker process does)
    writes its entries under ``journal/shards/<shard>/`` with the same
    atomic temp + ``os.replace`` discipline, so concurrent workers never
    contend on a path.  Readers (``lookup`` / ``entries``, always the
    parent process) first fold any shard files into the canonical
    directory via :meth:`merge_shards` — a rename per file, atomic on the
    same filesystem — so after any run, parallel or serial, the journal
    directory holds one identical set of per-key files.
    """

    def __init__(self, root, shard: Optional[str] = None) -> None:
        self.root = Path(root)
        self.dir = self.root / "journal"
        self.shards_dir = self.dir / "shards"
        if shard is not None:
            self._write_dir = self.shards_dir / sanitize_key(shard)
        else:
            self._write_dir = self.dir
        self._write_dir.mkdir(parents=True, exist_ok=True)
        #: Successful lookups served from the journal (resume telemetry).
        self.hits = 0

    def _path(self, key: str) -> Path:
        return self._write_dir / f"{sanitize_key(key)}.json"

    def merge_shards(self) -> int:
        """Fold per-worker shard entries into the canonical directory.

        Idempotent and crash-safe: each shard file is validated as JSON,
        then ``os.replace``d into place (trials are deterministic, so a
        same-key duplicate carries identical bytes and last-writer-wins
        is harmless).  Returns the number of entries moved.

        A truncated or corrupt shard entry — e.g. a worker killed
        mid-write, or a non-atomic writer torn by the filesystem — is
        deleted with a logged warning instead of either raising or, worse,
        clobbering a good canonical entry of the same key; so is an entry
        that parses as JSON but has the wrong shape (see
        :func:`valid_journal_entry`).  Either way its trial is simply
        recomputed on resume, and the total dropped count is logged once
        so a merge that shed entries is visible in one line.  Leftover
        ``*.tmp`` spill from a killed atomic write — and any other stray
        file a dying worker left in a shard — is swept out too, and the
        emptied ``shards/w<pid>/`` directories are removed so resumed
        campaigns never accumulate stale shard dirs.  Callers run this
        quiesced (no live shard writers), so deleting stragglers is safe.
        """
        if not self.shards_dir.is_dir():
            return 0
        moved = 0
        dropped = 0
        for entry in sorted(self.shards_dir.glob("*/*.json")):
            problem = None
            try:
                with open(entry, "r", encoding="utf-8") as fh:
                    obj = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                problem = str(exc)
            else:
                if not valid_journal_entry(obj):
                    problem = "valid JSON but wrong entry shape"
            if problem is not None:
                _log.warning(
                    "journal: dropping corrupt shard entry %s (%s); "
                    "its trial will be recomputed",
                    entry,
                    problem,
                )
                try:
                    entry.unlink()
                except OSError:
                    pass
                dropped += 1
                continue
            os.replace(entry, self.dir / entry.name)
            moved += 1
        for shard_dir in sorted(self.shards_dir.iterdir()):
            if shard_dir.is_dir():
                for stale in sorted(shard_dir.iterdir()):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
            try:
                shard_dir.rmdir()
            except OSError:
                pass
        try:
            self.shards_dir.rmdir()
        except OSError:
            pass
        if dropped:
            _log.warning(
                "journal: dropped %d torn/corrupt shard entr%s during merge "
                "(their trials will be recomputed)",
                dropped,
                "y" if dropped == 1 else "ies",
            )
        return moved

    def lookup(self, key: str) -> Optional[dict]:
        """The journaled record for *key* if it finished OK, else None.

        Failed entries return None on purpose: failures are retried on
        resume, not skipped (see the module docstring).
        """
        self.merge_shards()
        path = self.dir / f"{sanitize_key(key)}.json"
        if not path.is_file():
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None  # torn/corrupt entry: recompute the trial
        if not valid_journal_entry(entry) or entry["status"] != "ok":
            return None
        self.hits += 1
        return entry["record"]

    def record(self, key: str, record: dict) -> None:
        """Journal a completed trial (atomic; visible only when whole)."""
        _atomic_write_json(self._path(key), {"status": "ok", "record": record})

    def record_failure(
        self,
        key: str,
        reason: str,
        traceback: Optional[str] = None,
        taxonomy: Optional[str] = None,
    ) -> None:
        """Journal a failed trial (kept for forensics, retried on resume).

        *traceback* is the full formatted traceback of the failure when
        one is available and deterministic (see
        :func:`repro.experiments.runner.format_trial_traceback`), so a
        chaos or sweep failure is diagnosable from the journal alone.
        *taxonomy* classifies the failure mode — one of ``crash | hang |
        exception | timeout | quarantined`` (see
        :mod:`repro.experiments.supervisor`) — and must be computed
        identically on the serial and worker paths to preserve the
        byte-identical-journals contract.
        """
        _atomic_write_json(
            self._path(key),
            {
                "status": "failed",
                "reason": reason,
                "taxonomy": taxonomy,
                "traceback": traceback,
            },
        )

    def entries(self) -> dict[str, dict]:
        """All journal entries by sanitised key (forensics/tests)."""
        self.merge_shards()
        out = {}
        for p in sorted(self.dir.glob("*.json")):
            try:
                with open(p, "r", encoding="utf-8") as fh:
                    out[p.stem] = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
        return out

    def clear(self) -> None:
        """Delete every journal entry, shards included (fresh-run semantics)."""
        self.merge_shards()
        for p in self.dir.glob("*.json"):
            try:
                p.unlink()
            except OSError:
                pass


@contextmanager
def trial_watchdog(seconds: Optional[float]):
    """Bound the wall-clock time of one trial with a real interval timer.

    Inside the context, ``SIGALRM`` fires after *seconds* and raises
    :class:`TrialTimeout` at the next bytecode boundary — which a wedged
    (but GIL-yielding) trial always reaches.  Timer and handler are fully
    restored on exit.

    Degrades to a no-op when *seconds* is falsy, when not on the main
    thread (signals can't be delivered elsewhere), or on platforms
    without ``SIGALRM`` — the sweep then simply runs unguarded.
    """
    if (
        not seconds
        or threading.current_thread() is not threading.main_thread()
        or not hasattr(signal, "SIGALRM")
        or not hasattr(signal, "setitimer")
    ):
        yield
        return

    def _alarm(signum, frame):
        raise TrialTimeout(f"trial exceeded {seconds}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
