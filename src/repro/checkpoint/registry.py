"""Builder registry: names that survive a checkpoint file.

A checkpoint cannot pickle live closures or suspended generators, so it
stores *names*: the registered builder that constructs the run, and a
stable reference for every scheduled callback (used in fingerprints and
divergence reports).  Builders take only picklable keyword arguments and
return a driver object exposing at least ``.system`` (a
:class:`repro.system.System`).
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "BUILDERS",
    "register_builder",
    "get_builder",
    "build_driver",
    "callback_ref",
    "audit_event_callbacks",
]

#: name -> builder callable (kwargs -> driver with a ``.system``).
BUILDERS: dict[str, Callable] = {}


def register_builder(name: str) -> Callable:
    """Decorator: register *fn* as the builder for checkpoint files named
    *name*.  Re-registering a name overwrites (tests rely on this)."""

    def deco(fn: Callable) -> Callable:
        BUILDERS[name] = fn
        return fn

    return deco


def get_builder(name: str) -> Callable:
    """The builder registered under *name*; KeyError with guidance if absent."""
    try:
        return BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"no checkpoint builder registered under {name!r}; import the "
            f"module that defines it before restoring (known: "
            f"{sorted(BUILDERS) or 'none'})"
        ) from None


def build_driver(name: str, args: dict):
    """Instantiate the driver for builder *name* with saved *args*."""
    return get_builder(name)(**args)


def callback_ref(fn) -> str:
    """Stable, identity-free name for a scheduled callback.

    Bound methods (every callback the simulator sees in practice) become
    ``Owner[@nN].method`` where ``N`` is the owning node when the owner
    exposes one — enough to tell two nodes' schedulers apart without
    leaking ``id()`` values that differ across rebuilds.
    """
    owner = getattr(fn, "__self__", None)
    if owner is None:
        return getattr(fn, "__qualname__", None) or repr(fn)
    node_id = getattr(owner, "node_id", None)
    if node_id is None:
        node = getattr(owner, "node", None)
        node_id = getattr(node, "id", None)
    if node_id is None and type(owner).__name__ == "Node":
        node_id = getattr(owner, "id", None)
    tag = f"[@n{node_id}]" if node_id is not None else ""
    return f"{type(owner).__qualname__}{tag}.{getattr(fn, '__name__', '?')}"


def audit_event_callbacks(sim) -> list[str]:
    """References of queued callbacks that a checkpoint could NOT rebuild.

    A closure defined inside a function carries ``<locals>`` in its
    qualname and has no registered identity a restored run would recreate
    — scheduling one makes the run uncheckpointable.  Returns the
    offending references (empty list = calendar is clean).
    """
    offenders = []
    for ev in sim.active_events():
        ref = callback_ref(ev.fn)
        if "<locals>" in ref or "<lambda>" in ref:
            offenders.append(ref)
    return offenders
