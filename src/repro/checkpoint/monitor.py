"""Runtime invariant monitors.

The checkpoint layer's safety net: before a snapshot is written (and, in
sanitizer mode, after every simulator event) the monitor walks the live
system and checks structural invariants that any correct interleaving
must preserve — a thread on two run queues, a CPU that accumulated more
busy time than has elapsed, or a retransmit entry past its attempt limit
each indicate a scheduler/transport bug that would otherwise surface
only as a silently wrong figure.

The monitor is read-only: it schedules nothing, draws no randomness, and
mutates no state, so enabling it leaves every trace and result
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PRIO_NORMAL
from repro.kernel.thread import ThreadState

__all__ = ["Violation", "InvariantReport", "InvariantError", "InvariantMonitor"]

#: Slack for floating-point time comparisons (µs).
_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    check: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.location}: {self.message}"


@dataclass
class InvariantReport:
    """Outcome of one full monitor pass."""

    sim_now: float
    checks_run: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """One-line all-clear, or one line per violation."""
        if self.ok:
            return f"{self.checks_run} checks clean at t={self.sim_now:.1f}us"
        lines = [
            f"{len(self.violations)} invariant violation(s) at t={self.sim_now:.1f}us:"
        ]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


class InvariantError(RuntimeError):
    """Raised when a monitor pass (or the sanitizer) finds violations."""

    def __init__(self, report: InvariantReport) -> None:
        super().__init__(report.summary())
        self.report = report


class InvariantMonitor:
    """Walks a :class:`repro.system.System` and checks its invariants.

    ``check()`` runs the full pass (checkpoint boundaries);
    ``install_sanitizer()`` hooks a cheap subset into the simulator's
    per-event callback for bug hunts.
    """

    def __init__(self, system) -> None:
        self.system = system

    # ------------------------------------------------------------------
    # Full pass
    # ------------------------------------------------------------------
    def check(self) -> InvariantReport:
        """Run every invariant check; never raises (inspect the report)."""
        report = InvariantReport(sim_now=self.system.sim.now)
        self._check_runqueues(report)
        self._check_cpu_time(report)
        self._check_heap(report)
        self._check_threads(report)
        self._check_messages(report)
        self._check_cosched(report)
        return report

    def check_or_raise(self) -> InvariantReport:
        """Run the full pass; raise :class:`InvariantError` on violations."""
        report = self.check()
        if not report.ok:
            raise InvariantError(report)
        return report

    def _fail(self, report: InvariantReport, check: str, loc: str, msg: str) -> None:
        report.violations.append(Violation(check, loc, msg))

    def _check_runqueues(self, report: InvariantReport) -> None:
        """Queued threads are READY, off-CPU, back-linked, and unique."""
        report.checks_run += 1
        seen: dict[int, str] = {}  # id(thread) -> queue name
        for node in self.system.cluster.nodes:
            sched = node.scheduler
            for q in [*sched.local_queues, sched.global_queue]:
                for entry in q._heap:
                    if not entry.live:
                        continue
                    t = entry.thread
                    loc = f"n{node.id}/{q.name}/{t.name}"
                    if id(t) in seen:
                        self._fail(
                            report, "runqueue.unique", loc,
                            f"also queued on {seen[id(t)]}",
                        )
                    seen[id(t)] = q.name
                    if t.state is not ThreadState.READY:
                        self._fail(
                            report, "runqueue.state", loc,
                            f"queued but {t.state.value}",
                        )
                    if t.cpu is not None:
                        self._fail(
                            report, "runqueue.cpu", loc,
                            f"queued while occupying cpu {t.cpu}",
                        )
                    if t.rq_entry is not entry:
                        self._fail(
                            report, "runqueue.backlink", loc,
                            "rq_entry does not point at its queue entry",
                        )

    def _check_cpu_time(self, report: InvariantReport) -> None:
        """No CPU or thread has consumed more time than has elapsed."""
        report.checks_run += 1
        now = self.system.sim.now
        for node in self.system.cluster.nodes:
            sched = node.scheduler
            for cpu in sched.cpus:
                busy = cpu.busy_us
                if cpu.thread is not None:
                    busy += now - cpu.run_began
                if busy > now + _EPS:
                    self._fail(
                        report, "cputime.cpu", f"n{node.id}/cpu{cpu.index}",
                        f"busy {busy:.3f}us exceeds elapsed {now:.3f}us",
                    )
            for t in sched.threads:
                if t.stats.cpu_time_us > now + _EPS:
                    self._fail(
                        report, "cputime.thread", f"n{node.id}/{t.name}",
                        f"cpu_time {t.stats.cpu_time_us:.3f}us exceeds "
                        f"elapsed {now:.3f}us",
                    )

    def _check_heap(self, report: InvariantReport) -> None:
        """No live event is scheduled in the past."""
        report.checks_run += 1
        sim = self.system.sim
        for ev in sim.active_events():
            if ev.time < sim.now - _EPS:
                self._fail(
                    report, "heap.monotonic", f"event seq={ev.seq}",
                    f"fires at {ev.time:.3f}us < now {sim.now:.3f}us",
                )

    def _check_threads(self, report: InvariantReport) -> None:
        """Per-thread state machine consistency."""
        report.checks_run += 1
        for node in self.system.cluster.nodes:
            sched = node.scheduler
            for t in sched.threads:
                loc = f"n{node.id}/{t.name}"
                if t.state is ThreadState.RUNNING:
                    if t.cpu is None or sched.cpus[t.cpu].thread is not t:
                        self._fail(
                            report, "thread.running", loc,
                            f"RUNNING but cpu binding is cpu={t.cpu}",
                        )
                elif t.state is ThreadState.READY:
                    if t.cpu is not None:
                        self._fail(
                            report, "thread.ready", loc,
                            f"READY but still bound to cpu {t.cpu}",
                        )
                    if t.rq_entry is None or not t.rq_entry.live:
                        self._fail(
                            report, "thread.ready", loc,
                            "READY but on no run queue",
                        )
                elif t.state is ThreadState.SLEEPING:
                    if t.wake_ev is None or not t.wake_ev.active:
                        self._fail(
                            report, "thread.sleeping", loc,
                            "SLEEPING with no live wake event",
                        )
                elif t.state is ThreadState.FINISHED:
                    if t.gen is not None:
                        self._fail(
                            report, "thread.finished", loc,
                            "FINISHED but generator not collected",
                        )

    def _check_messages(self, report: InvariantReport) -> None:
        """Message conservation: fault plane vs fabric stats, transport
        sequence-number accounting."""
        report.checks_run += 1
        injector = self.system.injector
        stats = self.system.cluster.fabric.stats
        if injector is not None and injector.net_plane is not None:
            plane = injector.net_plane
            for name, mine, theirs in [
                ("dropped", plane.drops, stats.dropped),
                ("duplicated", plane.dups, stats.duplicated),
                ("delayed", plane.delays, stats.delayed),
            ]:
                if mine != theirs:
                    self._fail(
                        report, "messages.conservation", f"fabric.{name}",
                        f"fault plane counted {mine}, fabric stats {theirs}",
                    )
        sharded = self.system.cluster.router is not None
        for job in self.system.jobs:
            rel = job.world.reliability
            if rel is None:
                continue
            loc = f"job {job.name}"
            # Keys are (src_node, seq).  An entry may legitimately be both
            # delivered and in-flight while its ack is on the wire, so no
            # disjointness check; completeness says every allocated seq is
            # accounted for.  Under sharding a shard sees only its own
            # side of each cross-shard message (sender's in-flight entry
            # OR receiver's delivered key), so the check is serial-only.
            if not sharded:
                union = set(rel._inflight) | rel._delivered
                expected = {
                    (node, i)
                    for node, count in rel._next_seq.items()
                    for i in range(count)
                }
                if union != expected:
                    missing = expected - union
                    extra = union - expected
                    self._fail(
                        report, "transport.complete", loc,
                        f"seqs neither in-flight nor delivered: {sorted(missing)[:5]}"
                        + (f"; unallocated: {sorted(extra)[:5]}" if extra else ""),
                    )
            for key, entry in rel._inflight.items():
                if entry[3] > rel.max_attempts:
                    self._fail(
                        report, "transport.attempts", f"{loc} seq={key}",
                        f"attempt {entry[3]} exceeds max {rel.max_attempts}",
                    )
                if entry[4] > rel.max_timeout_us + _EPS:
                    self._fail(
                        report, "transport.backoff", f"{loc} seq={key}",
                        f"timeout {entry[4]}us exceeds cap {rel.max_timeout_us}us",
                    )

    def _check_cosched(self, report: InvariantReport) -> None:
        """Window bookkeeping: registered, attached, live tasks carry the
        priority their node's current window dictates."""
        report.checks_run += 1
        now = self.system.sim.now
        for jc in self.system.coscheds:
            cfg = jc.config
            for node_id, nc in jc.node_coscheds.items():
                loc = f"cosched n{node_id}"
                if nc.window not in ("idle", "favored", "unfavored"):
                    self._fail(
                        report, "cosched.window", loc,
                        f"unknown window {nc.window!r}",
                    )
                    continue
                if nc.heartbeat > now + _EPS:
                    self._fail(
                        report, "cosched.heartbeat", loc,
                        f"heartbeat {nc.heartbeat:.3f}us is in the future",
                    )
                if nc.window == "idle":
                    continue
                if nc.window == "favored":
                    allowed = {cfg.favored_priority, PRIO_NORMAL}
                else:
                    allowed = {cfg.unfavored_priority}
                for task in nc.tasks:
                    if task.tid in nc.detached or task.state is ThreadState.FINISHED:
                        continue
                    if task.priority not in allowed:
                        self._fail(
                            report, "cosched.priority", f"{loc}/{task.name}",
                            f"priority {task.priority} outside {sorted(allowed)} "
                            f"during {nc.window} window",
                        )

    # ------------------------------------------------------------------
    # Sanitizer mode
    # ------------------------------------------------------------------
    def install_sanitizer(self) -> None:
        """Hook a cheap invariant subset into every simulator event.

        The hook runs after each event's callback, schedules nothing and
        touches no state, so the event stream — and hence every trace and
        result — stays bit-identical.  Violations raise immediately, at
        the first event that broke the invariant.
        """
        self.system.sim.on_event = self._sanitize

    def uninstall(self) -> None:
        """Remove the per-event hook (restore zero-overhead operation)."""
        if self.system.sim.on_event == self._sanitize:
            self.system.sim.on_event = None

    def _sanitize(self) -> None:
        sim = self.system.sim
        head = sim.peek_time()
        if head is not None and head < sim.now - _EPS:
            report = InvariantReport(sim_now=sim.now, checks_run=1)
            report.violations.append(
                Violation("heap.monotonic", "sanitizer",
                          f"head event at {head:.3f}us < now {sim.now:.3f}us")
            )
            raise InvariantError(report)
        for node in self.system.cluster.nodes:
            for cpu in node.scheduler.cpus:
                t = cpu.thread
                if t is not None and t.state is not ThreadState.RUNNING:
                    report = InvariantReport(sim_now=sim.now, checks_run=2)
                    report.violations.append(
                        Violation(
                            "thread.running", f"n{node.id}/cpu{cpu.index}",
                            f"occupant {t.name} is {t.state.value}",
                        )
                    )
                    raise InvariantError(report)
