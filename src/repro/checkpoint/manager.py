"""Policy-driven checkpoint writing and replay-based restore.

A checkpoint file is a pickled dict::

    {"version": 1, "builder": <registry name>, "args": {...},
     "sim_now": float, "events_processed": int,
     "fingerprint": sha256-hex, "state": <canonical state dict>}

No wall-clock timestamps or machine identifiers go into the payload —
two checkpoints of the same run at the same position are byte-comparable.

Restore does **not** unpickle live simulation objects (suspended
generators can't be pickled): it rebuilds the run from the registered
builder and replays the deterministic event calendar up to the saved
position, then verifies that the replayed state's fingerprint matches
the stored one bit-for-bit.  A mismatch — a code change, a non-replayed
source of randomness, a wall-clock dependency — raises
:class:`RestoreMismatch` naming the first diverging state path.

Writes are atomic (temp file in the target directory + ``os.replace``)
and pruned to ``CheckpointPolicy.keep_last``, so a crash mid-write never
leaves a truncated checkpoint and disk use is bounded.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.checkpoint.monitor import InvariantError, InvariantMonitor
from repro.checkpoint.registry import build_driver
from repro.checkpoint.snapshot import capture_state, state_fingerprint
from repro.config import CheckpointPolicy

__all__ = ["CheckpointError", "RestoreMismatch", "CheckpointManager", "list_checkpoints"]

FORMAT_VERSION = 1

_CKPT_NAME = re.compile(r"^ckpt-e(\d{12})\.pkl$")


class CheckpointError(RuntimeError):
    """Base class for checkpoint read/write failures."""


class RestoreMismatch(CheckpointError):
    """Replay reached the saved position but the state differs."""


def _first_divergence(saved, replayed, path: str = "$") -> str:
    """Human-readable path of the first difference between two states."""
    if type(saved) is not type(replayed):
        return f"{path}: type {type(saved).__name__} != {type(replayed).__name__}"
    if isinstance(saved, dict):
        for k in saved:
            if k not in replayed:
                return f"{path}.{k}: missing after replay"
            if saved[k] != replayed[k]:
                return _first_divergence(saved[k], replayed[k], f"{path}.{k}")
        for k in replayed:
            if k not in saved:
                return f"{path}.{k}: appeared after replay"
        return f"{path}: dicts compare unequal but no key differs"
    if isinstance(saved, list):
        if len(saved) != len(replayed):
            return f"{path}: length {len(saved)} != {len(replayed)}"
        for i, (a, b) in enumerate(zip(saved, replayed)):
            if a != b:
                return _first_divergence(a, b, f"{path}[{i}]")
        return f"{path}: lists compare unequal but no element differs"
    return f"{path}: {saved!r} != {replayed!r}"


def list_checkpoints(directory) -> list[Path]:
    """Checkpoint files in *directory*, oldest first (by event position)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for p in directory.iterdir():
        m = _CKPT_NAME.match(p.name)
        if m:
            found.append((int(m.group(1)), p))
    return [p for _, p in sorted(found)]


class CheckpointManager:
    """Writes checkpoints of one run per a :class:`CheckpointPolicy`.

    Parameters
    ----------
    driver:
        The run driver (must expose ``.system``); what the registered
        builder returns.
    builder, args:
        Registry name and picklable kwargs that rebuild *driver* — the
        replay recipe stored in every checkpoint file.
    policy:
        Cadence, retention, verification and monitoring knobs.
    out_dir:
        Directory for checkpoint files (created if needed).
    """

    def __init__(
        self,
        driver,
        builder: str,
        args: dict,
        policy: CheckpointPolicy,
        out_dir,
    ) -> None:
        self.driver = driver
        self.builder = builder
        self.args = dict(args)
        self.policy = policy
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.written: list[Path] = []
        self.monitor: Optional[InvariantMonitor] = (
            InvariantMonitor(driver.system) if policy.check_invariants else None
        )
        if policy.sanitize:
            if self.monitor is None:
                self.monitor = InvariantMonitor(driver.system)
            self.monitor.install_sanitizer()
        self._last_sim = driver.system.sim.now
        self._last_wall = time.monotonic()

    @property
    def system(self):
        return self.driver.system

    # ------------------------------------------------------------------
    # Cadence
    # ------------------------------------------------------------------
    def due(self) -> bool:
        """Is a checkpoint due under the policy's cadence?"""
        if not self.policy.enabled:
            return False
        p = self.policy
        if (
            p.interval_sim_us is not None
            and self.system.sim.now - self._last_sim >= p.interval_sim_us
        ):
            return True
        if (
            p.interval_wall_s is not None
            and time.monotonic() - self._last_wall >= p.interval_wall_s
        ):
            return True
        return False

    def tick(self) -> Optional[Path]:
        """Write a checkpoint if one is due; the driver's advance loop
        calls this between ``run_until`` chunks."""
        if self.due():
            return self.write()
        return None

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def write(self) -> Path:
        """Capture, fingerprint, and atomically write one checkpoint.

        Runs the invariant monitor first when the policy asks for it — a
        checkpoint of a corrupted state would replay its corruption.
        """
        sim = self.system.sim
        if self.monitor is not None and self.policy.check_invariants:
            report = self.monitor.check()
            if not report.ok:
                raise InvariantError(report)
        state = capture_state(self.system)
        payload = {
            "version": FORMAT_VERSION,
            "builder": self.builder,
            "args": self.args,
            "sim_now": sim.now,
            "events_processed": sim.events_processed,
            "fingerprint": state_fingerprint(state),
            "state": state,
        }
        final = self.out_dir / f"ckpt-e{sim.events_processed:012d}.pkl"
        fd, tmp = tempfile.mkstemp(
            dir=self.out_dir, prefix=".ckpt-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if final not in self.written:
            self.written.append(final)
        self._last_sim = sim.now
        self._last_wall = time.monotonic()
        self._prune()
        return final

    def _prune(self) -> None:
        keep = self.policy.keep_last
        while len(self.written) > keep:
            victim = self.written.pop(0)
            try:
                victim.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    @classmethod
    def restore(
        cls,
        path,
        policy: Optional[CheckpointPolicy] = None,
        out_dir=None,
    ) -> "CheckpointManager":
        """Rebuild the run from *path* and replay to the saved position.

        Returns a fresh manager wrapping the restored driver, ready to
        continue checkpointing into *out_dir* (defaults to the file's own
        directory) under *policy* (defaults to a disabled policy when not
        given — callers resuming a run normally pass their own).
        """
        path = Path(path)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if payload.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: format version {payload.get('version')!r}, "
                f"expected {FORMAT_VERSION}"
            )
        driver = build_driver(payload["builder"], payload["args"])
        sim = driver.system.sim
        sim.run_until(payload["sim_now"])
        if sim.events_processed != payload["events_processed"]:
            raise RestoreMismatch(
                f"{path}: replay processed {sim.events_processed} events, "
                f"checkpoint recorded {payload['events_processed']} — the "
                f"builder no longer reproduces the checkpointed run"
            )
        if policy is None:
            policy = CheckpointPolicy()
        manager = cls(
            driver,
            payload["builder"],
            payload["args"],
            policy,
            out_dir if out_dir is not None else path.parent,
        )
        if policy.verify_on_restore:
            state = capture_state(driver.system)
            if state_fingerprint(state) != payload["fingerprint"]:
                where = _first_divergence(payload["state"], state)
                raise RestoreMismatch(
                    f"{path}: replayed state diverges from checkpoint at "
                    f"{where}"
                )
        return manager

    @classmethod
    def resume_latest(
        cls,
        directory,
        policy: Optional[CheckpointPolicy] = None,
        out_dir=None,
    ) -> Optional["CheckpointManager"]:
        """Restore from the newest checkpoint in *directory*, or None when
        the directory holds no checkpoint (caller starts fresh)."""
        found = list_checkpoints(directory)
        if not found:
            return None
        return cls.restore(found[-1], policy=policy, out_dir=out_dir)
