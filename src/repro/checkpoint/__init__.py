"""Deterministic checkpoint/restore, invariant monitors, crash-safe harness.

Generator-based threads cannot be pickled, so checkpoints are
*replay-based*: a checkpoint stores the registered builder that creates
the run, the builder's (picklable) arguments, the simulation position,
and a fingerprint of the complete captured state; restore rebuilds the
run from the builder and replays the event calendar up to the saved
position, then verifies the fingerprint bit-for-bit.  Event replay is
exact because the simulator is deterministic and chunked ``run_until``
calls process the same event sequence as a single one.

Public surface:

* :mod:`repro.checkpoint.registry` — builder registration so callbacks
  and run constructors can be named in a checkpoint file.
* :mod:`repro.checkpoint.snapshot` — :class:`StateDescriber` (identity
  normalisation), :func:`capture_state`, :func:`state_fingerprint`.
* :mod:`repro.checkpoint.manager` — :class:`CheckpointManager`
  (policy-driven atomic writes, keep-last-K, restore/resume).
* :mod:`repro.checkpoint.monitor` — :class:`InvariantMonitor` and the
  per-event sanitizer.
* :mod:`repro.checkpoint.harness` — :class:`SweepJournal` and
  :func:`trial_watchdog` for crash-safe resumable experiment sweeps.
"""

from repro.checkpoint.harness import SweepJournal, TrialFailure, TrialTimeout, trial_watchdog
from repro.checkpoint.manager import (
    CheckpointError,
    CheckpointManager,
    RestoreMismatch,
    list_checkpoints,
)
from repro.checkpoint.monitor import InvariantError, InvariantMonitor, InvariantReport, Violation
from repro.checkpoint.registry import (
    audit_event_callbacks,
    build_driver,
    callback_ref,
    get_builder,
    register_builder,
)
from repro.checkpoint.snapshot import StateDescriber, capture_state, state_fingerprint

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "InvariantError",
    "InvariantMonitor",
    "InvariantReport",
    "RestoreMismatch",
    "StateDescriber",
    "SweepJournal",
    "TrialFailure",
    "TrialTimeout",
    "Violation",
    "audit_event_callbacks",
    "build_driver",
    "callback_ref",
    "capture_state",
    "get_builder",
    "list_checkpoints",
    "register_builder",
    "state_fingerprint",
    "trial_watchdog",
]
