"""State capture: identity normalisation, full snapshots, fingerprints.

Two rebuilds of the same run differ in every ``id()`` and in the
process-global thread/run-queue counters, while agreeing on everything
that matters.  :class:`StateDescriber` is the normalisation layer every
``snapshot_state`` method goes through: threads become per-node
spawn-order keys, events become ``(time, priority, seq, callback-ref)``
tuples, arbitrary values are recursively reduced to JSON-able structures
with memory addresses scrubbed.  The resulting state dict is canonical —
two runs that processed the same events serialise byte-identically, which
is what makes a SHA-256 fingerprint a meaningful equality check.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import re
from typing import Any, Optional

import numpy as np

from repro.checkpoint.registry import callback_ref
from repro.kernel.thread import Thread
from repro.sim.core import Event

__all__ = ["StateDescriber", "capture_state", "state_fingerprint"]

_ADDR = re.compile(r"0x[0-9a-fA-F]+")

#: Recursion guard for :meth:`StateDescriber.value`; deep enough for any
#: real payload, shallow enough to terminate on accidental cycles.
_MAX_DEPTH = 12


class StateDescriber:
    """Maps live objects to rebuild-stable descriptions.

    Thread keys are ``n<node>.t<idx>:<name>`` where ``idx`` is the
    thread's position in its node scheduler's spawn list — spawn order is
    deterministic and the list is append-only, so the key survives a
    rebuild even though ``tid`` (a process-global counter) does not.
    """

    def __init__(self, cluster) -> None:
        self._by_id: dict[int, str] = {}
        self._by_tid: dict[int, str] = {}
        for node in cluster.nodes:
            for idx, t in enumerate(node.scheduler.threads):
                key = f"n{node.id}.t{idx}:{t.name}"
                self._by_id[id(t)] = key
                self._by_tid[t.tid] = key

    def thread(self, t: Optional[Thread]) -> Optional[str]:
        """Stable key for *t* (None passes through; unknown threads are
        tagged rather than silently misdescribed)."""
        if t is None:
            return None
        return self._by_id.get(id(t), f"?unregistered:{getattr(t, 'name', '?')}")

    def tid(self, tid: Optional[int]) -> Optional[str]:
        """Stable key for a raw tid (None/unknown → None: e.g. the tid of
        a killed-and-collected thread lingering in a ``detached`` set)."""
        if tid is None:
            return None
        return self._by_tid.get(tid)

    def callback(self, fn) -> str:
        """Identity-free reference for a scheduled callback."""
        return callback_ref(fn)

    def event(self, ev: Optional[Event]) -> Optional[dict]:
        """Describe a queued event; None (or a cancelled event) → None."""
        if ev is None or not ev.active:
            return None
        return {
            "t": ev.time,
            "p": int(ev.priority),
            "seq": ev.seq,
            "fn": self.callback(ev.fn),
            "args": [self.value(a) for a in ev.args],
        }

    def value(self, v: Any, _depth: int = 0) -> Any:
        """Reduce an arbitrary payload value to JSON-able form."""
        if v is None or isinstance(v, (bool, int, float, str)):
            return v
        if _depth >= _MAX_DEPTH:
            return _scrub(repr(v))
        if isinstance(v, Thread):
            return self.thread(v)
        if isinstance(v, Event):
            return self.event(v)
        if isinstance(v, enum.Enum):
            return f"{type(v).__name__}.{v.name}"
        if isinstance(v, np.generic):
            return v.item()
        if isinstance(v, np.ndarray):
            return {"__ndarray__": v.tolist(), "dtype": str(v.dtype)}
        if isinstance(v, (list, tuple)):
            return [self.value(x, _depth + 1) for x in v]
        if isinstance(v, (set, frozenset)):
            return sorted(_scrub(repr(self.value(x, _depth + 1))) for x in v)
        if isinstance(v, dict):
            return [
                [self.value(k, _depth + 1), self.value(x, _depth + 1)]
                for k, x in sorted(v.items(), key=lambda kv: repr(kv[0]))
            ]
        if dataclasses.is_dataclass(v) and not isinstance(v, type):
            return {
                "__type__": type(v).__name__,
                **{
                    f.name: self.value(getattr(v, f.name), _depth + 1)
                    for f in dataclasses.fields(v)
                },
            }
        return _scrub(repr(v))


def _scrub(text: str) -> str:
    """Replace memory addresses in a repr with a stable placeholder."""
    return _ADDR.sub("0x?", text)


def capture_state(system) -> dict:
    """Canonical full-state snapshot of *system* (a :class:`System`)."""
    desc = StateDescriber(system.cluster)
    return system.snapshot_state(desc)


def state_fingerprint(state: dict) -> str:
    """SHA-256 over the canonical JSON serialisation of *state*.

    ``json.dumps`` emits shortest-round-trip float reprs, so doubles
    survive exactly; ``sort_keys`` fixes dict order; the default hook
    scrubs anything that slipped through undescribed.
    """
    blob = json.dumps(state, sort_keys=True, default=lambda o: _scrub(repr(o)))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
