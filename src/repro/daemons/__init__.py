"""System interference: daemons, cron jobs, interrupt handlers, I/O service.

The paper's central antagonist is the ecology of routine system activity on
a full-featured OS: file-system flushers (``syncd``), the GPFS daemon
(``mmfsd``), membership/heartbeat services (``hatsd``, ``hats_nim``),
switch IP management (``mld``), batch-system and monitoring daemons
(``LoadL_startd``, ``hostmibd``, ``inetd``), a 15-minute administrative
cron health check whose Perl scripts consumed >600 ms of one CPU, and
device interrupt handlers (``caddpin``, ``phxentdd``).  Together they eat
0.2 %–1.1 % of each CPU on a dedicated 16-way SP node — harmless serially,
disastrous for synchronising collectives at scale.

* :mod:`repro.daemons.engine` turns :class:`~repro.config.DaemonSpec`\\ s
  into scheduled threads on a cluster;
* :mod:`repro.daemons.catalog` provides the calibrated AIX ecology;
* :mod:`repro.daemons.io` models the I/O service dependency that made
  naive co-scheduling *hurt* ALE3D (paper §5.3).
"""

from repro.daemons.engine import DaemonHandle, install_noise
from repro.daemons.catalog import (
    cron_health_check,
    interrupt_handlers,
    standard_noise,
)
from repro.daemons.io import IoService

__all__ = [
    "install_noise",
    "DaemonHandle",
    "standard_noise",
    "cron_health_check",
    "interrupt_handlers",
    "IoService",
]
