"""The application-visible I/O service dependency.

Many applications "depend on system daemon activity (GPFS, syncd, NFS
daemons, etc.) to complete the I/O" (paper §4).  This module models that
dependency: each node hosts an :class:`IoService` worker thread at the I/O
daemon priority band; an application task's I/O request only completes
after the worker has obtained CPU and performed the transfer's CPU work.

Completion waiting comes in two modes:

* ``"spin"`` (default, faithful to IBM PE's poll-mode waiting): the
  requesting task keeps its CPU while waiting.  With every task of a node
  spin-waiting at a co-scheduled favored priority *better* than the I/O
  worker's, the worker never runs inside the favored window — this is the
  paper's ALE3D fiasco ("limiting I/O daemons to just 10 % of a 5 second
  window starved them").  The fix was placing the favored priority *just
  above* (numerically just below) the daemons' — 41 against mmfsd at 40 —
  so I/O preempts the application whenever it has work.
* ``"block"`` — the task releases its CPU; starvation cannot occur on an
  otherwise-idle node, which is why the blocking variant alone would miss
  the paper's finding.
"""

from __future__ import annotations

from typing import Literal, Optional

from repro.kernel.thread import Block, Compute, SpinWait, Thread, ThreadState
from repro.machine.node import Node

__all__ = ["IoService"]


class _Request:
    __slots__ = ("work_us", "requester", "mode", "done", "waiter")

    def __init__(self, work_us: float, requester: Thread, mode: str) -> None:
        self.work_us = work_us
        self.requester = requester
        self.mode = mode
        self.done = False
        self.waiter: Optional[Thread] = None


class IoService:
    """Per-node I/O worker serving application read/write requests FIFO.

    The worker's priority is the knob the paper turned: at 40 it outranks
    normal user processes (60+), is starved by a favored priority of 30,
    and preempts a favored priority of 41.
    """

    def __init__(
        self,
        node: Node,
        priority: int = 40,
        per_byte_us: float = 0.002,
        base_cost_us: float = 300.0,
        affinity_cpu: int = 0,
    ) -> None:
        self.node = node
        self.per_byte_us = per_byte_us
        self.base_cost_us = base_cost_us
        self._queue: list[_Request] = []
        self.completed = 0
        self._worker = node.scheduler.spawn(
            self._worker_body(),
            name="io_worker",
            priority=priority,
            affinity_cpu=affinity_cpu,
            category="io",
            use_global_queue=True,
            allow_steal=True,
        )

    @property
    def worker(self) -> Thread:
        return self._worker

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _worker_body(self):
        while True:
            while not self._queue:
                yield Block()
            req = self._queue.pop(0)
            yield Compute(req.work_us)
            self.completed += 1
            req.done = True
            if req.mode == "block":
                self.node.scheduler.wake(req.requester, None)
            elif req.waiter is not None:
                self.node.scheduler.spin_deliver(req.waiter, True)

    def _submit(self, nbytes: int, requester: Thread, mode: str) -> _Request:
        req = _Request(self.base_cost_us + nbytes * self.per_byte_us, requester, mode)
        self._queue.append(req)
        if self._worker.state is ThreadState.BLOCKED:
            self.node.scheduler.wake(self._worker, None)
        return req

    def request(
        self,
        nbytes: int,
        requester: Thread,
        mode: Literal["spin", "block"] = "spin",
    ):
        """Generator helper performing one blocking I/O of *nbytes*.

        ``yield from io.request(n, thread)`` — returns when the worker has
        executed the transfer's CPU work.  ``mode`` selects how the caller
        waits (see module docstring).
        """
        req = self._submit(nbytes, requester, mode)
        if mode == "block":
            yield Block()
        else:
            def register(thread: Thread):
                if req.done:
                    return True
                req.waiter = thread
                return None

            yield SpinWait(register)
