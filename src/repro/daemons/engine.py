"""Turn :class:`~repro.config.DaemonSpec` descriptions into live threads.

Each per-node daemon becomes one thread; ``per_cpu`` specs (interrupt
handlers) become one thread per CPU.  A daemon's body is a simple
activation loop::

    sleep-until next activation      # tick-quantised → "big tick" batching
    compute(service time)            # contends for a CPU like any work
    schedule next activation

Activations that slip past their period (because the co-scheduler denied
the daemon CPU time) are executed back-to-back when the daemon finally
runs — the "pile up work for seconds, then release it simultaneously"
behaviour the paper's priority-swapping scheme deliberately creates
(§3.1.3).

Under the prototype kernel's global-queue policy (§3.1.2), daemon service
times are inflated by the configured locality penalty — they run anywhere,
slightly slower, maximally overlapped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DaemonSpec, NoiseConfig
from repro.kernel.thread import Compute, SleepUntil, Thread
from repro.machine.cluster import Cluster

__all__ = ["DaemonHandle", "install_noise"]


@dataclass
class DaemonHandle:
    """One installed daemon instance (for introspection and tests)."""

    spec: DaemonSpec
    node: int
    cpu: int
    thread: Thread
    activations: list  # mutable: [count]


def _daemon_body(
    spec: DaemonSpec,
    first_activation_global: float,
    penalty: float,
    rng: np.random.Generator,
    counter: list,
    horizon_us: float | None,
    batch: int = 1,
):
    """Activation loop generator for one daemon instance.

    ``batch`` is the mean-field fast path (:mod:`repro.sim.meanfield`):
    *batch* consecutive activations fold into one wakeup computing the
    **sum** of their sampled service times, anchored at the batch's
    *middle* activation instant so the delivered CPU demand has no
    first-moment timing bias (pure front-loading measurably compounds:
    early clumps inflate the very window being measured).  The draws
    (service → optional pagefault → jitter) keep the exact body's
    per-activation stream order, so activation instants, service samples,
    and the total counter are unchanged for any ``batch``; only the
    interleaving with rank work coarsens — the accuracy cost E14
    measures.  ``batch=1`` takes the historical loop verbatim and is
    bit-identical to the exact engine.
    """
    next_t = first_activation_global
    if batch <= 1:
        while horizon_us is None or next_t < horizon_us:
            yield SleepUntil(next_t)
            service = spec.service.sample(rng)
            if spec.pagefault_prob > 0.0 and rng.random() < spec.pagefault_prob:
                service += spec.pagefault_cost_us
            if penalty > 0.0:
                service *= 1.0 + penalty
            counter[0] += 1
            yield Compute(service)
            if spec.jitter > 0.0:
                step = spec.period_us * (1.0 + spec.jitter * float(rng.uniform(-1.0, 1.0)))
            else:
                step = spec.period_us
            next_t += step
        return
    while horizon_us is None or next_t < horizon_us:
        times = []
        total = 0.0
        t = next_t
        while len(times) < batch and (horizon_us is None or t < horizon_us):
            times.append(t)
            service = spec.service.sample(rng)
            if spec.pagefault_prob > 0.0 and rng.random() < spec.pagefault_prob:
                service += spec.pagefault_cost_us
            if penalty > 0.0:
                service *= 1.0 + penalty
            total += service
            if spec.jitter > 0.0:
                step = spec.period_us * (1.0 + spec.jitter * float(rng.uniform(-1.0, 1.0)))
            else:
                step = spec.period_us
            t += step
        yield SleepUntil(times[len(times) // 2])
        counter[0] += len(times)
        yield Compute(total)
        next_t = t


def install_noise(
    cluster: Cluster,
    noise: NoiseConfig | None = None,
    horizon_us: float | None = None,
    meanfield=None,
) -> list[DaemonHandle]:
    """Spawn every daemon in *noise* (default: the cluster config's) on
    every node of *cluster* — every node the cluster *owns*, under
    parallel DES.

    ``horizon_us`` optionally stops scheduling activations past a time
    bound, letting ``Simulator.run()`` drain naturally in tests.

    ``meanfield`` (a :class:`repro.sim.meanfield.MeanFieldConfig`) batches
    activations on non-exempt nodes; ``None`` and ``batch=1`` are exact.
    Skipping a node consumes nothing from any shared stream: the aligned
    phase is one draw per *spec*, and per-instance draws come from the
    instance's own ``daemon.<name>.n<node>.c<cpu>`` stream, which
    :class:`~repro.rng.StreamFactory` derives from the name alone.

    Phase resolution (first activation):

    * ``spec.phase_us`` — exactly as given, in **global** time (an
      experiment device for pinning a hit inside a measurement window);
    * ``phase == "aligned"`` — one draw per daemon, same **local** time
      on every node (synchronized crontabs; inter-node overlap then
      depends on how well node clocks agree);
    * ``phase == "random"`` — independent draw per node (and per CPU for
      per-CPU specs), local time.
    """
    if noise is None:
        noise = cluster.config.noise
    penalty = (
        cluster.config.kernel.global_queue_penalty
        if cluster.config.kernel.daemons_global_queue
        else 0.0
    )
    handles: list[DaemonHandle] = []
    for d_index, spec in enumerate(noise.daemons):
        aligned_rng = cluster.rngf.stream(f"daemon.{spec.name}.phase")
        aligned_phase = float(aligned_rng.uniform(0.0, spec.period_us))
        for node in cluster.nodes:
            if not cluster.owns_node(node.id):
                continue
            batch = 1 if meanfield is None else meanfield.batch_for(node.id, spec)
            cpu_list = range(node.n_cpus) if spec.per_cpu else (d_index % node.n_cpus,)
            for cpu in cpu_list:
                rng = cluster.rngf.stream(f"daemon.{spec.name}.n{node.id}.c{cpu}")
                if spec.phase_us is not None:
                    first_global = max(0.0, spec.phase_us)
                else:
                    if spec.phase == "aligned":
                        local_phase = aligned_phase
                    else:
                        local_phase = float(rng.uniform(0.0, spec.period_us))
                    # The daemon schedules itself in node-local time.
                    first_global = max(0.0, node.global_time(local_phase))
                counter = [0]
                body = _daemon_body(
                    spec,
                    first_global,
                    0.0 if spec.per_cpu else penalty,
                    rng,
                    counter,
                    horizon_us,
                    batch,
                )
                thread = node.scheduler.spawn(
                    body,
                    name=spec.name if not spec.per_cpu else f"{spec.name}.c{cpu}",
                    priority=spec.priority,
                    affinity_cpu=cpu,
                    category="interrupt" if spec.hardware else "daemon",
                    use_global_queue=not spec.per_cpu,
                    allow_steal=not spec.per_cpu,
                    tick_quantized=not spec.hardware,
                    hardware=spec.hardware,
                )
                handles.append(DaemonHandle(spec, node.id, cpu, thread, counter))
    return handles
