"""The calibrated AIX daemon ecology.

Every entry is a daemon the paper names, with period / service / priority
chosen so the aggregate lands inside the paper's measured envelope for
dedicated 16-way SP nodes: 0.2 %–1.1 % of each CPU consumed by system and
daemon activity [Jones03], with system daemons dispatching at priority 56
(better than user processes at 60+), the administrative cron health check
consuming >600 ms of a CPU every 15 minutes, and daemon executions often
lengthened by page faults.

Service-time distributions are log-normal: AIX trace observations are
right-skewed — usually-quick activations with occasional multi-millisecond
excursions, which is exactly what produces the long tail of Figure 4.
"""

from __future__ import annotations

from repro.config import DaemonSpec, NoiseConfig, PRIO_DAEMON_SYSTEM
from repro.rng import Constant, LogNormal
from repro.units import ms, s, us

__all__ = [
    "standard_daemons",
    "cron_health_check",
    "interrupt_handlers",
    "standard_noise",
    "scale_noise",
]


def standard_daemons() -> tuple[DaemonSpec, ...]:
    """The per-node daemon set the paper's traces attributed outliers to."""
    return (
        # File-system buffer flusher: infrequent but heavy, page-fault prone.
        DaemonSpec(
            name="syncd",
            period_us=s(60),
            service=LogNormal(ms(20.0), sigma=0.8),
            priority=PRIO_DAEMON_SYSTEM,
            pagefault_prob=0.3,
            pagefault_cost_us=ms(1.0),
        ),
        # GPFS daemon: frequent, short; the application's I/O depends on it.
        DaemonSpec(
            name="mmfsd",
            period_us=s(1),
            service=LogNormal(ms(4.0), sigma=0.6),
            priority=40,
            io_critical=True,
        ),
        # Topology services heartbeat.
        DaemonSpec(
            name="hatsd",
            period_us=ms(500),
            service=LogNormal(ms(2.1), sigma=0.5),
            priority=PRIO_DAEMON_SYSTEM,
        ),
        # Network interface module of topology services.
        DaemonSpec(
            name="hats_nim",
            period_us=ms(200),
            service=LogNormal(ms(1.2), sigma=0.5),
            priority=PRIO_DAEMON_SYSTEM,
        ),
        # Switch fabric IP traffic management.
        DaemonSpec(
            name="mld",
            period_us=ms(100),
            service=LogNormal(us(750), sigma=0.4),
            priority=PRIO_DAEMON_SYSTEM,
        ),
        # Internet super-server: rare, moderate.
        DaemonSpec(
            name="inetd",
            period_us=s(10),
            service=LogNormal(ms(8.0), sigma=0.7),
            priority=PRIO_DAEMON_SYSTEM,
        ),
        # LoadLeveler node agent: periodic machine-state sampling.
        DaemonSpec(
            name="LoadL_startd",
            period_us=s(5),
            service=LogNormal(ms(15.0), sigma=0.7),
            priority=PRIO_DAEMON_SYSTEM,
            pagefault_prob=0.2,
            pagefault_cost_us=us(600),
        ),
        # SNMP host MIB daemon: rare monitoring sweep.
        DaemonSpec(
            name="hostmibd",
            period_us=s(30),
            service=LogNormal(ms(8.0), sigma=0.7),
            priority=PRIO_DAEMON_SYSTEM,
            pagefault_prob=0.2,
            pagefault_cost_us=us(800),
        ),
    )


def cron_health_check(
    period_us: float = s(900),
    service_us: float = ms(620),
    phase_us: float | None = None,
) -> DaemonSpec:
    """The 15-minute administrative health-check cron job.

    The paper's single worst outlier: "an administrative cron job ran during
    the slowest Allreduce … on multiple nodes, one CPU had over 600 msec of
    wall clock time consumed by these components".  Its Perl scripts and
    utilities run at a priority better than user processes and are fired
    from synchronized crontabs, hence ``phase="aligned"`` — the hit lands
    near-simultaneously cluster-wide (offset only by node clock skew).

    ``phase_us`` pins the first activation for experiments whose window is
    shorter than the 15-minute period.
    """
    return DaemonSpec(
        name="cron_health",
        period_us=period_us,
        service=LogNormal(service_us, sigma=0.25),
        priority=50,
        phase="aligned",
        phase_us=phase_us,
        jitter=0.0,
        pagefault_prob=0.5,
        pagefault_cost_us=ms(2.0),
    )


def interrupt_handlers() -> tuple[DaemonSpec, ...]:
    """Device interrupt handlers named in the paper's traces.

    ``caddpin`` (disk adapter) and ``phxentdd`` (ethernet) run in interrupt
    context: per-CPU, immediate preemption, undeferrable by any priority
    scheme — the residual interference floor that survives even the
    prototype kernel + co-scheduler.
    """
    return (
        DaemonSpec(
            name="caddpin",
            period_us=ms(60),
            service=Constant(us(30)),
            priority=2,
            per_cpu=True,
            hardware=True,
            deferrable=False,
            jitter=0.5,
        ),
        DaemonSpec(
            name="phxentdd",
            period_us=ms(100),
            service=Constant(us(38)),
            priority=2,
            per_cpu=True,
            hardware=True,
            deferrable=False,
            jitter=0.5,
        ),
    )


def scale_noise(noise: NoiseConfig, time_factor: float) -> NoiseConfig:
    """Compress the noise ecology's timescale by *time_factor*.

    Divides every daemon period by the factor while leaving service times
    unchanged, raising the noise *rate* relative to collective latency.
    Discrete-event runs are limited to seconds of simulated time, where
    minute-scale daemon periods would almost never fire; compressing time
    preserves the mechanism under study (the ratio of interference arrivals
    to collective operations) at tractable cost.  Paper-scale rates belong
    to the vectorised model (:mod:`repro.analytic`), which runs the real
    periods.  Experiments that use compression state the factor in their
    output.
    """
    if time_factor <= 0:
        raise ValueError("time_factor must be positive")
    from dataclasses import replace as _replace

    scaled = tuple(
        _replace(d, period_us=d.period_us / time_factor) for d in noise.daemons
    )
    return _replace(noise, daemons=scaled)


def standard_noise(
    include_cron: bool = True,
    cron_phase_us: float | None = None,
    include_interrupts: bool = True,
) -> NoiseConfig:
    """The full calibrated ecology (the default for experiments).

    The aggregate CPU fraction sits inside the paper's 0.2 %–1.1 % window
    for a 16-way node (asserted by a regression test).
    """
    daemons = list(standard_daemons())
    if include_cron:
        daemons.append(cron_health_check(phase_us=cron_phase_us))
    if include_interrupts:
        daemons.extend(interrupt_handlers())
    return NoiseConfig(daemons=tuple(daemons))
