"""Operational CLI for the result store: ``fsck``, ``gc``, ``stats``, ``chaos``.

Reachable two ways — standalone (``python -m repro.store ...``) and as a
subcommand family of the experiments CLI (``... -m repro.experiments.cli
store ...``), so the store is operable from the same entry point that
fills it.

* ``fsck [--repair] [--journal DIR]...`` — verify every byte; with
  ``--repair``, quarantine/restore/complete until the store is clean.
  Exit 0 iff the store is clean (or every finding was resolved).
* ``gc (--live-from DIR)... [--dry-run]`` / ``gc --resume`` — sweep
  records not reachable from the given journals; crash-safe via the mark
  journal, ``--resume`` just completes an interrupted sweep.
* ``stats`` — durable store facts as ``key=value`` lines.
* ``chaos --chaos-seed N`` — deterministically damage the store
  (torn/bit-flip/dup per fingerprint, plus one crash-mid-GC) and print a
  manifest; the CI smoke job then proves fsck detects and repairs it all.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.store.store import ResultStore, StoreError

__all__ = ["main", "build_parser"]


def _journal_dir(path) -> Path:
    """Accept either a journal directory or a results root containing one."""
    path = Path(path)
    nested = path / "journal"
    return nested if nested.is_dir() else path


def _open_store(args) -> ResultStore:
    root = Path(args.store)
    if not root.is_dir():
        raise SystemExit(f"error: store directory {root} does not exist")
    return ResultStore(root)


def build_parser() -> argparse.ArgumentParser:
    """The ``fsck | gc | stats | chaos`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Inspect, verify, repair, and garbage-collect a result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_arg(p):
        p.add_argument(
            "--store", required=True, metavar="DIR", help="store root directory"
        )

    p_fsck = sub.add_parser("fsck", help="verify every record, index entry, and GC state")
    add_store_arg(p_fsck)
    p_fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt records (restoring from journals where "
        "possible), drop bad index entries, complete interrupted GC",
    )
    p_fsck.add_argument(
        "--journal",
        action="append",
        default=[],
        metavar="DIR",
        help="journal directory (or results root) to restore records from; repeatable",
    )

    p_gc = sub.add_parser("gc", help="sweep records not referenced by the given journals")
    add_store_arg(p_gc)
    p_gc.add_argument(
        "--live-from",
        action="append",
        default=[],
        metavar="DIR",
        help="journal directory (or results root) whose trials are live; repeatable",
    )
    p_gc.add_argument(
        "--resume",
        action="store_true",
        help="only complete a previously interrupted sweep, mark nothing new dead",
    )
    p_gc.add_argument(
        "--dry-run", action="store_true", help="report what would be swept, delete nothing"
    )

    p_stats = sub.add_parser("stats", help="print store facts as key=value lines")
    add_store_arg(p_stats)

    p_chaos = sub.add_parser(
        "chaos", help="deterministically corrupt the store for fsck/repair drills"
    )
    add_store_arg(p_chaos)
    p_chaos.add_argument(
        "--chaos-seed", type=int, required=True, help="seed for the per-fingerprint fault plans"
    )
    return parser


def _cmd_fsck(args) -> int:
    store = _open_store(args)
    journal_dirs = [_journal_dir(d) for d in args.journal]
    report = store.fsck(repair=args.repair, journal_dirs=journal_dirs)
    for f in report.findings:
        where = f.key or (f.fingerprint[:12] + "…" if f.fingerprint else "")
        print(f"fsck: {f.kind}: {f.path}" + (f" [{where}]" if where else "") + f" -> {f.action}")
    print(report.summary())
    if report.clean:
        return 0
    return 0 if (args.repair and report.resolved) else 1


def _live_fingerprints(store: ResultStore, journal_dirs: Sequence[Path]) -> set:
    """Fingerprints of every trial journaled in *journal_dirs*.

    Journal files and store index entries share sanitized-key names, so
    the index bridges journal keys to fingerprints with no spec in hand.
    """
    index_by_name = {}
    for path, payload in store._index_entries():
        if payload is not None:
            index_by_name[path.name] = payload["fingerprint"]
    live = set()
    for journal_dir in journal_dirs:
        for entry in sorted(Path(journal_dir).glob("*.json")):
            fp = index_by_name.get(entry.name)
            if fp is not None:
                live.add(fp)
    return live


def _cmd_gc(args) -> int:
    store = _open_store(args)
    if args.resume:
        if args.live_from or args.dry_run:
            raise SystemExit("error: --resume takes no --live-from/--dry-run")
        removed = store.finish_gc()
        print(f"gc: resumed interrupted sweep, removed {removed} record(s)"
              if removed else "gc: no interrupted sweep to resume")
        return 0
    if not args.live_from:
        raise SystemExit("error: gc needs --live-from DIR (or --resume); refusing "
                         "to treat an empty live set as 'sweep everything' implicitly")
    live = _live_fingerprints(store, [_journal_dir(d) for d in args.live_from])
    report = store.gc(live, dry_run=args.dry_run)
    print(report.summary())
    return 0


def _cmd_stats(args) -> int:
    stats = _open_store(args).stats()
    session = stats.pop("session")
    for k, v in stats.items():
        print(f"{k}={v}")
    for k, v in session.items():
        print(f"session.{k}={v}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos.harness_faults import (
        inject_interrupted_gc,
        inject_store_fault,
        store_plan_for,
    )

    store = _open_store(args)
    fingerprints = list(store.fingerprints())
    if not fingerprints:
        raise SystemExit("error: store has no records to corrupt")
    corrupted = 0
    dup = 0
    for fp in fingerprints:
        plan = store_plan_for(args.chaos_seed, fp)
        if plan.mode is None:
            continue
        inject_store_fault(store, fp, plan.mode)
        if plan.mode == "dup":
            dup += 1
        else:
            corrupted += 1
        print(f"store-chaos: {plan.mode} {fp[:12]}…")
    if corrupted == 0:
        # The drill must always have something for fsck to find.
        fp = fingerprints[0]
        inject_store_fault(store, fp, "torn")
        corrupted += 1
        print(f"store-chaos: torn {fp[:12]}… (forced: plan drew no corruption)")
    bait = inject_interrupted_gc(store, args.chaos_seed)
    print(f"store-chaos: interrupted-gc bait {bait[:12]}…")
    print(f"store-chaos: corrupted={corrupted} dup={dup} gc_crash=1")
    return 0


_COMMANDS = {"fsck": _cmd_fsck, "gc": _cmd_gc, "stats": _cmd_stats, "chaos": _cmd_chaos}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code (0 = clean/success)."""
    logging.basicConfig(level=logging.INFO, format="%(levelname)s %(name)s: %(message)s")
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
