"""The content-addressed result store: durable, verifiable memoized trials.

Layout under one root (all files checksummed envelopes, all writes
atomic temp + fsync + ``os.replace``)::

    store/
      objects/<aa>/<fingerprint>.json   # one record per (spec, code-version)
      index/<sanitized-key>.json        # trial key -> fingerprint bridge
      quarantine/                       # carcasses of corrupt records
      gc/mark.json                      # GC mark journal (present mid-GC only)

**Records** are keyed by :func:`repro.store.fingerprint.spec_fingerprint`
and carry ``{fingerprint, key, status, record, sha256}``.  Because the
encoding is canonical, a re-put of identical content writes identical
bytes — concurrent writers of the same trial are benign — while a put of
*different* content under one fingerprint is a
:class:`DeterminismViolation`: the spec's determinism contract broke (or
the code changed without a version bump), and the store refuses to
silently pick a winner.  That turns the store into a standing cross-run
determinism oracle.

**The key index** maps sanitized trial keys (the same names
:class:`~repro.checkpoint.harness.SweepJournal` uses for its files) to
fingerprints.  It is rebuilt on every put and exists for two offline
consumers: ``fsck --repair``, which uses it to find the journal entry
that can restore a corrupt record, and ``gc --live-from``, which turns
"the keys in these journals" into a live fingerprint set.

**Reads are self-protecting**: :meth:`ResultStore.get` verifies the
checksum and shape, and a record that fails is *quarantined* — moved
aside, never deleted, never served — and reported as a miss, so a
corrupt store degrades to recomputation instead of poisoning results.

**GC is crash-safe** by mark journaling: the dead set is written to
``gc/mark.json`` (atomic, checksummed) before the first unlink, the
sweep deletes exactly the fingerprints in the mark, and a crash anywhere
leaves either a completed GC or a mark whose sweep is idempotent to
finish — :meth:`ResultStore.gc` and ``fsck --repair`` both complete it.
Records put *after* the mark was written are never in its dead list, so
a resumed sweep cannot eat concurrent work.
"""

from __future__ import annotations

import json
import logging
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.checkpoint.harness import sanitize_key, valid_journal_entry
from repro.store.records import IntegrityError, decode_record, encode_record

__all__ = [
    "StoreError",
    "DeterminismViolation",
    "ResultStore",
    "FsckFinding",
    "FsckReport",
    "GcReport",
]

_log = logging.getLogger("repro.store")

_FP_RE = re.compile(r"[0-9a-f]{64}\Z")


class StoreError(RuntimeError):
    """The store cannot honour a request (misuse or unrecoverable state)."""


class DeterminismViolation(StoreError):
    """Two different results were produced for one fingerprint.

    Either a trial is not the pure function of its spec the contract
    demands, or trial-affecting code changed without a code-version bump
    (see :func:`repro.store.fingerprint.code_version`).  Both are bugs
    worth a loud stop — serving or overwriting either record would
    silently corrupt downstream results.
    """


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Crash-safe byte write: temp file + fsync + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class FsckFinding:
    """One problem fsck found (and what it did about it)."""

    #: ``torn | checksum | shape | fingerprint-mismatch | index-corrupt |
    #: index-dangling | stray-tmp | interrupted-gc | gc-mark-corrupt``
    kind: str
    path: str
    fingerprint: Optional[str] = None
    key: Optional[str] = None
    #: ``reported`` (no --repair) or the repair taken: ``quarantined``,
    #: ``repaired`` (restored from a journal), ``removed``, ``completed``.
    action: str = "reported"


@dataclass
class FsckReport:
    """Everything one fsck pass saw."""

    checked: int = 0
    findings: list = field(default_factory=list)
    repaired: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def resolved(self) -> bool:
        """Did every finding end in a repair action (store now clean)?"""
        return all(f.action != "reported" for f in self.findings)

    def summary(self) -> str:
        """One-line human verdict for the CLI."""
        if self.clean:
            return f"fsck: clean ({self.checked} records verified)"
        return (
            f"fsck: {len(self.findings)} problem(s) across {self.checked} "
            f"records, {self.repaired} restored from journal"
        )


@dataclass
class GcReport:
    """What one GC pass kept and swept."""

    kept: int = 0
    dead: list = field(default_factory=list)
    swept: int = 0
    #: Objects removed while completing a previously interrupted sweep.
    resumed: int = 0
    dry_run: bool = False

    def summary(self) -> str:
        """One-line human verdict for the CLI."""
        mode = "dry-run: would sweep" if self.dry_run else "swept"
        resumed = f" (+{self.resumed} from an interrupted sweep)" if self.resumed else ""
        return f"gc: kept {self.kept}, {mode} {len(self.dead)}{resumed}"


class ResultStore:
    """Content-addressed store of memoized trial records under *root*.

    Thread-unsafe by design (one instance per process; cross-*process*
    concurrency is what the atomic/canonical write discipline handles).
    Session telemetry lives in :attr:`hits`/:attr:`misses`/:attr:`puts`/
    :attr:`identical` — never in stored bytes, so cached and computed
    campaigns stay byte-identical.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.index_dir = self.root / "index"
        self.quarantine_dir = self.root / "quarantine"
        self.gc_dir = self.root / "gc"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.index_dir.mkdir(parents=True, exist_ok=True)
        #: Records served (verified) this session.
        self.hits = 0
        #: Probes that found nothing servable (absent or quarantined).
        self.misses = 0
        #: New or corrupt-replacing writes this session.
        self.puts = 0
        #: Puts that found byte-identical content already stored.
        self.identical = 0

    # -- paths ---------------------------------------------------------

    def object_path(self, fingerprint: str) -> Path:
        """Where the record for *fingerprint* lives (exists or not)."""
        self._check_fingerprint(fingerprint)
        return self.objects_dir / fingerprint[:2] / f"{fingerprint}.json"

    def index_path(self, key: str) -> Path:
        """Where the key->fingerprint index entry for *key* lives."""
        return self.index_dir / f"{sanitize_key(key)}.json"

    @property
    def gc_mark_path(self) -> Path:
        return self.gc_dir / "mark.json"

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> None:
        if not isinstance(fingerprint, str) or not _FP_RE.match(fingerprint):
            raise ValueError(
                f"not a fingerprint: {fingerprint!r} (want 64 lowercase hex chars)"
            )

    def fingerprints(self) -> Iterator[str]:
        """All fingerprints with a record file on disk (sorted)."""
        for path in sorted(self.objects_dir.glob("*/*.json")):
            if _FP_RE.match(path.stem):
                yield path.stem

    # -- put / get -----------------------------------------------------

    def put(self, fingerprint: str, key: str, record: dict) -> str:
        """Store *record* under *fingerprint*; return what happened.

        ``"stored"`` — new record written; ``"identical"`` — byte-equal
        record already present (benign concurrent/duplicate writer);
        ``"replaced-corrupt"`` — a corrupt carcass sat at this
        fingerprint and was overwritten with the good record.  A valid
        but *different* record raises :class:`DeterminismViolation`.
        """
        path = self.object_path(fingerprint)
        payload = {
            "fingerprint": fingerprint,
            "key": key,
            "status": "ok",
            "record": record,
        }
        data = encode_record(payload)
        outcome = "stored"
        if path.is_file():
            existing = path.read_bytes()
            if existing == data:
                self.identical += 1
                self._write_index(key, fingerprint)
                return "identical"
            try:
                old = decode_record(existing)
                self._validate_object(fingerprint, old)
            except IntegrityError as exc:
                _log.warning(
                    "store: replacing corrupt record %s (%s)", path.name, exc
                )
                outcome = "replaced-corrupt"
            else:
                raise DeterminismViolation(
                    f"determinism violation for trial {key!r} "
                    f"(fingerprint {fingerprint[:12]}…): stored record "
                    f"{json.dumps(old.get('record'), sort_keys=True)[:200]} != "
                    f"new record {json.dumps(record, sort_keys=True)[:200]} — "
                    "trials must be pure functions of their specs; if code "
                    "changed, bump the code version (REPRO_CODE_VERSION)"
                )
        _atomic_write_bytes(path, data)
        self._write_index(key, fingerprint)
        self.puts += 1
        return outcome

    def get(self, fingerprint: str) -> Optional[dict]:
        """The verified record for *fingerprint*, or None.

        A record that fails checksum/shape verification is quarantined
        (moved aside for forensics) and reported as a miss — a corrupt
        store degrades to recomputation, never to bad data.
        """
        path = self.object_path(fingerprint)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            payload = decode_record(data)
            self._validate_object(fingerprint, payload)
        except IntegrityError as exc:
            moved = self._quarantine(path)
            _log.warning(
                "store: quarantined corrupt record %s -> %s (%s); "
                "its trial will be recomputed",
                path.name,
                moved.name,
                exc,
            )
            self.misses += 1
            return None
        self.hits += 1
        return payload["record"]

    @staticmethod
    def _validate_object(fingerprint: str, payload: dict) -> None:
        """Shape-check a decoded record against its address."""
        missing = {"fingerprint", "key", "status", "record"} - payload.keys()
        if missing or payload.get("status") != "ok" or not isinstance(
            payload.get("key"), str
        ):
            raise IntegrityError(
                "shape", f"record at {fingerprint[:12]}… has wrong shape "
                f"(missing {sorted(missing)!r} / bad status)"
            )
        if payload["fingerprint"] != fingerprint:
            raise IntegrityError(
                "fingerprint-mismatch",
                f"record claims fingerprint {str(payload['fingerprint'])[:12]}… "
                f"but is addressed as {fingerprint[:12]}…",
            )

    def _write_index(self, key: str, fingerprint: str) -> None:
        """Record the key→fingerprint bridge (last writer wins: a new
        code version legitimately remaps a key to a new fingerprint)."""
        path = self.index_path(key)
        data = encode_record({"kind": "index", "key": key, "fingerprint": fingerprint})
        if path.is_file() and path.read_bytes() == data:
            return
        _atomic_write_bytes(path, data)

    def _quarantine(self, path: Path) -> Path:
        """Move a corrupt file into ``quarantine/`` (never delete it)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        n = 0
        while target.exists():
            n += 1
            target = self.quarantine_dir / f"{path.name}.{n}"
        os.replace(path, target)
        return target

    # -- index reading -------------------------------------------------

    def _index_entries(self):
        """Yield ``(path, payload_or_None)`` for every index file."""
        for path in sorted(self.index_dir.glob("*.json")):
            try:
                payload = decode_record(path.read_bytes())
                if (
                    payload.get("kind") != "index"
                    or not isinstance(payload.get("key"), str)
                    or not isinstance(payload.get("fingerprint"), str)
                ):
                    raise IntegrityError("shape", "index entry has wrong shape")
            except (OSError, IntegrityError):
                yield path, None
            else:
                yield path, payload

    # -- fsck ----------------------------------------------------------

    def fsck(
        self, repair: bool = False, journal_dirs: Sequence = ()
    ) -> FsckReport:
        """Verify every byte the store owns; optionally make it clean.

        Detects: torn records, checksum mismatches (bit flips), wrong
        shapes, address/fingerprint mismatches, corrupt index entries,
        index entries pointing at missing records, stray temp spill, and
        an interrupted GC (mark journal present).

        With ``repair=True`` every finding is resolved: corrupt records
        are quarantined and — when their key is recoverable and one of
        *journal_dirs* holds that trial's journal entry — restored
        byte-identical from the journal; corrupt/dangling index entries
        are removed (they rebuild on the next put); temp spill is
        deleted; an interrupted GC's sweep is completed (idempotent).
        A repaired store passes a subsequent fsck with zero findings.
        """
        report = FsckReport()

        # Key bridge first: fp -> key from valid index entries, so a
        # torn record (whose own key is unreadable) can still be traced
        # back to its journal entry for repair.
        fp_to_key: dict[str, str] = {}
        for path, payload in self._index_entries():
            if payload is None:
                finding = FsckFinding("index-corrupt", str(path))
                if repair:
                    path.unlink(missing_ok=True)
                    finding.action = "removed"
                report.findings.append(finding)
            else:
                fp_to_key[payload["fingerprint"]] = payload["key"]

        # Every record: parse, verify checksum, check shape and address.
        for path in sorted(self.objects_dir.glob("*/*.json")):
            fingerprint = path.stem
            if not _FP_RE.match(fingerprint):
                finding = FsckFinding("shape", str(path))
                if repair:
                    self._quarantine(path)
                    finding.action = "quarantined"
                report.findings.append(finding)
                continue
            report.checked += 1
            key: Optional[str] = fp_to_key.get(fingerprint)
            try:
                payload = decode_record(path.read_bytes())
                key = payload.get("key", key) if isinstance(payload, dict) else key
                self._validate_object(fingerprint, payload)
            except IntegrityError as exc:
                finding = FsckFinding(
                    exc.kind, str(path), fingerprint=fingerprint, key=key
                )
                if repair:
                    self._quarantine(path)
                    finding.action = "quarantined"
                    restored = self._restore_from_journal(
                        fingerprint, key, journal_dirs
                    )
                    if restored:
                        finding.action = "repaired"
                        report.repaired += 1
                report.findings.append(finding)

        # Stray temp spill from killed atomic writes.
        for base in (self.objects_dir, self.index_dir, self.gc_dir):
            if not base.is_dir():
                continue
            for tmp in sorted(base.rglob("*.tmp")):
                finding = FsckFinding("stray-tmp", str(tmp))
                if repair:
                    tmp.unlink(missing_ok=True)
                    finding.action = "removed"
                report.findings.append(finding)

        # Interrupted GC: a mark journal means a sweep never finished.
        if self.gc_mark_path.is_file():
            try:
                mark = decode_record(self.gc_mark_path.read_bytes())
                dead = list(mark.get("dead", []))
                if mark.get("kind") != "gc-mark":
                    raise IntegrityError("shape", "gc mark has wrong shape")
            except IntegrityError:
                finding = FsckFinding("gc-mark-corrupt", str(self.gc_mark_path))
                if repair:
                    # The mark is unreadable, so the dead set is unknown:
                    # drop the mark and keep every object.  Worst case a
                    # dead record survives (a leak, fixed by the next
                    # GC), never a live record lost.
                    self.gc_mark_path.unlink(missing_ok=True)
                    finding.action = "removed"
                report.findings.append(finding)
            else:
                finding = FsckFinding("interrupted-gc", str(self.gc_mark_path))
                if repair:
                    self._sweep(dead)
                    finding.action = "completed"
                report.findings.append(finding)

        # Index entries whose record is gone (e.g. quarantined above and
        # not restorable): remove so the index never lies.
        for path, payload in self._index_entries():
            if payload is None:
                continue  # handled (or already removed) above
            fp = payload["fingerprint"]
            if _FP_RE.match(fp) and self.object_path(fp).is_file():
                continue
            finding = FsckFinding(
                "index-dangling", str(path), fingerprint=fp, key=payload["key"]
            )
            if repair:
                path.unlink(missing_ok=True)
                finding.action = "removed"
            report.findings.append(finding)

        return report

    def _restore_from_journal(
        self, fingerprint: str, key: Optional[str], journal_dirs: Sequence
    ) -> bool:
        """Re-put a quarantined record from a journal copy, if possible.

        The restored bytes are identical to the original record's: the
        payload is the same and the encoding canonical.
        """
        if not key:
            return False
        for journal_dir in journal_dirs:
            entry_path = Path(journal_dir) / f"{sanitize_key(key)}.json"
            if not entry_path.is_file():
                continue
            try:
                with open(entry_path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if not valid_journal_entry(entry) or entry["status"] != "ok":
                continue
            self.put(fingerprint, key, entry["record"])
            _log.info(
                "store: restored %s (%s) from journal %s",
                fingerprint[:12],
                key,
                journal_dir,
            )
            return True
        return False

    # -- gc ------------------------------------------------------------

    def gc(self, live: Iterable[str], dry_run: bool = False) -> GcReport:
        """Sweep every record whose fingerprint is not in *live*.

        Crash-safe: any previously interrupted sweep is completed first
        (counted in ``resumed``), then the new dead set is journaled to
        ``gc/mark.json`` before the first unlink.  A crash mid-sweep
        leaves the mark in place; re-running :meth:`gc` (or ``fsck
        --repair``) finishes it idempotently.  Records put after the
        mark is written are never in its dead list, so concurrent work
        survives a resumed sweep.
        """
        resumed = self.finish_gc()
        live_set = set(live)
        existing = list(self.fingerprints())
        dead = [fp for fp in existing if fp not in live_set]
        report = GcReport(
            kept=len(existing) - len(dead), dead=dead, resumed=resumed, dry_run=dry_run
        )
        if dry_run or not dead:
            return report
        mark = encode_record({"kind": "gc-mark", "dead": dead})
        _atomic_write_bytes(self.gc_mark_path, mark)
        report.swept = self._sweep(dead)
        return report

    def finish_gc(self) -> int:
        """Complete an interrupted sweep, if any; return objects removed."""
        if not self.gc_mark_path.is_file():
            return 0
        try:
            mark = decode_record(self.gc_mark_path.read_bytes())
            if mark.get("kind") != "gc-mark":
                raise IntegrityError("shape", "gc mark has wrong shape")
        except IntegrityError as exc:
            raise StoreError(
                f"gc mark journal is corrupt ({exc}); run 'store fsck --repair' "
                "to clear it safely"
            )
        return self._sweep(list(mark.get("dead", [])))

    def _sweep(self, dead: Sequence[str]) -> int:
        """Idempotent sweep phase: delete exactly the marked dead set,
        prune index entries pointing into it, then retire the mark."""
        dead_set = set(dead)
        removed = 0
        for fp in sorted(dead_set):
            if not _FP_RE.match(fp):
                continue  # never let a mangled mark delete outside objects/
            try:
                self.object_path(fp).unlink()
                removed += 1
            except FileNotFoundError:
                pass
        for path, payload in self._index_entries():
            if payload is not None and payload["fingerprint"] in dead_set:
                path.unlink(missing_ok=True)
        self.gc_mark_path.unlink(missing_ok=True)
        return removed

    # -- stats ---------------------------------------------------------

    def stats(self) -> dict:
        """Durable facts plus this session's probe/put telemetry."""
        sizes = [p.stat().st_size for p in self.objects_dir.glob("*/*.json")]
        quarantined = (
            sum(1 for _ in self.quarantine_dir.iterdir())
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "root": str(self.root),
            "records": len(sizes),
            "bytes": sum(sizes),
            "index_entries": sum(1 for _ in self.index_dir.glob("*.json")),
            "quarantined": quarantined,
            "gc_in_progress": self.gc_mark_path.is_file(),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "identical": self.identical,
            },
        }
