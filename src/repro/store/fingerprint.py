"""Trial fingerprints: the store's content-addressed keys.

A trial is a pure function of its :class:`~repro.experiments.runner.TrialSpec`
— that is the determinism contract every byte-identity test in this repo
pins — so its result can be keyed by a canonical fingerprint of
``(spec, code version)`` and memoized across runs, campaigns, and
machines.  The fingerprint is the SHA-256 of the canonical JSON encoding
(:func:`repro.results.canonical_dumps`) of the spec's key, trial-function
reference, params, and the code version; two specs that could ever
compute different results must fingerprint differently.

Params may contain dataclasses (``Scenario`` and friends) and importable
callables (e.g. ``KernelConfig.prototype`` held in a scenario field);
callables are encoded by qualified name, which is exactly the identity
the spec's ``"module:function"`` convention already relies on.  A local
or lambda callable has no stable cross-process name and is rejected
loudly — memoizing on it would be a lie.

``code_version()`` salts every fingerprint: results only hit the cache
while the code that produced them is current.  It reads
``REPRO_CODE_VERSION`` when set (CI can pass a commit hash) and falls
back to the package version — bump one of them when changing anything
that affects trial results, or stale hits will be served.  The store's
determinism oracle (:class:`repro.store.DeterminismViolation`) catches
the failure mode where the version was *not* bumped but results drifted.
"""

from __future__ import annotations

import hashlib
import os

from repro.results import canonical_dumps, to_jsonable

__all__ = ["code_version", "spec_fingerprint", "fingerprint_payload"]

#: Environment override for the code-version salt (e.g. a commit hash).
VERSION_ENV_VAR = "REPRO_CODE_VERSION"


def code_version() -> str:
    """The code-version salt baked into every fingerprint."""
    env = os.environ.get(VERSION_ENV_VAR, "").strip()
    if env:
        return env
    import repro

    return repro.__version__


def _callable_fallback(value):
    """Encode an importable callable by qualified name; reject the rest."""
    if callable(value):
        mod = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if mod and qualname and "<locals>" not in qualname and "<lambda>" not in qualname:
            return {"__callable__": f"{mod}:{qualname}"}
        raise TypeError(
            f"cannot fingerprint local/lambda callable {value!r}: it has no "
            "stable cross-process identity; use an importable top-level name"
        )
    raise TypeError(
        f"cannot fingerprint {type(value).__name__}: {value!r} — trial params "
        "must be pure data (or importable callables)"
    )


def fingerprint_payload(spec, version: str = None) -> dict:
    """The exact JSON-able payload a fingerprint hashes (for forensics)."""
    return {
        "code_version": version if version is not None else code_version(),
        "fn": spec.fn,
        "key": spec.key,
        "params": to_jsonable(spec.params, fallback=_callable_fallback),
    }


def spec_fingerprint(spec, version: str = None) -> str:
    """Content-addressed key for *spec* under *version* (hex SHA-256)."""
    payload = fingerprint_payload(spec, version)
    return hashlib.sha256(canonical_dumps(payload).encode("utf-8")).hexdigest()
