"""Checksummed canonical record envelope: the store's unit of integrity.

Every file the content-addressed store writes — result records, key
index entries, the GC mark journal — is one canonical JSON object with
an embedded SHA-256 over the canonical encoding of everything *except*
the checksum field itself.  The envelope turns "is this file intact?"
into a pure function of its bytes:

* a torn write (truncation, interleaved writers) fails to parse;
* a bit flip anywhere — payload or checksum — fails verification;
* a structurally wrong object (missing fields, stale format) fails the
  caller's shape check after decoding.

Writers call :func:`encode_record` and land the bytes with the repo's
atomic temp + fsync + ``os.replace`` discipline; readers call
:func:`decode_record` and treat :class:`IntegrityError` as "this record
does not exist" (quarantining the carcass, never trusting it).  Because
the payload is canonically encoded (:func:`repro.results.canonical_dumps`),
identical payloads produce identical bytes — the property that makes
concurrent same-key writers benign and lets ``fsck --repair`` restore a
record byte-identical to the original from a journal copy.
"""

from __future__ import annotations

import hashlib
import json
from typing import Union

from repro.results import canonical_dumps

__all__ = ["IntegrityError", "checksum", "encode_record", "decode_record"]

#: Name of the embedded checksum field.
CHECKSUM_FIELD = "sha256"


class IntegrityError(ValueError):
    """A stored record failed integrity verification.

    ``kind`` classifies the violation:

    ========== ====================================================
    ``torn``       not parseable as JSON (truncated/interleaved write)
    ``shape``      parseable, but not a checksummed record object
    ``checksum``   checksum mismatch (bit flip / tampering)
    ========== ====================================================
    """

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        super().__init__(message)


def checksum(payload: dict) -> str:
    """SHA-256 hex digest of the canonical encoding of *payload*."""
    return hashlib.sha256(canonical_dumps(payload).encode("utf-8")).hexdigest()


def encode_record(payload: dict) -> bytes:
    """Serialise *payload* as a checksummed canonical record.

    *payload* must be a JSON-able dict without a ``sha256`` field (the
    envelope owns that name).  The result is one line of canonical JSON
    plus a trailing newline — identical payloads always produce
    identical bytes.
    """
    if not isinstance(payload, dict):
        raise TypeError(f"record payload must be a dict, got {type(payload).__name__}")
    if CHECKSUM_FIELD in payload:
        raise ValueError(f"payload may not contain the reserved {CHECKSUM_FIELD!r} field")
    body = dict(payload)
    body[CHECKSUM_FIELD] = checksum(payload)
    return (canonical_dumps(body) + "\n").encode("utf-8")


def decode_record(data: Union[bytes, str]) -> dict:
    """Parse and verify a record written by :func:`encode_record`.

    Returns the full payload (checksum field included, for forensics).
    Raises :class:`IntegrityError` on any violation; callers must treat
    that as "no such record", never as data.
    """
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise IntegrityError("torn", f"record is not valid UTF-8: {exc}")
    try:
        obj = json.loads(data)
    except json.JSONDecodeError as exc:
        raise IntegrityError("torn", f"record is not valid JSON: {exc}")
    if not isinstance(obj, dict) or CHECKSUM_FIELD not in obj:
        raise IntegrityError(
            "shape", "record is not a checksummed object (missing sha256 field)"
        )
    claimed = obj[CHECKSUM_FIELD]
    payload = {k: v for k, v in obj.items() if k != CHECKSUM_FIELD}
    try:
        actual = checksum(payload)
    except (TypeError, ValueError) as exc:
        raise IntegrityError("shape", f"record payload is not canonicalisable: {exc}")
    if claimed != actual:
        raise IntegrityError(
            "checksum",
            f"record checksum mismatch: stored {claimed!r}, computed {actual!r} "
            "(bit flip or tampering)",
        )
    return obj
