"""Content-addressed result store with end-to-end integrity.

The durable complement to the per-campaign
:class:`~repro.checkpoint.harness.SweepJournal`: trials are pure
functions of their specs, so records are keyed by
:func:`spec_fingerprint` — SHA-256 over the canonical JSON of
``(spec, code version)`` — and memoized *across* runs and campaigns.
Every stored byte is a checksummed canonical envelope written atomically;
reads verify before serving and quarantine what fails; ``fsck`` proves
the whole store intact (or repairs it from journals); GC is crash-safe
via a mark journal; and two different results under one fingerprint is a
:class:`DeterminismViolation`, making the store a standing cross-run
determinism oracle.

Layer map: :mod:`repro.store.records` (envelope),
:mod:`repro.store.fingerprint` (keys), :mod:`repro.store.store`
(:class:`ResultStore`: put/get/fsck/gc/stats), :mod:`repro.store.cli`
(``fsck | gc | stats | chaos``).
"""

from repro.store.fingerprint import code_version, fingerprint_payload, spec_fingerprint
from repro.store.records import IntegrityError, decode_record, encode_record
from repro.store.store import (
    DeterminismViolation,
    FsckFinding,
    FsckReport,
    GcReport,
    ResultStore,
    StoreError,
)

__all__ = [
    "ResultStore",
    "StoreError",
    "DeterminismViolation",
    "IntegrityError",
    "FsckFinding",
    "FsckReport",
    "GcReport",
    "spec_fingerprint",
    "fingerprint_payload",
    "code_version",
    "encode_record",
    "decode_record",
]
