"""``python -m repro.store`` — the store's operational CLI."""

from repro.store.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
