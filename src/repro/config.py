"""Configuration dataclasses shared across the simulator and analytic model.

Everything tunable lives here, in plain frozen dataclasses with no behaviour,
so that the discrete-event simulator (:mod:`repro.kernel` and friends) and
the vectorised large-scale model (:mod:`repro.analytic`) consume *identical*
descriptions of the machine, kernel policy, noise ecology, network, and
co-scheduler.  A cross-validation test holds the two implementations to the
same configs.

Numeric conventions: canonical time unit is the microsecond; priorities are
AIX-style where **lower value = more favored** (normal user 60; timeshared
user processes degrade into the 90–120 band; "real-time" 40–60; the paper's
co-scheduler used favored 30 and unfavored 100).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal, Optional, Sequence

from repro.rng import Distribution, LogNormal
from repro.units import ms, s, us

__all__ = [
    "MachineConfig",
    "KernelConfig",
    "NetworkConfig",
    "MpiConfig",
    "CoschedConfig",
    "DaemonSpec",
    "NoiseConfig",
    "NodeFaultSpec",
    "CoschedFaultSpec",
    "FaultConfig",
    "CheckpointPolicy",
    "ClusterConfig",
    "PRIO_NORMAL",
    "PRIO_DAEMON_SYSTEM",
    "PRIO_USER_TIMESHARED",
    "PRIO_IDLE",
]

#: AIX default priority for a freshly started normal process.
PRIO_NORMAL = 60
#: Priority band observed for system daemons in the paper's traces ("these
#: daemons ran with a priority of 56, which is more favored than those for
#: normal user processes").
PRIO_DAEMON_SYSTEM = 56
#: Degraded time-shared user processes ("range between 90 and 120").
PRIO_USER_TIMESHARED = 100
#: Worst possible priority; the per-CPU idle loop.
PRIO_IDLE = 127


@dataclass(frozen=True)
class MachineConfig:
    """Cluster hardware shape.

    The paper's systems were 16-way Power3 SMP nodes (ASCI White 512 nodes,
    Frost 68, Blue Oak 120).  ``max_clock_offset_us`` models per-node time-
    of-day skew before switch-clock synchronisation; the SP switch exposes a
    global clock register that the co-scheduler uses to align the low-order
    clock bits across nodes.
    """

    n_nodes: int = 4
    cpus_per_node: int = 16
    #: Worst-case node time-of-day offset from global time when unsynchronised.
    max_clock_offset_us: float = ms(200)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.cpus_per_node < 1:
            raise ValueError("cpus_per_node must be >= 1")

    @property
    def total_cpus(self) -> int:
        return self.n_nodes * self.cpus_per_node


@dataclass(frozen=True)
class KernelConfig:
    """Operating-system scheduling policy — the paper's `schedtune` surface.

    The defaults reproduce *vanilla* AIX 4.3.3 behaviour as the paper
    describes it; :meth:`prototype` flips every modification the paper made.

    Attributes
    ----------
    tick_period_us:
        Base timer-decrement period; 10 ms (100 Hz) on AIX.
    big_tick_multiplier:
        The "big tick" kernel modification: fold N logical ticks into one
        physical interrupt.  The paper generally used 25 (250 ms physical
        ticks) and notes the secondary benefit of batching timer-triggered
        daemon wakeups.
    tick_phase:
        ``"staggered"`` — AIX deliberately offsets ticks across the CPUs of
        a node (CPU *k* ticks at ``x + k·stagger_offset_us``) to avoid lock
        contention in the timer path.  ``"aligned"`` — the paper's
        modification (possible once AIX 5.1 made the timer path take a
        shared lock): all CPUs tick simultaneously, trading a little lock
        efficiency for overlap of the interference.
    align_ticks_to_global_time:
        Inter-node extension: force ticks to land on exact multiples of the
        tick period in *global* time, so that (given synchronised clocks)
        the whole cluster ticks simultaneously.
    tick_cost_us:
        CPU time consumed by one physical tick interrupt on the CPU taking
        it.  With big ticks the per-interrupt cost rises slightly
        (``big_tick_extra_cost_us``) but the total falls ~linearly.
    realtime_scheduling:
        AIX "real time scheduling" option: a readying operation that should
        preempt another CPU forces a hardware interrupt (IPI) instead of
        waiting for the target CPU to notice at its next tick / syscall /
        block.  The paper observed preemption latency of tenths of a
        millisecond with the option versus up to 10 ms without.
    fix_reverse_preemption:
        Paper's fix #1: also force the IPI when a *running* thread's
        priority is lowered below a waiting thread's ("reverse
        pre-emption") — essential for the co-scheduler's unfavor step.
    fix_multi_ipi:
        Paper's fix #2: allow multiple preemption IPIs in flight at once;
        stock AIX suppressed further IPIs while one was pending for a
        thread, serialising multi-CPU preemption.
    daemons_global_queue:
        Paper §3.1.2: queue daemon work to *all* processors (one shared
        queue per node) instead of per-CPU queues, maximising the
        parallelism of overhead execution at a small per-daemon efficiency
        cost (``global_queue_penalty`` fractional slowdown, e.g. two 3 ms
        daemons run concurrently in ~3.1 ms instead of serially in 6 ms).
    policy:
        Node scheduling policy by registry name (:mod:`repro.kernel.policy`):
        ``aix`` (default, the paper's dispatcher — bit-identical to the
        pre-policy-framework scheduler), ``fair`` (CFS-style virtual
        runtime), ``quantum`` (fixed-slice round-robin), ``lottery``
        (ticket-proportional, seed-deterministic via the named
        ``kernel.lottery.<node>`` rng stream).  Unknown names raise here,
        at construction, listing the registered policies.
    policy_params:
        Per-policy tunables as a mapping or ``(name, value)`` pair tuple
        (canonicalised to a sorted tuple so configs stay hashable and
        fingerprint-stable).  Validated against the policy's declared
        parameter set — unknown params raise at construction.
    """

    tick_period_us: float = ms(10)
    big_tick_multiplier: int = 1
    tick_phase: Literal["staggered", "aligned"] = "staggered"
    stagger_offset_us: float = ms(1)
    align_ticks_to_global_time: bool = False
    tick_cost_us: float = us(18)
    big_tick_extra_cost_us: float = us(12)

    realtime_scheduling: bool = False
    fix_reverse_preemption: bool = False
    fix_multi_ipi: bool = False
    ipi_latency_us: float = us(150)
    ipi_cost_us: float = us(5)

    daemons_global_queue: bool = False
    global_queue_penalty: float = 0.05

    context_switch_us: float = us(8)
    #: Extra cost when a thread resumes on a CPU that ran someone else in
    #: between: cache/TLB refill.  The paper's traces show daemon
    #: executions "often accompanied by page faults, increasing their run
    #: time and further impacting the Allreduce performance" — this knob
    #: models the victim-side half of that effect.  Default 0 (off) so the
    #: calibrated headline numbers are attributable to scheduling alone;
    #: the ablation turns it on.
    cache_refill_us: float = 0.0
    steal_enabled: bool = True

    policy: str = "aix"
    policy_params: tuple = ()

    def __post_init__(self) -> None:
        if self.big_tick_multiplier < 1:
            raise ValueError("big_tick_multiplier must be >= 1")
        if self.tick_phase not in ("staggered", "aligned"):
            raise ValueError(f"unknown tick_phase {self.tick_phase!r}")
        if not 0.0 <= self.global_queue_penalty <= 1.0:
            raise ValueError("global_queue_penalty must be in [0, 1]")
        if self.tick_period_us <= 0:
            raise ValueError("tick_period_us must be positive")
        # Canonicalise policy_params (dict or pair sequence) to a sorted
        # pair tuple, then validate name + params against the registry —
        # unknown policies/params must fail here, not deep inside a run.
        try:
            items = tuple(sorted(dict(self.policy_params).items()))
        except (TypeError, ValueError):
            raise ValueError(
                f"policy_params must be a mapping or (name, value) pairs, "
                f"got {self.policy_params!r}"
            ) from None
        object.__setattr__(self, "policy_params", items)
        # Function-level import: repro.kernel.policy imports repro.kernel
        # modules which import this module back.
        from repro.kernel.policy import validate_policy

        validate_policy(self.policy, items)

    @property
    def physical_tick_period_us(self) -> float:
        """Interval between physical tick interrupts (period × big-tick)."""
        return self.tick_period_us * self.big_tick_multiplier

    @property
    def physical_tick_cost_us(self) -> float:
        """CPU cost of one physical tick interrupt."""
        if self.big_tick_multiplier > 1:
            return self.tick_cost_us + self.big_tick_extra_cost_us
        return self.tick_cost_us

    @classmethod
    def vanilla(cls) -> "KernelConfig":
        """Stock AIX 4.3.3 as the paper characterises it."""
        return cls()

    @classmethod
    def prototype(cls, big_tick: int = 25) -> "KernelConfig":
        """The paper's prototype kernel: every modification enabled.

        The paper settled on a big tick interval of 250 ms (multiplier 25).
        """
        return cls(
            big_tick_multiplier=big_tick,
            tick_phase="aligned",
            align_ticks_to_global_time=True,
            realtime_scheduling=True,
            fix_reverse_preemption=True,
            fix_multi_ipi=True,
            daemons_global_queue=True,
        )

    def with_options(self, **kwargs) -> "KernelConfig":
        """`schedtune`-style: return a copy with the given options changed."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class NetworkConfig:
    """LogP-style interconnect parameters (SP switch class hardware).

    Defaults are chosen so that a zero-noise recursive-doubling Allreduce of
    a few doubles lands near the paper's model prediction of ~350 µs at 944
    tasks (≈10 rounds × ~35 µs/round).
    """

    #: Wire latency between any two nodes (flat switch model), µs.
    latency_us: float = us(24)
    #: Send/receive CPU overhead per message, µs (LogP "o").
    overhead_us: float = us(4)
    #: Inverse bandwidth, µs per byte (≈0.0005 → 2 GB/s).
    per_byte_us: float = 0.0005
    #: Extra latency for intra-node (shared-memory) transfers, µs — cheaper
    #: than the switch.
    shm_latency_us: float = us(3)
    #: Combine time inside the switch for hardware-assisted collectives
    #: (the paper's future-work item §7): once every rank's contribution
    #: has arrived, the fabric reduces and fans the result back out.
    hw_collective_latency_us: float = us(12)
    #: Scheduled cross-node latency changes: ``((at_us, latency_us), ...)``,
    #: sorted by time.  From ``at_us`` on, remote wire latency is the new
    #: value (degraded or repaired links).  The parallel-DES coordinator
    #: derives its per-window lookahead from this schedule, so changes must
    #: keep latency positive.
    latency_changes: tuple = ()

    def __post_init__(self) -> None:
        prev = -1.0
        for entry in self.latency_changes:
            at_us, lat = entry
            if at_us <= prev:
                raise ValueError(
                    f"latency_changes must be sorted by strictly increasing time, got {self.latency_changes}"
                )
            if lat <= 0:
                raise ValueError(f"latency change to {lat}us at {at_us}us: latency must stay > 0")
            prev = at_us

    def latency_at(self, t: float) -> float:
        """Remote wire latency in force at simulated time *t*."""
        if not self.latency_changes:
            return self.latency_us
        lat = self.latency_us
        for at_us, new_lat in self.latency_changes:
            if at_us <= t:
                lat = new_lat
            else:
                break
        return lat

    def p2p_time(self, nbytes: int, same_node: bool) -> float:
        """Wire time for a message of *nbytes* (excludes CPU overheads).

        Uses the *base* remote latency; time-dependent callers (the
        fabric) go through :meth:`latency_at` instead.
        """
        lat = self.shm_latency_us if same_node else self.latency_us
        return lat + nbytes * self.per_byte_us


@dataclass(frozen=True)
class MpiConfig:
    """MPI runtime model parameters (IBM PE class library).

    ``progress_interval_us`` is the MPI timer ("progress engine") thread
    period — 400 ms by default in IBM's MPI, per the paper; the paper's
    remedy was ``MP_POLLING_INTERVAL=400000000`` (400 s), which we model by
    setting the interval large.  ``progress_cost_us`` is the CPU the timer
    thread consumes per activation.
    """

    #: Allreduce implementation.  ``"hardware"`` models switch-assisted
    #: collectives (paper §7 future work): contributions are deposited at
    #: the adapter and the fabric combines them — no software tree, so a
    #: descheduled rank delays only the deposit, never intermediate hops.
    algorithm: Literal["recursive_doubling", "binomial", "hardware"] = "recursive_doubling"
    reduce_op_us: float = us(3)
    progress_interval_us: float = ms(400)
    progress_cost_us: float = us(120)
    progress_threads_enabled: bool = True
    #: ``"poll"`` — a waiting receive spins on its CPU (IBM MPI default,
    #: MP_WAIT_MODE=poll); ``"block"`` — it releases the CPU until the
    #: message arrives.  Polling is what exposes waits to preemption.
    wait_mode: Literal["poll", "block"] = "poll"
    #: Extra per-message cost of a blocking receive: syscall entry, the
    #: adapter interrupt, and the scheduler wakeup path.  This is why poll
    #: mode is the HPC default despite its noise sensitivity — blocking
    #: taxes every message, polling only loses when preempted.
    block_wakeup_cost_us: float = us(22)

    def __post_init__(self) -> None:
        if self.algorithm not in ("recursive_doubling", "binomial", "hardware"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.wait_mode not in ("poll", "block"):
            raise ValueError(f"unknown wait_mode {self.wait_mode!r}")

    @classmethod
    def with_long_polling(cls, **kwargs) -> "MpiConfig":
        """The paper's MP_POLLING_INTERVAL fix: 400-second timer period."""
        return cls(progress_interval_us=s(400), **kwargs)


@dataclass(frozen=True)
class CoschedConfig:
    """The Parallel Environment co-scheduler schedule (paper §4).

    One daemon per node cycles the parallel job's task priorities between
    ``favored_priority`` and ``unfavored_priority``.  The cycle has period
    ``period_us`` and the tasks hold the favored value for ``duty_cycle`` of
    it.  The paper settled on favored 30 / unfavored 100 / 5 s period / 90 %
    duty for the benchmark, and — after the ALE3D I/O starvation episode —
    recommends setting the favored priority *just above* (numerically just
    below) the key I/O daemons so GPFS can always preempt the application.

    ``align_to_second`` reproduces the implementation detail that each
    node's cycle ends exactly on a second boundary of the synchronised
    clock, which is what makes the windows coincide cluster-wide with no
    daemon-to-daemon communication.
    """

    enabled: bool = False
    period_us: float = s(5)
    duty_cycle: float = 0.90
    favored_priority: int = 30
    unfavored_priority: int = 100
    #: Priority of the co-scheduler daemon itself ("an even more favored
    #: priority, but sleeps most of the time").
    self_priority: int = 12
    #: CPU cost per priority-flip pass.
    flip_cost_us: float = us(40)
    align_to_second: bool = True
    #: One-way latency of the task → pmd → co-scheduler control-pipe hop.
    #: A config knob (not a module constant) so pipe-latency/loss fault
    #: scenarios and tests can vary it.
    pipe_latency_us: float = 250.0
    #: Synchronise node clocks from the switch clock register at startup.
    sync_clock: bool = True
    #: Paper §7 future work: only boost tasks that have declared (via the
    #: MPI library's fine-grain hints) that they are inside a fine-grain
    #: region.  Tasks outside such regions run at normal priority during
    #: the favored window, so daemons and I/O drain behind coarse-grain
    #: phases instead of piling into the unfavored window.
    fine_grain_only: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        if self.period_us <= 0:
            raise ValueError("period_us must be positive")
        if self.pipe_latency_us < 0:
            raise ValueError("pipe_latency_us must be >= 0")
        if not 0 <= self.favored_priority <= 127:
            raise ValueError("favored_priority out of range")
        if not 0 <= self.unfavored_priority <= 127:
            raise ValueError("unfavored_priority out of range")
        if self.enabled and self.favored_priority >= self.unfavored_priority:
            # AIX numerics: lower value = more favored.  An inverted pair
            # silently runs the schedule backwards — refuse it.
            raise ValueError(
                "favored_priority must be numerically below unfavored_priority "
                f"(got favored={self.favored_priority}, unfavored={self.unfavored_priority})"
            )

    @property
    def favored_window_us(self) -> float:
        return self.period_us * self.duty_cycle

    @property
    def unfavored_window_us(self) -> float:
        return self.period_us - self.favored_window_us


@dataclass(frozen=True)
class DaemonSpec:
    """One periodic source of system interference.

    Parameters
    ----------
    name:
        Daemon name as it would appear in an AIX trace (``syncd`` …).
    period_us:
        Mean activation period.
    service:
        Distribution of CPU time consumed per activation.
    priority:
        Dispatch priority while running (daemons observed in the paper ran
        at 56, better than user processes).
    per_cpu:
        If True, an independent instance runs per CPU (interrupt-handler
        style); otherwise one instance per node.
    phase:
        ``"random"`` — activation phase drawn independently per node
        (typical daemons); ``"aligned"`` — same wall-clock phase on every
        node (cron jobs fired from synchronized crontabs).
    jitter:
        Fractional jitter applied to each period (0 = strictly periodic).
    pagefault_prob / pagefault_cost_us:
        Probability that an activation takes page faults (long-sleeping
        daemons whose pages were evicted), and the extra service time that
        costs.  The paper observed daemon executions "often accompanied by
        page faults, increasing their run time".
    deferrable:
        Whether the co-scheduler's unfavored band may delay this daemon.
        I/O daemons that the application itself depends on (GPFS ``mmfsd``)
        are handled via priority placement rather than this flag; the flag
        exists for interrupt handlers, which no priority scheme can defer.
    """

    name: str
    period_us: float
    service: Distribution
    priority: int = PRIO_DAEMON_SYSTEM
    per_cpu: bool = False
    phase: Literal["random", "aligned"] = "random"
    #: Explicit first-activation time (node-local), overriding the phase
    #: policy — used by experiments that must guarantee a hit inside a
    #: short measurement window (e.g. the Fig-4 cron outlier, whose real
    #: period of 15 min exceeds a benchmark run).
    phase_us: Optional[float] = None
    #: Hardware interrupt semantics: wakeups preempt the target CPU
    #: immediately rather than via the dispatcher's noticing machinery,
    #: and no priority scheme can defer them.
    hardware: bool = False
    jitter: float = 0.10
    pagefault_prob: float = 0.0
    pagefault_cost_us: float = 0.0
    deferrable: bool = True
    #: Marks daemons whose progress the application's I/O depends on.
    io_critical: bool = False

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError(f"{self.name}: period must be positive")
        if not 0 <= self.priority <= 127:
            raise ValueError(f"{self.name}: priority out of range")
        if not 0.0 <= self.pagefault_prob <= 1.0:
            raise ValueError(f"{self.name}: pagefault_prob out of range")

    def mean_service_us(self) -> float:
        """Expected CPU time per activation, including page-fault cost."""
        return self.service.mean() + self.pagefault_prob * self.pagefault_cost_us

    def cpu_fraction(self, cpus_per_node: int) -> float:
        """Fraction of one node's aggregate CPU this daemon consumes."""
        instances = cpus_per_node if self.per_cpu else 1
        return instances * self.mean_service_us() / self.period_us / cpus_per_node


@dataclass(frozen=True)
class NoiseConfig:
    """The complete interference ecology for a run."""

    daemons: tuple[DaemonSpec, ...] = ()
    #: Per-rank residual jitter that no scheduling policy removes (cache,
    #: memory, switch contention); sampled per compute segment.
    residual_jitter: Optional[Distribution] = None
    residual_jitter_prob: float = 0.0

    def __post_init__(self) -> None:
        names = [d.name for d in self.daemons]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate daemon names: {names}")

    def total_cpu_fraction(self, cpus_per_node: int) -> float:
        """Aggregate noise as a fraction of node CPU (paper: 0.2 %–1.1 %)."""
        return sum(d.cpu_fraction(cpus_per_node) for d in self.daemons)

    def get(self, name: str) -> DaemonSpec:
        """Return the daemon named *name* (KeyError if absent)."""
        for d in self.daemons:
            if d.name == name:
                return d
        raise KeyError(name)

    def without(self, *names: str) -> "NoiseConfig":
        """Copy with the named daemons removed (for ablations)."""
        missing = set(names) - {d.name for d in self.daemons}
        if missing:
            raise KeyError(f"no such daemons: {sorted(missing)}")
        return replace(
            self, daemons=tuple(d for d in self.daemons if d.name not in names)
        )


@dataclass(frozen=True)
class NodeFaultSpec:
    """One scheduled node-level fault.

    ``crash`` freezes the whole node for ``duration_us`` (a kernel hang /
    reboot window: every CPU is seized by a top-priority hog, so resident
    threads make zero progress while the fabric keeps delivering into
    mailboxes).  ``slowdown`` steals ``fraction`` of every CPU with a
    duty-cycled hog — thermal throttling, a runaway RAS sweep, or a
    memory-scrubber storm.
    """

    node: int
    at_us: float
    duration_us: float
    kind: Literal["crash", "slowdown"] = "crash"
    #: CPU fraction stolen during a slowdown (ignored for crashes).
    fraction: float = 0.5
    #: Duty-cycle period of the slowdown hog.
    period_us: float = ms(10)

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.at_us < 0 or self.duration_us <= 0:
            raise ValueError("at_us must be >= 0 and duration_us > 0")
        if self.kind not in ("crash", "slowdown"):
            raise ValueError(f"unknown node fault kind {self.kind!r}")
        if self.kind == "slowdown" and not 0.0 < self.fraction < 1.0:
            raise ValueError("slowdown fraction must be in (0, 1)")


@dataclass(frozen=True)
class CoschedFaultSpec:
    """One scheduled co-scheduler daemon fault on one node.

    ``die`` kills the daemon thread outright (tasks are left stuck at
    whatever priority the last flip set — the dangerous failure the
    watchdog exists for).  ``hang`` wedges it for ``duration_us`` (stuck
    syscall): flips stop but the thread stays alive, which only heartbeat
    staleness can detect.
    """

    node: int
    at_us: float
    kind: Literal["die", "hang"] = "die"
    duration_us: float = 0.0

    def __post_init__(self) -> None:
        if self.node < 0 or self.at_us < 0:
            raise ValueError("node and at_us must be >= 0")
        if self.kind not in ("die", "hang"):
            raise ValueError(f"unknown cosched fault kind {self.kind!r}")
        if self.kind == "hang" and self.duration_us <= 0:
            raise ValueError("hang needs duration_us > 0")


@dataclass(frozen=True)
class FaultConfig:
    """Fault injection + resilience policy for a run.

    With ``enabled=False`` (the default) nothing is installed: no fault
    plane on the fabric, no retransmit timers, no watchdogs, no extra RNG
    draws — runs are bit-identical to a config without this section (the
    zero-overhead invariant, held by a regression test).  All randomness
    flows from named :mod:`repro.rng` streams (``faults.net.drop`` /
    ``faults.net.delay`` / ``faults.net.dup``, ``faults.pipe``,
    ``faults.clock``), so fault scenarios are exactly reproducible,
    adding a fault consumer does not perturb daemon noise draws, and
    enabling one network fault type does not reshuffle another's.
    """

    enabled: bool = False

    # -- stochastic network-fabric faults (applied per message) ---------
    msg_drop_prob: float = 0.0
    msg_dup_prob: float = 0.0
    msg_delay_prob: float = 0.0
    #: Extra delivery latency for delayed messages, and the lag of the
    #: second copy of a duplicated one.
    msg_delay_us: float = ms(2)
    #: Global-time window inside which the stochastic network faults are
    #: active (one-shot faults carry their own times).
    net_window_us: tuple[float, float] = (0.0, float("inf"))

    # -- control-pipe loss (task → pmd → co-scheduler messages) ---------
    pipe_loss_prob: float = 0.0

    # -- scheduled one-shot faults --------------------------------------
    node_faults: tuple[NodeFaultSpec, ...] = ()
    cosched_faults: tuple[CoschedFaultSpec, ...] = ()

    # -- timesync loss ---------------------------------------------------
    #: When set, the switch global clock fails at this instant: node
    #: time-of-day clocks jump apart (accumulated unseen drift / a broken
    #: NTP slam) and begin free-drifting at per-node rates.
    timesync_loss_at_us: Optional[float] = None
    #: Max magnitude of the per-node clock step at loss (µs).
    clock_jump_us: float = ms(100)
    #: Max magnitude of per-node clock drift after loss (µs per µs).
    clock_drift_rate: float = 1e-4

    # -- resilience responses -------------------------------------------
    #: Sender-side point-to-point timeout + retransmit (capped exponential
    #: backoff).  Installed per job world when faults are enabled.
    retransmit_enabled: bool = True
    retransmit_timeout_us: float = ms(10)
    retransmit_backoff: float = 2.0
    retransmit_max_timeout_us: float = ms(160)
    #: Attempt number at which the retransmit bypasses injection entirely
    #: (the adapter's link-level guarantee) — this bounds loss, so
    #: collectives cannot deadlock even at ``msg_drop_prob=1``.
    retransmit_max_attempts: int = 6
    #: Per-node watchdog that restarts a dead/hung co-scheduler daemon and
    #: re-registers its tasks over the control pipe.
    watchdog_enabled: bool = True
    watchdog_interval_us: float = s(1)
    #: Heartbeat staleness (in co-scheduler periods) past which the daemon
    #: is declared hung and restarted.
    watchdog_staleness_periods: float = 2.5
    #: On detected timesync loss the co-scheduler degrades to free-running
    #: windows (keeps cycling on its own drifting clock) instead of
    #: re-aligning to a bogus grid.
    degrade_on_timesync_loss: bool = True

    def __post_init__(self) -> None:
        for name in ("msg_drop_prob", "msg_dup_prob", "msg_delay_prob", "pipe_loss_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        lo, hi = self.net_window_us
        if hi < lo:
            raise ValueError("net_window_us must be (lo, hi) with hi >= lo")
        if self.msg_delay_us < 0 or self.clock_jump_us < 0 or self.clock_drift_rate < 0:
            raise ValueError("fault magnitudes must be >= 0")
        if lo < 0:
            raise ValueError("net_window_us must not start before t=0")
        if self.timesync_loss_at_us is not None and self.timesync_loss_at_us < 0:
            raise ValueError("timesync_loss_at_us must be >= 0")
        if self.retransmit_timeout_us <= 0 or self.retransmit_backoff < 1.0:
            raise ValueError("retransmit_timeout_us > 0 and backoff >= 1 required")
        if self.retransmit_max_attempts < 1:
            raise ValueError("retransmit_max_attempts must be >= 1")
        if self.watchdog_interval_us <= 0 or self.watchdog_staleness_periods <= 0:
            raise ValueError("watchdog parameters must be positive")

    @property
    def any_net_faults(self) -> bool:
        return self.msg_drop_prob > 0 or self.msg_dup_prob > 0 or self.msg_delay_prob > 0

    def validate_targets(self, n_nodes: int) -> None:
        """Reject fault specs aimed at nodes the cluster does not have.

        Per-spec validation (``__post_init__``) can only check ``node >= 0``
        — the cluster size is unknown at config construction.  The fault
        injector calls this with the real node count, so a generated or
        hand-written schedule targeting a phantom node fails fast with a
        clear message instead of corrupting a run (or KeyError-ing deep
        inside an event callback mid-simulation).
        """
        bad = sorted(
            {s.node for s in self.node_faults if s.node >= n_nodes}
            | {s.node for s in self.cosched_faults if s.node >= n_nodes}
        )
        if bad:
            raise ValueError(
                f"fault specs target unknown node(s) {bad}: "
                f"cluster has {n_nodes} node(s), valid ids are 0..{n_nodes - 1}"
            )


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint/restart policy for long simulation runs.

    With ``enabled=False`` (the default) nothing is installed: no manager,
    no invariant walks, no extra events — runs stay bit-identical to a
    config without this section (the same zero-overhead invariant the
    fault layer holds).  Cadence can be driven by simulated time
    (``interval_sim_us``), wall-clock time (``interval_wall_s``), or both;
    whichever fires first at a checkpoint opportunity wins.  Snapshots are
    written atomically (temp file + ``os.replace``) and pruned to the
    newest ``keep_last``.

    ``sanitize`` enables the per-event invariant sanitizer
    (:class:`repro.checkpoint.monitor.InvariantMonitor` installed on
    ``Simulator.on_event``) — expensive, for debugging; the default is
    invariant checks only at checkpoint boundaries
    (``check_invariants``).  ``verify_on_restore`` replays the restored
    run to the snapshot time and refuses to continue unless the state
    fingerprint matches bit-for-bit.
    """

    enabled: bool = False
    #: Checkpoint every N simulated microseconds (None = no sim cadence).
    interval_sim_us: Optional[float] = None
    #: Checkpoint every N wall-clock seconds (None = no wall cadence).
    interval_wall_s: Optional[float] = None
    #: Number of most-recent snapshots retained on disk.
    keep_last: int = 2
    #: Run the full invariant suite before each snapshot is written.
    check_invariants: bool = True
    #: Per-event sanitizer mode (orders of magnitude slower; debugging).
    sanitize: bool = False
    #: Verify the replayed state fingerprint against the snapshot's.
    verify_on_restore: bool = True

    def __post_init__(self) -> None:
        if self.interval_sim_us is not None and self.interval_sim_us <= 0:
            raise ValueError("interval_sim_us must be positive when set")
        if self.interval_wall_s is not None and self.interval_wall_s <= 0:
            raise ValueError("interval_wall_s must be positive when set")
        if self.keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        if self.enabled and self.interval_sim_us is None and self.interval_wall_s is None:
            raise ValueError(
                "enabled checkpointing needs interval_sim_us and/or interval_wall_s"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to instantiate a cluster run."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    mpi: MpiConfig = field(default_factory=MpiConfig)
    cosched: CoschedConfig = field(default_factory=CoschedConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    seed: int = 0

    def replace(self, **kwargs) -> "ClusterConfig":
        """Return a copy with the given top-level sections swapped."""
        return replace(self, **kwargs)
