"""repro — parallel-aware OS co-scheduling, reproduced in simulation.

A reproduction of *"Improving the Scalability of Parallel Jobs by adding
Parallel Awareness to the Operating System"* (Jones et al., SC 2003): a
discrete-event simulator of AIX-class SMP cluster scheduling, the daemon
interference ecology, an MPI runtime whose collectives block on real
scheduling, the paper's priority-cycling co-scheduler, and a vectorised
large-scale model that regenerates the paper's figures.

Quick tour (see ``examples/quickstart.py``)::

    from repro import (ClusterConfig, KernelConfig, CoschedConfig, System,
                       standard_noise, run_aggregate_trace)

    config = ClusterConfig(kernel=KernelConfig.prototype(),
                           cosched=CoschedConfig(enabled=True),
                           noise=standard_noise())
    system = System(config)
    result = run_aggregate_trace(system, n_ranks=32, tasks_per_node=16)

Layers (bottom-up): :mod:`repro.sim` (event engine), :mod:`repro.kernel`
(dispatcher/ticks/preemption), :mod:`repro.machine` (nodes/cluster),
:mod:`repro.daemons` (noise + I/O service), :mod:`repro.net`,
:mod:`repro.mpi`, :mod:`repro.trace`, :mod:`repro.cosched` (the paper's
contribution), :mod:`repro.apps`, :mod:`repro.analytic`,
:mod:`repro.experiments` (one runner per paper figure/table).
"""

from repro.config import (
    ClusterConfig,
    CoschedConfig,
    DaemonSpec,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NetworkConfig,
    NoiseConfig,
    PRIO_DAEMON_SYSTEM,
    PRIO_IDLE,
    PRIO_NORMAL,
    PRIO_USER_TIMESHARED,
)
from repro.apps import (
    AggregateTraceConfig,
    Ale3dConfig,
    BspConfig,
    run_aggregate_trace,
    run_ale3d,
    run_bsp,
)
from repro.daemons import IoService, install_noise, standard_noise
from repro.daemons.catalog import scale_noise
from repro.machine import Cluster, Placement
from repro.mpi import MpiApi, MpiJob, MpiWorld
from repro.cosched import JobCoscheduler, PoePriorityFile
from repro.analytic import AllreduceSeriesModel, fit_linear, fit_log
from repro.system import System
from repro.trace import TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "ClusterConfig",
    "MachineConfig",
    "KernelConfig",
    "NetworkConfig",
    "MpiConfig",
    "CoschedConfig",
    "NoiseConfig",
    "DaemonSpec",
    "PRIO_NORMAL",
    "PRIO_DAEMON_SYSTEM",
    "PRIO_USER_TIMESHARED",
    "PRIO_IDLE",
    # machine + system
    "Cluster",
    "Placement",
    "System",
    "TraceRecorder",
    # noise
    "standard_noise",
    "scale_noise",
    "install_noise",
    "IoService",
    # MPI
    "MpiWorld",
    "MpiApi",
    "MpiJob",
    # co-scheduler
    "JobCoscheduler",
    "PoePriorityFile",
    # applications
    "AggregateTraceConfig",
    "run_aggregate_trace",
    "Ale3dConfig",
    "run_ale3d",
    "BspConfig",
    "run_bsp",
    # analytic model
    "AllreduceSeriesModel",
    "fit_linear",
    "fit_log",
]
