"""Switch-clock synchronisation of node time-of-day clocks.

Paper §4: "On startup, the daemon compares the low order portion of the
switch clock register with the low order bits of the AIX time of day
value, and changes the AIX time of day so that the low order bits of AIX
and the switch clock match."  After startup, all nodes agree to within the
register read error, and the co-scheduler windows — computed independently
per node from local clock second boundaries — coincide cluster-wide.

The cluster constructor applies this at boot when the co-scheduler is
configured with ``sync_clock``; this module provides the same operation as
a standalone, testable function (and documents the NTP caveat: "naturally,
NTP must be turned off, since it is also trying to adjust the AIX clock").
"""

from __future__ import annotations

from repro.net.switch import SwitchClock

__all__ = ["synchronize_node_clock", "TimesyncMonitor"]


class TimesyncMonitor:
    """Health probe over the switch clock register.

    The co-scheduler daemon polls :meth:`ok` at cycle boundaries (the
    paper's daemon re-reads the register anyway); once the register has
    failed the probe reports loss and the daemon degrades to free-running
    windows.  Kept as an object so a restarted daemon inherits the same
    probe.
    """

    def __init__(self, switch: SwitchClock) -> None:
        self.switch = switch
        #: Number of health checks performed (tests/stats).
        self.checks = 0

    def ok(self) -> bool:
        """One health check: True while the register still answers."""
        self.checks += 1
        return not self.switch.failed


def synchronize_node_clock(
    switch: SwitchClock,
    raw_offset_us: float,
    global_now: float = 0.0,
    ntp_running: bool = False,
) -> float:
    """Return the node's post-sync clock offset from global time.

    The node reads the switch register (global time ± read error) and slews
    its time-of-day to match; the residual offset is exactly the read
    error of that one register read.  ``raw_offset_us`` — the node's
    pre-sync drift — is discarded by the slew, which is the whole point.

    Raises if NTP is still running: the two adjusters fight, and the paper
    requires NTP off.
    """
    if ntp_running:
        raise RuntimeError("NTP must be turned off before switch-clock synchronisation")
    register = switch.read(global_now)
    # The node sets local = register at this instant, so thereafter
    # local - global = register - global_now (= the read error).
    del raw_offset_us
    return register - global_now
