"""The ``/etc/poe.priority`` administrative interface.

Paper §4: "The POE administrative interface is a file (/etc/poe.priority)
that is root-only writable, and is assumed to be the same on each node.
Each record in the file identifies a priority class name, user ID, and
scheduling parameters … A user wishing to have a job controlled by the
co-scheduler sets the POE environment variable MP_PRIORITY=<class>.  At
job start, the administrative file is searched for a match of priority
class and user ID.  If there is a match, the co-scheduler is started.
Otherwise, an attention message is printed and the job runs as if no
priority had been requested."

File format (one record per line, ``#`` comments allowed)::

    <class> <user> <favored> <unfavored> <period_seconds> <duty_percent>

e.g. the paper's benchmark settings::

    premium jones 30 100 5 90
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import CoschedConfig
from repro.units import s

__all__ = ["PriorityRecord", "PoePriorityFile"]


@dataclass(frozen=True)
class PriorityRecord:
    """One admin-file record."""

    klass: str
    user: str
    favored: int
    unfavored: int
    period_s: float
    duty_percent: float

    def to_config(self, **overrides) -> CoschedConfig:
        """Build the co-scheduler schedule this record authorises."""
        kwargs = dict(
            enabled=True,
            favored_priority=self.favored,
            unfavored_priority=self.unfavored,
            period_us=s(self.period_s),
            duty_cycle=self.duty_percent / 100.0,
        )
        kwargs.update(overrides)
        return CoschedConfig(**kwargs)


class PoePriorityFile:
    """Parsed ``/etc/poe.priority`` contents."""

    def __init__(self, records: list[PriorityRecord]) -> None:
        self.records = records

    @classmethod
    def parse(cls, text: str) -> "PoePriorityFile":
        records = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 6:
                raise ValueError(
                    f"/etc/poe.priority line {lineno}: expected 6 fields, got {len(parts)}"
                )
            klass, user = parts[0], parts[1]
            try:
                favored, unfavored = int(parts[2]), int(parts[3])
                period_s_, duty_pct = float(parts[4]), float(parts[5])
            except ValueError as exc:
                raise ValueError(f"/etc/poe.priority line {lineno}: {exc}") from exc
            if not 0 <= favored <= 127 or not 0 <= unfavored <= 127:
                raise ValueError(f"/etc/poe.priority line {lineno}: priority out of range")
            if not 0 < duty_pct <= 100:
                raise ValueError(f"/etc/poe.priority line {lineno}: duty percent out of range")
            if period_s_ <= 0:
                raise ValueError(f"/etc/poe.priority line {lineno}: period must be positive")
            records.append(PriorityRecord(klass, user, favored, unfavored, period_s_, duty_pct))
        return cls(records)

    @classmethod
    def load(cls, path) -> "PoePriorityFile":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.parse(fh.read())

    def match(self, klass: str, user: str) -> Optional[PriorityRecord]:
        """First record matching (class, user), as at job start.

        Returns None when no record matches — the job then "runs as if no
        priority had been requested".
        """
        for rec in self.records:
            if rec.klass == klass and rec.user == user:
                return rec
        return None
