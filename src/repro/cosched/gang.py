"""Gang scheduling: the related-work baseline (paper §6, category 1).

Gang schedulers (the LLNL Gang Scheduler, Concurrent Gang) multi-program
two or more parallel jobs by giving each job the whole machine for a time
slot, rotating on synchronised boundaries — classic quanta are minutes
(NQS on the Paragon defaulted to 10).  The paper positions its own work
against this: gang quanta are far too coarse to address context-switch
interference *within* a slot, but gangs do solve the problem this module
demonstrates — two fine-grain jobs timesharing a machine uncoordinated
destroy each other, because an Allreduce needs all of a job's ranks
scheduled simultaneously and uncoordinated equal-priority rotation almost
never lines them up.

Mechanics mirror the co-scheduler's: one daemon per node flips priorities
on boundaries of the synchronised clock, so slots coincide cluster-wide
with no daemon-to-daemon communication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PRIO_NORMAL
from repro.kernel.thread import Compute, SleepUntil, Thread, ThreadState
from repro.machine.cluster import Cluster
from repro.machine.node import Node
from repro.mpi.world import MpiJob
from repro.units import ms, s

__all__ = ["GangConfig", "GangScheduler", "NodeGangScheduler"]


@dataclass(frozen=True)
class GangConfig:
    """Gang rotation parameters.

    Production quanta are minutes; simulations compress (state it when
    reporting).  Priorities reuse the co-scheduler bands: the in-slot job
    is favored, out-of-slot jobs wait unfavored.
    """

    slot_us: float = s(60)
    favored_priority: int = 30
    unfavored_priority: int = 100
    self_priority: int = 12
    flip_cost_us: float = 40.0

    def __post_init__(self) -> None:
        if self.slot_us <= 0:
            raise ValueError("slot_us must be positive")
        if not 0 <= self.favored_priority <= 127:
            raise ValueError("favored_priority out of range")
        if not 0 <= self.unfavored_priority <= 127:
            raise ValueError("unfavored_priority out of range")


class NodeGangScheduler:
    """Per-node slot rotation daemon over the jobs hosted on this node."""

    def __init__(
        self, cluster: Cluster, node: Node, config: GangConfig, n_jobs: int
    ) -> None:
        self.cluster = cluster
        self.node = node
        self.config = config
        self.n_jobs = n_jobs
        #: job index -> tasks of that job on this node.
        self.job_tasks: dict[int, list[Thread]] = {j: [] for j in range(n_jobs)}
        self._done = False
        self.slots_run = 0
        self.thread = node.scheduler.spawn(
            self._body(),
            name="gangd",
            priority=config.self_priority,
            affinity_cpu=0,
            category="cosched",
            allow_steal=True,
        )

    def register(self, job_index: int, task: Thread) -> None:
        """Add a task of job *job_index* to this node's rotation."""
        self.job_tasks[job_index].append(task)

    def finish(self) -> None:
        """All jobs done: stop rotating and restore normal priorities."""
        self._done = True

    def _apply_slot(self, active_job: int) -> None:
        for j, tasks in self.job_tasks.items():
            prio = (
                self.config.favored_priority
                if j == active_job
                else self.config.unfavored_priority
            )
            for task in tasks:
                if task.state is not ThreadState.FINISHED:
                    self.node.scheduler.set_priority(task, prio)

    def _body(self):
        cfg = self.config
        node = self.node
        sim = self.cluster.sim
        while not self._done:
            # Slot index from the synchronised local clock: all nodes
            # agree without communicating.
            local = node.local_time(sim.now)
            slot_idx = int(local // cfg.slot_us)
            self._apply_slot(slot_idx % self.n_jobs)
            yield Compute(cfg.flip_cost_us)
            self.slots_run += 1
            next_boundary = node.global_time((slot_idx + 1) * cfg.slot_us)
            yield SleepUntil(max(next_boundary, sim.now))
        for tasks in self.job_tasks.values():
            for task in tasks:
                if task.state is not ThreadState.FINISHED:
                    node.scheduler.set_priority(task, PRIO_NORMAL)


class GangScheduler:
    """Cluster-wide gang scheduling over co-located MPI jobs.

    Jobs must already be launched (their placements may overlap: two
    16-task jobs on one 16-CPU node timeshare each CPU).  The scheduler
    watches for completion and releases the rotation when every job is
    done.
    """

    def __init__(self, cluster: Cluster, jobs: list[MpiJob], config: GangConfig) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        self.cluster = cluster
        self.jobs = jobs
        self.config = config
        node_ids = sorted(
            {
                job.placement.node_of(r)
                for job in jobs
                for r in range(job.placement.n_ranks)
            }
        )
        self.node_gangs = {
            n: NodeGangScheduler(cluster, cluster.nodes[n], config, len(jobs))
            for n in node_ids
        }
        for j, job in enumerate(jobs):
            for rank in range(job.placement.n_ranks):
                node = job.placement.node_of(rank)
                self.node_gangs[node].register(j, job.world.rank_threads[rank])
        self._watch()

    def _watch(self) -> None:
        if all(job.done for job in self.jobs):
            for ng in self.node_gangs.values():
                ng.finish()
            return
        self.cluster.sim.schedule(self.config.slot_us / 4.0, self._watch)
