"""Demand-based (dynamic) co-scheduling: the NOW-lineage baseline.

The paper's related work (§6, category 3) covers co-schedulers built for
networks of workstations — [Sobalvarro97]'s dynamic co-scheduling and its
relatives — which infer that a process should run *now* from communication
events: an arriving message boosts the recipient's priority for a short
quantum, so communicating peers drift into alignment without any global
clock.  The paper's critique is positional, not technical: those systems
optimise machine-wide fairness/throughput, while dedicated HPC jobs need
the whole working set scheduled simultaneously, which message-driven
boosting only approximates.

This implementation makes that comparison runnable (experiment E8): boosts
ride the MPI world's message-arrival hook; each boost decays back to the
task's base priority after a quantum unless refreshed by further traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PRIO_NORMAL
from repro.kernel.thread import Thread, ThreadState
from repro.machine.cluster import Cluster
from repro.mpi.world import MpiJob
from repro.units import ms

__all__ = ["DemandConfig", "DemandCoscheduler"]


@dataclass(frozen=True)
class DemandConfig:
    """Dynamic co-scheduling parameters.

    ``boost_priority`` must outrank the daemon band (56) to matter but
    should stay below hard-real-time territory; the classic systems used
    modest boosts with quanta around a scheduling timeslice.
    """

    boost_priority: int = 45
    base_priority: int = PRIO_NORMAL
    quantum_us: float = ms(10)

    def __post_init__(self) -> None:
        if not 0 <= self.boost_priority <= 127:
            raise ValueError("boost_priority out of range")
        if self.boost_priority >= self.base_priority:
            raise ValueError("boost must be numerically below the base priority")
        if self.quantum_us <= 0:
            raise ValueError("quantum_us must be positive")


class DemandCoscheduler:
    """Message-arrival-driven priority boosting for one job's tasks."""

    def __init__(self, cluster: Cluster, job: MpiJob, config: DemandConfig | None = None) -> None:
        self.cluster = cluster
        self.job = job
        self.config = config if config is not None else DemandConfig()
        self._decay_evs: dict[int, object] = {}  # tid -> event
        self.boosts = 0
        if job.world.arrival_listener is not None:
            raise RuntimeError("job already has an arrival listener")
        job.world.arrival_listener = self._on_arrival

    def _scheduler_for(self, task: Thread):
        return self.cluster.nodes[task.node_id].scheduler

    def _on_arrival(self, msg) -> None:
        task = self.job.world.rank_threads.get(msg.dst)
        if task is None or task.state is ThreadState.FINISHED:
            return
        sched = self._scheduler_for(task)
        if task.priority != self.config.boost_priority:
            sched.set_priority(task, self.config.boost_priority)
            self.boosts += 1
        old = self._decay_evs.pop(task.tid, None)
        if old is not None:
            old.cancel()
        self._decay_evs[task.tid] = self.cluster.sim.schedule(
            self.config.quantum_us, self._decay, task
        )

    def _decay(self, task: Thread) -> None:
        self._decay_evs.pop(task.tid, None)
        if task.state is not ThreadState.FINISHED:
            self._scheduler_for(task).set_priority(task, self.config.base_priority)

    def detach(self) -> None:
        """Unhook and restore base priorities (end of experiment)."""
        self.job.world.arrival_listener = None
        for ev in self._decay_evs.values():
            ev.cancel()
        self._decay_evs.clear()
        for task in self.job.tasks:
            if task.state is not ThreadState.FINISHED:
                self._scheduler_for(task).set_priority(task, self.config.base_priority)
