"""The per-node co-scheduler daemon and its job-level installer.

Mechanics reproduced from paper §4:

* One daemon per node, running at an "even more favored priority" but
  asleep almost always.
* It cycles the registered tasks' priorities between favored and
  unfavored values; the cycle has a configured period and duty cycle and
  is aligned so periods end on *second boundaries of the synchronised
  clock* — which is what makes the windows coincide across nodes with no
  daemon-to-daemon communication.
* Task discovery is the **control-pipe protocol**: when a task calls MPI
  init, its PID travels over a pipe to the Partition Manager Daemon (pmd)
  and onward to the co-scheduler, which adds it to its scheduling list.
  We model the pipe as a small delivery latency.
* The **attach/detach API**: a task may ask (again via the pipe) to be
  released from co-scheduling around I/O phases and re-attached after;
  the co-scheduler "acts on the request when it sees it" — here, at its
  next window boundary.
* When the job ends, the co-scheduler notices its processes are gone and
  exits.
"""

from __future__ import annotations

from typing import Optional

from repro.config import CoschedConfig, PRIO_NORMAL
from repro.kernel.thread import Compute, SleepUntil, Thread, ThreadState
from repro.machine.cluster import Cluster
from repro.machine.node import Node
from repro.mpi.world import MpiJob
from repro.units import SEC

__all__ = ["NodeCoscheduler", "JobCoscheduler"]

#: Default one-way latency of the task → pmd → co-scheduler pipe hop.
#: The live knob is ``CoschedConfig.pipe_latency_us`` (same default); this
#: module constant remains as the canonical number for tests and docs.
PIPE_LATENCY_US = 250.0


class NodeCoscheduler:
    """Priority-cycling daemon for the tasks of one job on one node."""

    def __init__(self, cluster: Cluster, node: Node, config: CoschedConfig, job_name: str) -> None:
        self.cluster = cluster
        self.node = node
        self.config = config
        self.tasks: list[Thread] = []
        self.detached: set[int] = set()  # tids
        #: Tasks currently inside a declared fine-grain region (tids).
        self.fine_grain: set[int] = set()
        #: Current window: "favored", "unfavored", or "idle" before start.
        self.window = "idle"
        self._pending: list[tuple[str, Thread]] = []
        self._job_done = False
        #: Number of completed favor/unfavor cycles (tests, stats).
        self.cycles = 0
        #: Liveness: local time of the daemon's last useful wake.  A
        #: watchdog declares the daemon hung when this goes stale.
        self.heartbeat = cluster.sim.now
        #: Optional timesync health probe (installed by the fault injector);
        #: ``None`` means "trust the grid" — the pre-fault behaviour.
        self.sync_check = None
        #: Called once (with this daemon) when timesync loss is detected
        #: and the daemon degrades to free-running windows.
        self.on_degrade = None
        #: Degraded mode: cycle on our own, ignoring the (lost) global
        #: grid — each node free-runs with its own phase, which is exactly
        #: the paper's uncoordinated-baseline pathology.
        self.free_running = False
        self._hang_until = float("-inf")
        self.thread = node.scheduler.spawn(
            self._body(),
            name=f"cosched.{job_name}",
            priority=config.self_priority,
            affinity_cpu=0,
            category="cosched",
            allow_steal=True,
        )

    # -- control-pipe endpoints ----------------------------------------
    def pipe_register(self, task: Thread) -> None:
        """Task PID arrives over the pmd pipe: co-schedule it from now on."""
        self._pending.append(("register", task))

    def pipe_detach(self, task: Thread) -> None:
        """Detach request arrives over the pipe (applied at next flip)."""
        self._pending.append(("detach", task))

    def pipe_attach(self, task: Thread) -> None:
        """Attach request arrives over the pipe (applied at next flip)."""
        self._pending.append(("attach", task))

    def job_finished(self) -> None:
        """Signal that the job's processes are gone; exit at next wake."""
        self._job_done = True

    def knows(self, task: Thread) -> bool:
        """Is *task* registered (or registering)?  Watchdog audit hook."""
        return task in self.tasks or any(
            kind == "register" and t is task for kind, t in self._pending
        )

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: window bookkeeping and membership.

        Membership sets hold tids, which aren't stable across rebuilds —
        they go through ``desc.tid`` so the restored-and-replayed daemon
        compares equal to the uninterrupted one.
        """
        return {
            "node": self.node.id,
            "window": self.window,
            "cycles": self.cycles,
            "heartbeat": self.heartbeat,
            "free_running": self.free_running,
            "hang_until": self._hang_until,
            "job_done": self._job_done,
            "tasks": [desc.thread(t) for t in self.tasks],
            "detached": sorted(filter(None, (desc.tid(t) for t in self.detached))),
            "fine_grain": sorted(filter(None, (desc.tid(t) for t in self.fine_grain))),
            "pending": [[kind, desc.thread(t)] for kind, t in self._pending],
            "thread": desc.thread(self.thread),
        }

    def hang_for(self, duration_us: float) -> None:
        """Fault injection: wedge the daemon for *duration_us* from now.

        The daemon absorbs the hang at its next wake (a stuck syscall —
        flips stop, heartbeat goes stale, the thread stays alive).  Only
        heartbeat staleness can detect this state.
        """
        self._hang_until = max(self._hang_until, self.cluster.sim.now + duration_us)

    def _absorb_hang(self):
        while self.cluster.sim.now < self._hang_until:
            yield SleepUntil(self._hang_until)

    def _check_timesync(self) -> None:
        """Poll the timesync probe; degrade to free-running on failure."""
        if self.free_running or self.sync_check is None:
            return
        if not self.sync_check():
            self.free_running = True
            if self.on_degrade is not None:
                self.on_degrade(self)

    # -- fine-grain region hints (paper §7 future work) -------------------
    def set_fine_grain(self, task: Thread, active: bool) -> None:
        """MPI-library doorbell: *task* entered/left a fine-grain region.

        Unlike attach/detach (administrative, routed through the pipe and
        applied at window boundaries), region hints bracket sub-millisecond
        collective phases, so they act immediately — the "mechanism for
        parallel applications to establish when they are entering and
        exiting fine-grain regions" the paper's future work calls for.
        Only meaningful with ``fine_grain_only`` schedules.
        """
        if active:
            self.fine_grain.add(task.tid)
        else:
            self.fine_grain.discard(task.tid)
        if (
            self.config.fine_grain_only
            and self.window == "favored"
            and task in self.tasks
            and task.tid not in self.detached
            and task.state is not ThreadState.FINISHED
        ):
            self.node.scheduler.set_priority(task, self._priority_for(task, "favored"))

    # -- schedule --------------------------------------------------------
    def _drain_pipe(self) -> None:
        """Apply queued registrations / attach / detach requests."""
        for kind, task in self._pending:
            if kind == "register":
                if task not in self.tasks:
                    self.tasks.append(task)
            elif kind == "detach":
                self.detached.add(task.tid)
                if task.state is not ThreadState.FINISHED:
                    self.node.scheduler.set_priority(task, PRIO_NORMAL)
            elif kind == "attach":
                self.detached.discard(task.tid)
        self._pending.clear()

    def _priority_for(self, task: Thread, window: str) -> int:
        if window == "favored":
            if self.config.fine_grain_only and task.tid not in self.fine_grain:
                return PRIO_NORMAL
            return self.config.favored_priority
        return self.config.unfavored_priority

    def _set_all(self, window: str) -> None:
        self.window = window
        for task in self.tasks:
            if task.tid in self.detached or task.state is ThreadState.FINISHED:
                continue
            self.node.scheduler.set_priority(task, self._priority_for(task, window))

    def _body(self):
        cfg = self.config
        sim = self.cluster.sim
        node = self.node
        period = cfg.period_us

        def grid_boundary_after(global_t: float) -> float:
            """Next cycle boundary (local-clock grid) strictly after *global_t*.

            Boundaries sit at local times k·period; with period an integral
            number of seconds each one lands on a second boundary, per the
            paper's alignment rule.
            """
            local = node.local_time(global_t)
            k = int(local // period) + 1
            return node.global_time(k * period)

        if cfg.align_to_second:
            start = grid_boundary_after(sim.now)
        else:
            start = sim.now + period
        yield SleepUntil(start)

        while not self._job_done:
            yield from self._absorb_hang()
            self.heartbeat = sim.now
            self._check_timesync()
            # ---- favored window ---------------------------------------
            self._drain_pipe()
            self._set_all("favored")
            yield Compute(cfg.flip_cost_us)
            favor_end = sim.now + cfg.favored_window_us
            if cfg.align_to_second and not self.free_running:
                # Keep the grid: unfavor at cycle_start + duty·period of
                # the local grid, not drifted by our own costs.
                local = node.local_time(sim.now)
                cycle_start = (local // period) * period
                favor_end = node.global_time(cycle_start + cfg.favored_window_us)
                if favor_end <= sim.now:
                    favor_end = sim.now
            yield SleepUntil(favor_end)
            if self._job_done:
                break
            yield from self._absorb_hang()
            self.heartbeat = sim.now
            # ---- unfavored window -------------------------------------
            self._drain_pipe()
            self._set_all("unfavored")
            yield Compute(cfg.flip_cost_us)
            if cfg.align_to_second and not self.free_running:
                next_cycle = grid_boundary_after(sim.now)
            else:
                next_cycle = sim.now + cfg.unfavored_window_us
            yield SleepUntil(next_cycle)
            self.cycles += 1

        # Job over: restore anything still alive and exit (paper: "the
        # co-scheduler knows that the processes have gone away, and exits").
        self.window = "idle"
        for task in self.tasks:
            if task.tid not in self.detached and task.state is not ThreadState.FINISHED:
                self.node.scheduler.set_priority(task, PRIO_NORMAL)


class _ControlPipe:
    """The task-side handle MpiApi uses for co-scheduler requests."""

    def __init__(self, job_cosched: "JobCoscheduler", rank: int) -> None:
        self._jc = job_cosched
        self._rank = rank

    def request_detach(self, rank: int) -> None:
        self._jc._send_pipe("detach", rank)

    def request_attach(self, rank: int) -> None:
        self._jc._send_pipe("attach", rank)

    def fine_grain(self, rank: int, active: bool) -> None:
        # Region hints use the fast path (a shared-memory doorbell, not
        # the pmd pipe): collective phases are sub-millisecond, and a
        # piped hint would arrive after the region ended.
        jc = self._jc
        nc = jc.node_coscheds[jc.job.placement.node_of(rank)]
        nc.set_fine_grain(jc.job.world.rank_threads[rank], active)


class JobCoscheduler:
    """Installs one :class:`NodeCoscheduler` per job node and wires the
    control-pipe registration protocol.

    Matches paper startup: "when a parallel job starts … and requests that
    it be controlled by the co-scheduler, a daemon process is started on
    each node for the exclusive purpose of scheduling the dispatching
    priorities of the tasks of the job running on that node."
    """

    def __init__(
        self,
        cluster: Cluster,
        job: MpiJob,
        config: Optional[CoschedConfig] = None,
        pipe_filter=None,
    ) -> None:
        self.cluster = cluster
        self.job = job
        self.config = config if config is not None else cluster.config.cosched
        if not self.config.enabled:
            raise ValueError("JobCoscheduler requires CoschedConfig.enabled")
        #: Optional lossy-pipe hook (fault injection): called per control
        #: message; returning False means the message is lost in the pipe.
        self.pipe_filter = pipe_filter
        #: Daemon restarts performed via :meth:`restart_node` (watchdog).
        self.restarts = 0
        # Under parallel DES only the owned shard block gets daemons —
        # remote job nodes are co-scheduled by the shard that owns them.
        job_nodes = sorted(
            {
                job.placement.node_of(r)
                for r in range(job.placement.n_ranks)
                if cluster.owns_node(job.placement.node_of(r))
            }
        )
        self.node_coscheds: dict[int, NodeCoscheduler] = {
            n: NodeCoscheduler(cluster, cluster.nodes[n], self.config, job.name)
            for n in job_nodes
        }
        # MPI-init registration: each task's PID flows over the control
        # pipe shortly after spawn.
        for rank in job.local_ranks:
            nc = self.node_coscheds[job.placement.node_of(rank)]
            task = job.world.rank_threads[rank]
            self._pipe_send(nc, nc.pipe_register, task)
            job.apis[rank].cosched_control = _ControlPipe(self, rank)
        # Poll for job completion so node daemons can exit.
        self._watch_job()

    def _watch_job(self) -> None:
        if self.job.done:
            for nc in self.node_coscheds.values():
                nc.job_finished()
            return
        self.cluster.sim.schedule(self.config.period_us / 4.0, self._watch_job)

    def _pipe_send(self, nc: NodeCoscheduler, method, task: Thread) -> None:
        """Deliver one control-pipe message (subject to injected loss).

        *nc* names the node daemon the pipe belongs to, so the loss hook
        can draw from that node's own fault stream.
        """
        if self.pipe_filter is not None and not self.pipe_filter(nc.node.id):
            return
        self.cluster.sim.schedule(self.config.pipe_latency_us, method, task)

    def _send_pipe(self, kind: str, rank: int) -> None:
        nc = self.node_coscheds[self.job.placement.node_of(rank)]
        task = self.job.world.rank_threads[rank]
        method = nc.pipe_detach if kind == "detach" else nc.pipe_attach
        self._pipe_send(nc, method, task)

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: restart count plus every node daemon's state."""
        return {
            "restarts": self.restarts,
            "nodes": [
                [n, nc.snapshot_state(desc)]
                for n, nc in sorted(self.node_coscheds.items())
            ],
        }

    # ------------------------------------------------------------------
    # Watchdog support
    # ------------------------------------------------------------------
    def node_tasks(self, node_id: int) -> list[Thread]:
        """The job's task threads placed on *node_id*."""
        placement = self.job.placement
        return [
            self.job.world.rank_threads[r]
            for r in range(placement.n_ranks)
            if placement.node_of(r) == node_id
        ]

    def restart_node(self, node_id: int) -> NodeCoscheduler:
        """Replace a dead/hung node daemon and re-register its tasks.

        The watchdog's recovery action: kill whatever is left of the old
        daemon, start a fresh one (same config — it re-aligns to the grid
        on its own, or free-runs if timesync was already lost), and replay
        each live task's registration over the control pipe.
        """
        old = self.node_coscheds[node_id]
        node = self.cluster.nodes[node_id]
        if old.thread.state is not ThreadState.FINISHED:
            node.scheduler.kill(old.thread)
        nc = NodeCoscheduler(self.cluster, node, self.config, self.job.name)
        nc.sync_check = old.sync_check
        nc.on_degrade = old.on_degrade
        nc.free_running = old.free_running
        nc.detached = set(old.detached)
        self.node_coscheds[node_id] = nc
        self.restarts += 1
        if self.job.done:
            nc.job_finished()
        for task in self.node_tasks(node_id):
            if task.state is not ThreadState.FINISHED:
                self._pipe_send(nc, nc.pipe_register, task)
        return nc
