"""The parallel-aware co-scheduler — the paper's core contribution (§4).

One daemon per node cycles the dispatch priorities of a parallel job's
tasks between a favored and an unfavored value on a schedule aligned, via
the switch global clock, to the same wall-clock instants on every node —
"with no inter-node communication required between the co-scheduler
daemons".  System daemons are thereby denied CPU for most of each period,
their work piling up and then executing *simultaneously* cluster-wide in
the short unfavored window, which converts scattered interference into
overlapped interference.

* :mod:`repro.cosched.admin` — the ``/etc/poe.priority`` administrative
  file: root-writable records of (class, user, priorities, schedule), with
  the ``MP_PRIORITY`` matching semantics;
* :mod:`repro.cosched.timesync` — switch-clock synchronisation of node
  time-of-day clocks;
* :mod:`repro.cosched.coscheduler` — the per-node daemon, the pmd
  control-pipe registration protocol, and the attach/detach escape API
  applications use around I/O phases.
"""

from repro.cosched.admin import PoePriorityFile, PriorityRecord
from repro.cosched.coscheduler import JobCoscheduler, NodeCoscheduler
from repro.cosched.timesync import synchronize_node_clock

__all__ = [
    "PoePriorityFile",
    "PriorityRecord",
    "NodeCoscheduler",
    "JobCoscheduler",
    "synchronize_node_clock",
]
