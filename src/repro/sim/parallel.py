"""Conservative parallel DES: shard the cluster across worker processes.

The serial engine (:mod:`repro.sim.core`) stays the bit-identical
reference oracle; this module adds a **conservative synchronous-window**
parallel mode on top of it, in the classic null-message family (CMB):
instead of per-channel null messages, a coordinator broadcasts the global
lower bound every superstep — equivalent to each shard sending a null
message carrying ``next_event_time + lookahead`` to every peer, with the
coordinator folding the min.

How a superstep works
---------------------
Each shard owns a contiguous block of cluster nodes (:class:`ShardPlan`)
and runs an unmodified serial :class:`~repro.sim.core.Simulator` over the
*full* cluster structure (non-owned nodes are built — construction
schedules no events and fixes RNG draw order — but get no threads, so
they are inert).  Cross-shard MPI sends become timestamped envelopes in a
:class:`~repro.sim.shard.ShardRouter` outbox instead of local schedules.
The coordinator repeats:

1. collect each shard's next-event time and undelivered envelopes;
2. ``N  = min(next-event times ∪ pending envelope arrivals)``
   ``H' = N + L``  where ``L`` is the fabric's minimum cross-node wire
   latency over the window — ``NetworkConfig.latency_at(N)``, further
   clamped by any scheduled latency change that takes effect inside the
   window (adaptive lookahead: degraded links shrink the window);
3. deliver pending envelopes (sorted canonically by
   ``(arrival, src_node, link_seq)``) and let every shard run events
   strictly ``< H'`` in parallel (:meth:`Simulator.run_until_before`).

Safety: every event fired in the window has ``t ≥ N``.  A message sent
at ``t`` before a latency change at ``C`` pays the pre-change latency
``l_old ≥ L`` so arrives ``≥ N + L = H'``; one sent at ``t ≥ C`` pays
``l_new``, and if ``C ≤ H' = N + min(l_old, l_new, …)`` then
``t + l_new ≥ C + l_new > H'`` — either way outside the window, hence no
shard can receive a message from the past.  Envelope arrivals are
likewise ``≥ H'``, so delivering them at the barrier (``now = H'``)
never schedules into the past.

Determinism: the window boundary sequence is a pure function of the
global event stream, per-shard event order is the serial engine's total
``(time, priority, seq)`` order, cross-shard deliveries are sorted
canonically before scheduling, and all runtime randomness comes from
shard-stable named streams — including per-link message-fault draws,
per-node pipe-loss draws, and the retransmit layer's ack traffic (see
:mod:`repro.sim.shard`).  Sharded runs therefore reproduce the serial
oracle's **result digest byte-for-byte** — enforced by
``tests/test_parallel_des.py`` and the CI ``parallel-des-smoke`` /
``shard-chaos-smoke`` jobs.

What sharded mode rejects (:func:`validate_sharded_config`): hardware
collectives only — the switch-combine path schedules cross-node arrivals
at half a wire hop, under the conservative lookahead.  Everything else —
stochastic network faults, pipe loss, timesync loss, the retransmit
layer, scheduled node/co-scheduler faults — runs sharded with serial
digests.

Worker supervision
------------------
With forked workers, the coordinator is also a supervisor: worker pipes
are multiplexed with process sentinels and per-``heartbeat_s`` worker
heartbeats, so a crashed worker (pipe EOF / sentinel) or a stalled one
(no traffic for ``hang_timeout_s`` — then SIGKILL) is detected at the
barrier.  Recovery respawns the shard from its spec and **replays** the
full superstep history (windows + incoming envelopes, which the
coordinator retains); construction pins RNG draw order, so the replayed
shard reaches the last completed barrier bit-identically and the current
window is reissued.  Retries are bounded (``max_respawns``, exponential
``respawn_backoff_s``); exhausting them raises
:class:`ShardFailureError` with structured ``details`` instead of
hanging.  The ``harness.shard.kill.<shard>`` chaos axis
(:func:`repro.chaos.harness_faults.shard_kill_plan`) drives exactly this
path in CI, asserting chaos-run digests equal clean-run digests.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import os
import signal
import threading
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.config import ClusterConfig
from repro.results import canonical_dumps
from repro.sim.meanfield import MeanFieldConfig
from repro.sim.shard import ShardPlan, ShardRouter
from repro.units import s

__all__ = [
    "ParallelRunResult",
    "ShardFailureError",
    "ShardPlan",
    "ShardRouter",
    "ShardSpec",
    "ShardWorkerDied",
    "ShardWorkerHung",
    "run_parallel",
    "validate_sharded_config",
]


class ShardWorkerDied(RuntimeError):
    """A forked shard worker exited or its pipe broke (recoverable)."""


class ShardWorkerHung(RuntimeError):
    """A forked shard worker went silent past the hang deadline
    (recoverable; the supervisor SIGKILLs it first)."""


class ShardFailureError(RuntimeError):
    """A shard could not be recovered within the respawn budget.

    ``details`` is a structured post-mortem: the shard, the budget, the
    window being attempted, how many supersteps had completed, and the
    per-attempt failure causes — what the chaos journal records instead
    of a hang.
    """

    def __init__(
        self,
        shard_id: int,
        attempts: int,
        window: Optional[float],
        supersteps: int,
        causes: list[str],
    ) -> None:
        self.details = {
            "shard_id": shard_id,
            "attempts": attempts,
            "window": window,
            "supersteps": supersteps,
            "causes": list(causes),
        }
        super().__init__(
            f"shard {shard_id} unrecoverable after {attempts} respawn attempt(s) "
            f"at superstep {supersteps}: {causes[-1] if causes else 'no attempts allowed'}"
        )


def validate_sharded_config(config: ClusterConfig, n_shards: int) -> None:
    """Reject configurations whose semantics cannot survive sharding.

    Raises ``ValueError`` naming the offending knob.  The only model
    restriction left is the hardware-collective path, whose
    switch-combine hop is *shorter* than the conservative lookahead
    (sub-lookahead switch combining stays out of scope); the serial
    engine remains available for it.  Stochastic faults, pipe loss,
    timesync loss, and the retransmit layer all shard cleanly — their
    randomness comes from per-link / per-node shard-stable streams and
    acks ride the cross-shard channel.
    """
    if n_shards < 1:
        raise ValueError(f"shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return
    if n_shards > config.machine.n_nodes:
        raise ValueError(
            f"shards ({n_shards}) cannot exceed cluster nodes ({config.machine.n_nodes})"
        )
    if config.network.latency_us <= 0:
        raise ValueError(
            "sharded DES needs positive cross-node latency for lookahead; "
            f"network.latency_us={config.network.latency_us}"
        )
    if config.mpi.algorithm == "hardware":
        raise ValueError(
            "mpi.algorithm='hardware' is not shardable: the switch-combine "
            "path schedules cross-node arrivals at half a wire hop, under "
            "the conservative lookahead (sub-lookahead switch combining is "
            "out of scope); use the serial engine"
        )


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard worker needs to build and drive its slice.

    Picklable by construction (the app is a ``"module:attr"`` reference,
    resolved inside the worker), so the same spec drives the in-process
    host, the forked worker, and a supervisor **respawn** identically —
    respawn-and-replay determinism rests on the spec being the whole
    input.
    """

    config: ClusterConfig
    plan: ShardPlan
    shard_id: int
    n_ranks: int
    tasks_per_node: int
    app: str
    app_params: dict = field(default_factory=dict)
    meanfield: Optional[MeanFieldConfig] = None
    job_name: str = "pdes"


def _resolve_app(ref: str, params: dict):
    """Resolve ``"module:attr"`` to the app provider and instantiate it.

    The provider is called with *params* and must return an object with a
    ``body_factory(rank, api)`` generator factory and a ``collect()``
    returning ``{"ranks": {str(rank): jsonable}, "ok": bool}`` for the
    ranks that ran locally.
    """
    mod_name, _, attr = ref.partition(":")
    if not mod_name or not attr:
        raise ValueError(f"app must be 'module:attr', got {ref!r}")
    provider = getattr(importlib.import_module(mod_name), attr)
    return provider(dict(params))


class ShardHost:
    """One shard, driven in-process (also the body of the forked worker).

    Splitting :meth:`step_send` / :meth:`step_recv` lets the coordinator
    issue the window to every shard before collecting any reply, so real
    worker processes overlap; for the in-process host the work happens in
    ``step_send`` and ``step_recv`` just returns it.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.system import System  # deferred: System imports this package

        validate_sharded_config(spec.config, spec.plan.n_shards)
        self.spec = spec
        self.app = _resolve_app(spec.app, spec.app_params)
        self.system = System(
            spec.config,
            shard=(spec.shard_id, spec.plan),
            meanfield=spec.meanfield,
        )
        self.router = self.system.cluster.router
        self.job = self.system.launch(
            spec.n_ranks,
            spec.tasks_per_node,
            self.app.body_factory,
            name=spec.job_name,
        )
        self._pending = None

    # -- superstep protocol -------------------------------------------
    def ready(self) -> tuple:
        """Initial report: ``(next_event_time, local_done, events)``."""
        return (self.system.sim.peek_time(), self.job.local_done, 0)

    def step_send(self, horizon: float, incoming: list[tuple]) -> None:
        """Deliver *incoming* envelopes, then run the window ``[now, horizon)``."""
        from repro.sim.core import EventPriority

        sim = self.system.sim
        router = self.router
        # Canonical delivery order: (arrival, src_node, link_seq) is
        # globally unique, so the schedule (and hence heap seq) order of
        # same-instant cross-shard arrivals is shard-count independent.
        for env in sorted(incoming, key=lambda e: e[:3]):
            arrival, _src, _seq, world_uid, _dst, payload = env
            router.received += 1
            sim.schedule_at(
                arrival,
                router.deliver_target(world_uid),
                payload,
                priority=EventPriority.MESSAGE,
            )
        processed = sim.run_until_before(horizon)
        self._pending = (
            sim.peek_time(),
            router.drain(),
            self.job.local_done,
            processed,
        )

    def step_recv(self) -> tuple:
        """``(next_event_time, outbox, local_done, events_processed)``."""
        out, self._pending = self._pending, None
        return out

    def collect(self) -> dict:
        """Local results after the job's owned ranks all finished."""
        inj = self.system.injector
        rel = self.job.world.reliability
        counters = {
            "retransmits": rel.retransmits if rel else 0,
            "forced": rel.forced if rel else 0,
            "gaveup": rel.gaveup if rel else 0,
            "duplicates_dropped": rel.duplicates_dropped if rel else 0,
            "net_drops": inj.net_plane.drops if inj and inj.net_plane else 0,
            "net_dups": inj.net_plane.dups if inj and inj.net_plane else 0,
            "net_delays": inj.net_plane.delays if inj and inj.net_plane else 0,
            "pipe_losses": inj.pipe_losses if inj else 0,
            "watchdog_restarts": (
                sum(w.restarts for w in inj.watchdogs) if inj else 0
            ),
            "degradation_events": (
                sum(1 for e in inj.events if e.kind == "timesync_degraded")
                if inj
                else 0
            ),
        }
        return {
            "app": self.app.collect(),
            "finish_times": {str(r): t for r, t in sorted(self.job._finish_times.items())},
            "start_time": self.job.start_time,
            "events": self.system.sim.events_processed,
            "sent": self.router.sent,
            "received": self.router.received,
            "counters": counters,
        }

    def close(self) -> None:
        """Nothing to release in-process (symmetry with _ProcessHost)."""

    def kill(self) -> None:
        """Nothing to kill in-process (symmetry with _ProcessHost)."""


def _shard_worker_main(conn, spec: ShardSpec, heartbeat_s: float = 5.0) -> None:
    """Forked worker: serve the superstep protocol over a duplex pipe.

    A daemon thread sends ``("hb", None)`` every *heartbeat_s* so the
    supervisor can tell "computing a long window" from "stopped/dead";
    the lock serializes heartbeats against protocol replies.
    """
    lock = threading.Lock()
    stop = threading.Event()

    def _send(obj) -> None:
        with lock:
            conn.send(obj)

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                _send(("hb", None))
            except OSError:  # parent gone; main thread will notice too
                return

    beat = threading.Thread(target=_beat, daemon=True)
    beat.start()
    try:
        host = ShardHost(spec)
        _send(("ready", host.ready()))
        while True:
            msg = conn.recv()
            if msg[0] == "step":
                host.step_send(msg[1], msg[2])
                _send(("state", host.step_recv()))
            elif msg[0] == "collect":
                _send(("result", host.collect()))
            elif msg[0] == "exit":
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown directive {msg[0]!r}")
    except BaseException:
        try:
            _send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            pass
    finally:
        stop.set()
        with lock:
            conn.close()


class _ProcessHost:
    """Pipe-and-fork wrapper presenting the :class:`ShardHost` protocol.

    Every receive multiplexes the worker pipe with the process sentinel
    and enforces the hang deadline, so worker death surfaces as
    :class:`ShardWorkerDied` and silence as :class:`ShardWorkerHung`
    (after a SIGKILL) instead of blocking the coordinator forever.
    """

    def __init__(
        self,
        spec: ShardSpec,
        ctx,
        heartbeat_s: float = 5.0,
        hang_timeout_s: Optional[float] = 120.0,
    ) -> None:
        self.spec = spec
        self.hang_timeout_s = hang_timeout_s
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_shard_worker_main, args=(child, spec, heartbeat_s), daemon=True
        )
        self.proc.start()
        child.close()
        self._ready = self._recv("ready")

    def _recv(self, expect: str):
        from multiprocessing import connection as _mpc

        sid = self.spec.shard_id
        deadline = (
            _time.monotonic() + self.hang_timeout_s
            if self.hang_timeout_s is not None
            else None
        )
        while True:
            timeout = (
                None if deadline is None else max(0.0, deadline - _time.monotonic())
            )
            ready = _mpc.wait([self.conn, self.proc.sentinel], timeout=timeout)
            if not ready:
                self.kill()
                raise ShardWorkerHung(
                    f"shard {sid} silent for {self.hang_timeout_s}s; killed"
                )
            if self.conn in ready:
                try:
                    kind, payload = self.conn.recv()
                except (EOFError, OSError) as exc:
                    raise ShardWorkerDied(
                        f"shard {sid} worker pipe closed mid-reply ({exc!r})"
                    ) from None
                if kind == "hb":
                    if deadline is not None:
                        deadline = _time.monotonic() + self.hang_timeout_s
                    continue
                if kind == "error":
                    raise RuntimeError(f"shard worker failed:\n{payload}")
                if kind != expect:  # pragma: no cover - protocol bug
                    raise RuntimeError(f"expected {expect!r} from worker, got {kind!r}")
                return payload
            # Sentinel fired with nothing left in the pipe: the worker is
            # gone without even an error report (SIGKILL, OOM, segfault).
            self.proc.join(timeout=5)
            raise ShardWorkerDied(
                f"shard {sid} worker died (exit code {self.proc.exitcode})"
            )

    def ready(self) -> tuple:
        return self._ready

    def step_send(self, horizon: float, incoming: list[tuple]) -> None:
        try:
            self.conn.send(("step", horizon, incoming))
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerDied(
                f"shard {self.spec.shard_id} worker pipe closed on send ({exc!r})"
            ) from None

    def step_recv(self) -> tuple:
        return self._recv("state")

    def collect(self) -> dict:
        try:
            self.conn.send(("collect", None))
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerDied(
                f"shard {self.spec.shard_id} worker pipe closed on send ({exc!r})"
            ) from None
        return self._recv("result")

    def close(self) -> None:
        try:
            self.conn.send(("exit", None))
        except (BrokenPipeError, OSError):
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.proc.join(timeout=30)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.kill()
            self.proc.join(timeout=5)

    def kill(self) -> None:
        """Hard stop: SIGKILL (covers SIGSTOPped workers too) and reap."""
        try:
            if self.proc.is_alive():
                self.proc.kill()
            self.proc.join(timeout=10)
        finally:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass


@dataclass
class ParallelRunResult:
    """Merged outcome of one sharded run.

    ``digest`` covers only shard-count-invariant result data (per-rank
    series, correctness flag, job timing) — per-shard event counts and
    superstep counts are reported for inspection but excluded, because a
    shard whose ranks finish early retires its co-scheduler earlier than
    the serial schedule would, which shifts background-only events
    without touching any rank-visible timing.  ``counters`` (summed
    fault/resilience counters) IS shard-count invariant; ``recoveries``
    (supervisor respawns) is an execution-substrate fact and excluded.
    """

    shards: int
    n_ranks: int
    elapsed_us: float
    ranks: dict
    ok: bool
    events_per_shard: list[int]
    messages_crossed: int
    supersteps: int
    lookahead_us: float
    wall_s: float = 0.0
    counters: dict = field(default_factory=dict)
    recoveries: int = 0

    @property
    def events_total(self) -> int:
        return sum(self.events_per_shard)

    def digest_payload(self) -> dict:
        """The rank-visible outcome — the part that is shard-count
        invariant by construction (per-shard event counts are not:
        shard-local job completion retires background threads on a
        different schedule than the serial global-done order)."""
        return {
            "n_ranks": self.n_ranks,
            "ranks": self.ranks,
            "ok": self.ok,
            "elapsed_us": self.elapsed_us,
        }

    @property
    def digest(self) -> str:
        return hashlib.sha256(
            canonical_dumps(self.digest_payload()).encode()
        ).hexdigest()


def run_parallel(
    config: ClusterConfig,
    n_ranks: int,
    tasks_per_node: int,
    app: str,
    app_params: Optional[dict] = None,
    shards: int = 1,
    horizon_us: float = s(600),
    meanfield: Optional[MeanFieldConfig] = None,
    use_processes: Optional[bool] = None,
    job_name: str = "pdes",
    max_respawns: int = 3,
    respawn_backoff_s: float = 0.05,
    hang_timeout_s: Optional[float] = 120.0,
    heartbeat_s: float = 5.0,
    shard_chaos_seed: Optional[int] = None,
    _superstep_hook: Optional[Callable[[int, list], None]] = None,
) -> ParallelRunResult:
    """Run *app* over *config* with the cluster sharded *shards* ways.

    ``use_processes=None`` forks real workers when ``shards > 1`` and
    runs in-process for ``shards == 1``; pass ``False`` to drive every
    shard in-process (identical event semantics — the processes are a
    wall-clock lever, not a correctness one — and what the hypothesis
    equivalence suite uses to keep hundreds of examples cheap).

    With forked workers the coordinator supervises them: crashes and
    hangs are recovered by respawn + deterministic replay of the
    superstep history, up to *max_respawns* attempts per incident with
    exponential *respawn_backoff_s*; exhaustion raises
    :class:`ShardFailureError`.  *shard_chaos_seed* arms the
    ``harness.shard.kill.<shard>`` axis, SIGKILLing workers pre/mid
    window per their deterministic plans (forked workers only).
    *_superstep_hook* is test/chaos instrumentation: called as
    ``hook(superstep_index, hosts)`` at the top of every superstep.
    """
    validate_sharded_config(config, shards)
    n_nodes = config.machine.n_nodes
    job_nodes = min(n_nodes, -(-n_ranks // tasks_per_node))
    plan = ShardPlan.for_placement(
        n_nodes, shards, job_nodes=job_nodes, tasks_per_node=tasks_per_node
    )
    net = config.network
    app_params = app_params or {}
    specs = [
        ShardSpec(
            config=config,
            plan=plan,
            shard_id=sid,
            n_ranks=n_ranks,
            tasks_per_node=tasks_per_node,
            app=app,
            app_params=app_params,
            meanfield=meanfield,
            job_name=job_name,
        )
        for sid in range(shards)
    ]
    if use_processes is None:
        use_processes = shards > 1

    kill_plans: dict = {}
    kills_done: dict = {}
    if shard_chaos_seed is not None:
        if not use_processes:
            raise ValueError(
                "shard_chaos_seed kills worker processes; it requires "
                "use_processes=True (in-process hosts have nothing to kill)"
            )
        from repro.chaos.harness_faults import shard_kill_plan

        kill_plans = {
            sid: shard_kill_plan(shard_chaos_seed, sid) for sid in range(shards)
        }
        kills_done = {sid: 0 for sid in range(shards)}

    wall0 = _time.perf_counter()
    if use_processes:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context("spawn")
    else:
        ctx = None

    def _spawn(sid: int):
        if use_processes:
            return _ProcessHost(
                specs[sid], ctx, heartbeat_s=heartbeat_s, hang_timeout_s=hang_timeout_s
            )
        return ShardHost(specs[sid])

    hosts: list = []
    #: Completed supersteps: (window, incoming-envelopes-per-shard) — the
    #: deterministic replay script a respawned shard is driven through.
    history: list[tuple[float, list[list]]] = []
    recoveries = 0

    def _respawn_and_replay(
        sid: int,
        window: Optional[float] = None,
        incoming: Optional[list] = None,
        causes: tuple = (),
    ):
        """Respawn shard *sid*, replay history, optionally reissue the
        current window; returns its reply (None in the collect phase)."""
        nonlocal recoveries
        causes = list(causes)
        for attempt in range(max_respawns):
            _time.sleep(respawn_backoff_s * (2**attempt))
            nh = None
            try:
                nh = _spawn(sid)
                for w, inc in history:
                    nh.step_send(w, inc[sid])
                    nh.step_recv()  # discard: outputs already routed
                if window is None:
                    reply = None
                else:
                    nh.step_send(window, incoming)
                    reply = nh.step_recv()
            except (ShardWorkerDied, ShardWorkerHung) as exc:
                causes.append(f"respawn attempt {attempt + 1}: {exc}")
                if nh is not None:
                    nh.kill()
                continue
            hosts[sid] = nh
            recoveries += 1
            return reply
        raise ShardFailureError(
            shard_id=sid,
            attempts=max_respawns,
            window=window,
            supersteps=len(history),
            causes=causes,
        )

    def _recover(sid: int, window: Optional[float], incoming: Optional[list], exc):
        hosts[sid].kill()
        return _respawn_and_replay(
            sid, window, incoming,
            causes=(f"superstep {len(history)}: {exc}",),
        )

    def _maybe_kill(sid: int, point: str) -> None:
        plan_k = kill_plans.get(sid)
        if plan_k is None or plan_k.mode is None or kills_done[sid] >= plan_k.kills:
            return
        if len(history) >= plan_k.window and point == plan_k.point:
            kills_done[sid] += 1
            os.kill(hosts[sid].proc.pid, signal.SIGKILL)

    ok_exit = False
    lookahead_min: Optional[float] = None
    try:
        for sid in range(shards):
            hosts.append(_spawn(sid))
        next_ts: list[Optional[float]] = []
        done = []
        events = [0] * shards
        for h in hosts:
            nt, dn, ev = h.ready()
            next_ts.append(nt)
            done.append(dn)
        pending: list[list[tuple]] = [[] for _ in range(shards)]
        crossed = 0
        while sum(done) < n_ranks:
            candidates = [t for t in next_ts if t is not None]
            candidates += [env[0] for envs in pending for env in envs]
            if not candidates:
                raise RuntimeError(
                    f"parallel deadlock: {sum(done)}/{n_ranks} ranks finished "
                    "with no pending events or messages"
                )
            frontier = min(candidates)
            if frontier >= horizon_us:
                raise RuntimeError(
                    f"job {job_name!r} incomplete at horizon {horizon_us}: "
                    f"{sum(done)}/{n_ranks} ranks finished"
                )
            # Adaptive lookahead: the latency in force at the frontier,
            # clamped by any scheduled change landing inside the window
            # (see the safety argument in the module docstring).
            lookahead = net.latency_at(frontier)
            for at_us, lat in net.latency_changes:
                if frontier < at_us <= frontier + net.latency_at(frontier):
                    lookahead = min(lookahead, lat)
            lookahead_min = (
                lookahead if lookahead_min is None else min(lookahead_min, lookahead)
            )
            window = frontier + lookahead
            if _superstep_hook is not None:
                _superstep_hook(len(history), hosts)
            snapshot = [list(p) for p in pending]
            replies: list = [None] * shards
            for sid in range(shards):
                _maybe_kill(sid, "pre")
                try:
                    hosts[sid].step_send(window, snapshot[sid])
                except (ShardWorkerDied, ShardWorkerHung) as exc:
                    replies[sid] = _recover(sid, window, snapshot[sid], exc)
                pending[sid] = []
            for sid in range(shards):
                _maybe_kill(sid, "mid")
            for sid in range(shards):
                if replies[sid] is None:
                    try:
                        replies[sid] = hosts[sid].step_recv()
                    except (ShardWorkerDied, ShardWorkerHung) as exc:
                        replies[sid] = _recover(sid, window, snapshot[sid], exc)
                nt, outbox, dn, _proc = replies[sid]
                next_ts[sid] = nt
                done[sid] = dn
                for env in outbox:
                    pending[plan.shard_of(env[4])].append(env)
                    crossed += 1
            history.append((window, snapshot))

        merged_ranks: dict = {}
        counters: dict = {}
        ok = True
        finish = []
        start = []
        for sid in range(shards):
            try:
                res = hosts[sid].collect()
            except (ShardWorkerDied, ShardWorkerHung) as exc:
                _recover(sid, None, None, exc)
                res = hosts[sid].collect()
            merged_ranks.update(res["app"]["ranks"])
            ok = ok and res["app"]["ok"]
            finish.extend(res["finish_times"].values())
            start.append(res["start_time"])
            events[sid] = res["events"]
            for k, v in res.get("counters", {}).items():
                counters[k] = counters.get(k, 0) + v
        ok_exit = True
    finally:
        for h in hosts:
            try:
                if ok_exit:
                    h.close()
                else:
                    h.kill()
            except Exception:  # pragma: no cover - cleanup best-effort
                pass

    return ParallelRunResult(
        shards=shards,
        n_ranks=n_ranks,
        elapsed_us=max(finish) - min(start),
        ranks=merged_ranks,
        ok=ok,
        events_per_shard=events,
        messages_crossed=crossed,
        supersteps=len(history),
        lookahead_us=lookahead_min if lookahead_min is not None else net.latency_at(0.0),
        wall_s=_time.perf_counter() - wall0,
        counters=counters,
        recoveries=recoveries,
    )
