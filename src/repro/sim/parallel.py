"""Conservative parallel DES: shard the cluster across worker processes.

The serial engine (:mod:`repro.sim.core`) stays the bit-identical
reference oracle; this module adds a **conservative synchronous-window**
parallel mode on top of it, in the classic null-message family (CMB):
instead of per-channel null messages, a coordinator broadcasts the global
lower bound every superstep — equivalent to each shard sending a null
message carrying ``next_event_time + lookahead`` to every peer, with the
coordinator folding the min.

How a superstep works
---------------------
Each shard owns a contiguous block of cluster nodes (:class:`ShardPlan`)
and runs an unmodified serial :class:`~repro.sim.core.Simulator` over the
*full* cluster structure (non-owned nodes are built — construction
schedules no events and fixes RNG draw order — but get no threads, so
they are inert).  Cross-shard MPI sends become timestamped envelopes in a
:class:`~repro.sim.shard.ShardRouter` outbox instead of local schedules.
The coordinator repeats:

1. collect each shard's next-event time and undelivered envelopes;
2. ``N  = min(next-event times ∪ pending envelope arrivals)``
   ``H' = N + L``  where ``L`` is the fabric's minimum cross-node wire
   time (``NetworkConfig.latency_us`` — the LogP latency floor, since
   ``p2p_time = latency + bytes·G ≥ latency`` for remote messages);
3. deliver pending envelopes (sorted canonically by
   ``(arrival, src_node, link_seq)``) and let every shard run events
   strictly ``< H'`` in parallel (:meth:`Simulator.run_until_before`).

Safety: every event fired in the window has ``t ≥ N``, so any message it
sends arrives at ``t + L ≥ H'`` — outside the window — hence no shard can
receive a message from the past.  Envelope arrivals are likewise
``≥ H'``, so delivering them at the barrier (``now = H'``) never schedules
into the past.

Determinism: the window boundary sequence is a pure function of the
global event stream, per-shard event order is the serial engine's total
``(time, priority, seq)`` order, cross-shard deliveries are sorted
canonically before scheduling, and all runtime randomness comes from
shard-stable named streams (see :mod:`repro.sim.shard`).  Sharded runs
therefore reproduce the serial oracle's **result digest byte-for-byte**
— enforced by ``tests/test_parallel_des.py`` and the CI
``parallel-des-smoke`` job.

What sharded mode rejects (:func:`validate_sharded_config`): hardware
collectives (the switch-combine path schedules cross-node arrivals at
half a hop, under the lookahead), stochastic network faults / pipe loss /
timesync loss (drawn from global event-order streams), and the
retransmit layer (its acks would need their own channel).  Deterministic
scheduled node/co-scheduler faults are supported — they are node-local
with fixed firing times.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.config import ClusterConfig
from repro.results import canonical_dumps
from repro.sim.meanfield import MeanFieldConfig
from repro.sim.shard import ShardPlan, ShardRouter
from repro.units import s

__all__ = [
    "ParallelRunResult",
    "ShardPlan",
    "ShardRouter",
    "ShardSpec",
    "run_parallel",
    "validate_sharded_config",
]


def validate_sharded_config(config: ClusterConfig, n_shards: int) -> None:
    """Reject configurations whose semantics cannot survive sharding.

    Raises ``ValueError`` naming the offending knob.  Everything rejected
    here either bypasses the fabric lookahead or draws from a global
    stream in event order (not shard-stable); the serial engine remains
    available for all of it.
    """
    if n_shards < 1:
        raise ValueError(f"shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return
    if n_shards > config.machine.n_nodes:
        raise ValueError(
            f"shards ({n_shards}) cannot exceed cluster nodes ({config.machine.n_nodes})"
        )
    if config.network.latency_us <= 0:
        raise ValueError(
            "sharded DES needs positive cross-node latency for lookahead; "
            f"network.latency_us={config.network.latency_us}"
        )
    if config.mpi.algorithm == "hardware":
        raise ValueError(
            "mpi.algorithm='hardware' is not shardable: the switch-combine "
            "path schedules cross-node arrivals at half a wire hop, under "
            "the conservative lookahead; use the serial engine"
        )
    f = config.faults
    if f.enabled:
        if f.any_net_faults:
            raise ValueError(
                "stochastic network faults (msg_drop/dup/delay_prob) draw "
                "from global event-order streams and are not shard-stable; "
                "use the serial engine or scheduled node/cosched faults"
            )
        if f.pipe_loss_prob > 0:
            raise ValueError("pipe_loss_prob draws in event order; not shardable")
        if f.timesync_loss_at_us is not None:
            raise ValueError(
                "timesync loss makes runtime switch-clock reads draw in "
                "event order; not shardable"
            )
        if f.retransmit_enabled:
            raise ValueError(
                "retransmit layer is not shardable (its acks bypass the "
                "cross-shard channel); set FaultConfig.retransmit_enabled=False"
            )


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard worker needs to build and drive its slice.

    Picklable by construction (the app is a ``"module:attr"`` reference,
    resolved inside the worker), so the same spec drives the in-process
    host and the forked worker identically.
    """

    config: ClusterConfig
    plan: ShardPlan
    shard_id: int
    n_ranks: int
    tasks_per_node: int
    app: str
    app_params: dict = field(default_factory=dict)
    meanfield: Optional[MeanFieldConfig] = None
    job_name: str = "pdes"


def _resolve_app(ref: str, params: dict):
    """Resolve ``"module:attr"`` to the app provider and instantiate it.

    The provider is called with *params* and must return an object with a
    ``body_factory(rank, api)`` generator factory and a ``collect()``
    returning ``{"ranks": {str(rank): jsonable}, "ok": bool}`` for the
    ranks that ran locally.
    """
    mod_name, _, attr = ref.partition(":")
    if not mod_name or not attr:
        raise ValueError(f"app must be 'module:attr', got {ref!r}")
    provider = getattr(importlib.import_module(mod_name), attr)
    return provider(dict(params))


class ShardHost:
    """One shard, driven in-process (also the body of the forked worker).

    Splitting :meth:`step_send` / :meth:`step_recv` lets the coordinator
    issue the window to every shard before collecting any reply, so real
    worker processes overlap; for the in-process host the work happens in
    ``step_send`` and ``step_recv`` just returns it.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.system import System  # deferred: System imports this package

        validate_sharded_config(spec.config, spec.plan.n_shards)
        self.spec = spec
        self.app = _resolve_app(spec.app, spec.app_params)
        self.system = System(
            spec.config,
            shard=(spec.shard_id, spec.plan),
            meanfield=spec.meanfield,
        )
        self.router = self.system.cluster.router
        self.job = self.system.launch(
            spec.n_ranks,
            spec.tasks_per_node,
            self.app.body_factory,
            name=spec.job_name,
        )
        self._pending = None

    # -- superstep protocol -------------------------------------------
    def ready(self) -> tuple:
        """Initial report: ``(next_event_time, local_done, events)``."""
        return (self.system.sim.peek_time(), self.job.local_done, 0)

    def step_send(self, horizon: float, incoming: list[tuple]) -> None:
        """Deliver *incoming* envelopes, then run the window ``[now, horizon)``."""
        from repro.sim.core import EventPriority

        sim = self.system.sim
        router = self.router
        # Canonical delivery order: (arrival, src_node, link_seq) is
        # globally unique, so the schedule (and hence heap seq) order of
        # same-instant cross-shard arrivals is shard-count independent.
        for env in sorted(incoming, key=lambda e: e[:3]):
            arrival, _src, _seq, world_uid, _dst, payload = env
            router.received += 1
            sim.schedule_at(
                arrival,
                router.deliver_target(world_uid),
                payload,
                priority=EventPriority.MESSAGE,
            )
        processed = sim.run_until_before(horizon)
        self._pending = (
            sim.peek_time(),
            router.drain(),
            self.job.local_done,
            processed,
        )

    def step_recv(self) -> tuple:
        """``(next_event_time, outbox, local_done, events_processed)``."""
        out, self._pending = self._pending, None
        return out

    def collect(self) -> dict:
        """Local results after the job's owned ranks all finished."""
        return {
            "app": self.app.collect(),
            "finish_times": {str(r): t for r, t in sorted(self.job._finish_times.items())},
            "start_time": self.job.start_time,
            "events": self.system.sim.events_processed,
            "sent": self.router.sent,
            "received": self.router.received,
        }

    def close(self) -> None:
        """Nothing to release in-process (symmetry with _ProcessHost)."""


def _shard_worker_main(conn, spec: ShardSpec) -> None:
    """Forked worker: serve the superstep protocol over a duplex pipe."""
    try:
        host = ShardHost(spec)
        conn.send(("ready", host.ready()))
        while True:
            msg = conn.recv()
            if msg[0] == "step":
                host.step_send(msg[1], msg[2])
                conn.send(("state", host.step_recv()))
            elif msg[0] == "collect":
                conn.send(("result", host.collect()))
            elif msg[0] == "exit":
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown directive {msg[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            pass
    finally:
        conn.close()


class _ProcessHost:
    """Pipe-and-fork wrapper presenting the :class:`ShardHost` protocol."""

    def __init__(self, spec: ShardSpec, ctx) -> None:
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_shard_worker_main, args=(child, spec), daemon=True
        )
        self.proc.start()
        child.close()
        self._ready = self._recv("ready")

    def _recv(self, expect: str):
        kind, payload = self.conn.recv()
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        if kind != expect:  # pragma: no cover - protocol bug
            raise RuntimeError(f"expected {expect!r} from worker, got {kind!r}")
        return payload

    def ready(self) -> tuple:
        return self._ready

    def step_send(self, horizon: float, incoming: list[tuple]) -> None:
        self.conn.send(("step", horizon, incoming))

    def step_recv(self) -> tuple:
        return self._recv("state")

    def collect(self) -> dict:
        self.conn.send(("collect", None))
        return self._recv("result")

    def close(self) -> None:
        try:
            self.conn.send(("exit", None))
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.proc.join(timeout=30)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.terminate()
            self.proc.join(timeout=5)


@dataclass
class ParallelRunResult:
    """Merged outcome of one sharded run.

    ``digest`` covers only shard-count-invariant result data (per-rank
    series, correctness flag, job timing) — per-shard event counts and
    superstep counts are reported for inspection but excluded, because a
    shard whose ranks finish early retires its co-scheduler earlier than
    the serial schedule would, which shifts background-only events
    without touching any rank-visible timing.
    """

    shards: int
    n_ranks: int
    elapsed_us: float
    ranks: dict
    ok: bool
    events_per_shard: list[int]
    messages_crossed: int
    supersteps: int
    lookahead_us: float
    wall_s: float = 0.0

    @property
    def events_total(self) -> int:
        return sum(self.events_per_shard)

    def digest_payload(self) -> dict:
        """The rank-visible outcome — the part that is shard-count
        invariant by construction (per-shard event counts are not:
        shard-local job completion retires background threads on a
        different schedule than the serial global-done order)."""
        return {
            "n_ranks": self.n_ranks,
            "ranks": self.ranks,
            "ok": self.ok,
            "elapsed_us": self.elapsed_us,
        }

    @property
    def digest(self) -> str:
        return hashlib.sha256(
            canonical_dumps(self.digest_payload()).encode()
        ).hexdigest()


def run_parallel(
    config: ClusterConfig,
    n_ranks: int,
    tasks_per_node: int,
    app: str,
    app_params: Optional[dict] = None,
    shards: int = 1,
    horizon_us: float = s(600),
    meanfield: Optional[MeanFieldConfig] = None,
    use_processes: Optional[bool] = None,
    job_name: str = "pdes",
) -> ParallelRunResult:
    """Run *app* over *config* with the cluster sharded *shards* ways.

    ``use_processes=None`` forks real workers when ``shards > 1`` and
    runs in-process for ``shards == 1``; pass ``False`` to drive every
    shard in-process (identical event semantics — the processes are a
    wall-clock lever, not a correctness one — and what the hypothesis
    equivalence suite uses to keep hundreds of examples cheap).
    """
    validate_sharded_config(config, shards)
    plan = ShardPlan(n_nodes=config.machine.n_nodes, n_shards=shards)
    lookahead = config.network.latency_us
    app_params = app_params or {}
    specs = [
        ShardSpec(
            config=config,
            plan=plan,
            shard_id=sid,
            n_ranks=n_ranks,
            tasks_per_node=tasks_per_node,
            app=app,
            app_params=app_params,
            meanfield=meanfield,
            job_name=job_name,
        )
        for sid in range(shards)
    ]
    if use_processes is None:
        use_processes = shards > 1
    import time as _time

    wall0 = _time.perf_counter()
    if use_processes:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context("spawn")
        hosts: list = [_ProcessHost(sp, ctx) for sp in specs]
    else:
        hosts = [ShardHost(sp) for sp in specs]

    try:
        next_ts: list[Optional[float]] = []
        done = []
        events = [0] * shards
        for h in hosts:
            nt, dn, ev = h.ready()
            next_ts.append(nt)
            done.append(dn)
        pending: list[list[tuple]] = [[] for _ in range(shards)]
        supersteps = 0
        crossed = 0
        while sum(done) < n_ranks:
            candidates = [t for t in next_ts if t is not None]
            candidates += [env[0] for envs in pending for env in envs]
            if not candidates:
                raise RuntimeError(
                    f"parallel deadlock: {sum(done)}/{n_ranks} ranks finished "
                    "with no pending events or messages"
                )
            frontier = min(candidates)
            if frontier >= horizon_us:
                raise RuntimeError(
                    f"job {job_name!r} incomplete at horizon {horizon_us}: "
                    f"{sum(done)}/{n_ranks} ranks finished"
                )
            window = frontier + lookahead
            for sid, h in enumerate(hosts):
                h.step_send(window, pending[sid])
                pending[sid] = []
            for sid, h in enumerate(hosts):
                nt, outbox, dn, _proc = h.step_recv()
                next_ts[sid] = nt
                done[sid] = dn
                for env in outbox:
                    pending[plan.shard_of(env[4])].append(env)
                    crossed += 1
            supersteps += 1

        merged_ranks: dict = {}
        ok = True
        finish = []
        start = []
        for sid, h in enumerate(hosts):
            res = h.collect()
            merged_ranks.update(res["app"]["ranks"])
            ok = ok and res["app"]["ok"]
            finish.extend(res["finish_times"].values())
            start.append(res["start_time"])
            events[sid] = res["events"]
    finally:
        for h in hosts:
            h.close()

    return ParallelRunResult(
        shards=shards,
        n_ranks=n_ranks,
        elapsed_us=max(finish) - min(start),
        ranks=merged_ranks,
        ok=ok,
        events_per_shard=events,
        messages_crossed=crossed,
        supersteps=supersteps,
        lookahead_us=lookahead,
        wall_s=_time.perf_counter() - wall0,
    )
