"""Mean-field fast path for background daemon noise.

At White scale (512 nodes x 16 CPUs) the exact DES pays one SleepUntil
wakeup plus one Compute completion per daemon activation on every node —
millions of events that exist only to perturb the ranks' timing.  The
mean-field path batches *B* consecutive activations of a daemon instance
into a single wakeup that computes the **sum** of the B sampled service
times, on nodes no trace consumer is watching.

Crucially the batched body consumes its RNG stream in exactly the same
per-activation order as the exact body (service draw, optional pagefault
draw, jitter draw), so:

* ``batch=1`` is **bit-identical** to the exact engine — the oracle
  discipline: the fast path degenerates to the reference, not to an
  approximation of it;
* for ``batch>1`` the *set* of activation instants and service durations
  is unchanged; only their interleaving with rank work coarsens (the B
  activations execute back-to-back, anchored at the batch's *middle*
  instant so the delivered CPU demand is timing-unbiased to first order,
  instead of spread over B periods).  The accuracy cost of that clumping
  is what experiment E14 measures.

Nodes named in :attr:`MeanFieldConfig.exempt_nodes` (typically the traced
node and rank 0's node) always run exact per-activation DES, so per-event
trace attribution stays truthful where anyone is looking.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MeanFieldConfig"]


@dataclass(frozen=True)
class MeanFieldConfig:
    """How aggressively to batch background daemon activations.

    Parameters
    ----------
    batch:
        Activations folded into one wakeup+compute pair on non-exempt
        nodes.  ``1`` disables batching (bit-identical to exact DES).
    exempt_nodes:
        Node ids that always run exact per-activation DES (traced nodes,
        nodes hosting ranks whose timings are being measured).
    max_block_us:
        Cap on the expected service mass one batched wake may clump.  The
        per-spec batch is derated to ``max_block_us / E[service]``, so a
        heavy, infrequent daemon (syncd's 20 ms flushes) never turns into
        one multi-hundred-ms favored-priority block that no real schedule
        contains, while the high-frequency, tiny-service daemons that
        dominate *event counts* (per-CPU interrupt handlers, mld) batch
        fully.  Uncapped clumping is not a mild accuracy loss — it
        front-loads seconds of daemon CPU into the measurement window and
        the inflated run then accrues yet more noise (a positive feedback
        the E14 calibration runs exhibited).
    """

    batch: int = 1
    exempt_nodes: tuple[int, ...] = ()
    max_block_us: float = 1000.0

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if any(n < 0 for n in self.exempt_nodes):
            raise ValueError("exempt_nodes must be non-negative node ids")
        if self.max_block_us <= 0:
            raise ValueError(f"max_block_us must be > 0, got {self.max_block_us}")

    def batch_for(self, node_id: int, spec=None) -> int:
        """Batch factor for *node_id* (1 on exempt nodes).

        With a :class:`~repro.config.DaemonSpec` *spec*, derates by the
        expected per-activation service (including the expected page-fault
        surcharge) so one wake's clump stays under :attr:`max_block_us`.
        """
        if node_id in self.exempt_nodes:
            return 1
        if spec is None:
            return self.batch
        mean_service = spec.service.mean() + spec.pagefault_prob * spec.pagefault_cost_us
        if mean_service <= 0:
            return self.batch
        return max(1, min(self.batch, int(self.max_block_us / mean_service)))
