"""Discrete-event simulation core.

A deliberately small, deterministic event engine on which the machine,
kernel, daemon, network, and MPI layers are built.  Nothing in here knows
about CPUs or schedulers; it provides exactly three things:

* a simulation clock in canonical microseconds,
* a priority event queue with stable tie-breaking (time, priority, seq),
* cancellable event handles.

Determinism is the load-bearing property: two events at the same timestamp
fire in (priority, insertion-order) order, so a whole-cluster run is a pure
function of its configuration and seed.
"""

from repro.sim.core import Event, EventPriority, Simulator, SimulationError
from repro.sim.meanfield import MeanFieldConfig
from repro.sim.shard import ShardPlan, ShardRouter

__all__ = [
    "Event",
    "EventPriority",
    "Simulator",
    "SimulationError",
    "MeanFieldConfig",
    "ShardPlan",
    "ShardRouter",
]
