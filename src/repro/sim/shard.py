"""Shard topology and the cross-shard message router.

Leaf module (stdlib only) so :class:`~repro.machine.cluster.Cluster` can
carry a router without importing the parallel-DES driver; the driver
itself lives in :mod:`repro.sim.parallel`.

Shard-stable RNG stream naming (the contract parallel DES rests on)
-------------------------------------------------------------------
Every shard builds the **full** cluster (construction schedules no
events, so non-owned nodes are inert), which fixes the construction-time
draw order (``machine.clock``, ``machine.tickphase``, ``switch.clock``)
identically on every shard.  All *runtime* randomness is drawn from
streams named per entity, never from a shared event-order-dependent
stream:

* ``kernel.lottery.n<node>`` — lottery dispatch (kernel/policy.py)
* ``daemon.<name>.n<node>.c<cpu>`` — daemon service/jitter draws
* ``daemon.<name>.phase`` — one aligned-phase draw at install time

:class:`repro.rng.StreamFactory` derives each stream from the seed and
the CRC32 of its name — independent of creation order — so a stream
draws identically regardless of which shard owns the node, and identically
whether or not the sibling nodes' streams were ever created.  Global
event-order streams (``faults.net.*``, runtime ``switch.clock`` reads)
are **not** shard-stable, which is why stochastic network faults and
timesync loss are rejected in sharded mode (see
:func:`repro.sim.parallel.validate_sharded_config`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ShardPlan", "ShardRouter"]


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous block partition of cluster nodes across shards.

    ``shard_of(node) = node * n_shards // n_nodes`` — blocks differ in
    size by at most one node, and block placement keeps a job's
    consecutive ranks (``node = rank // tpn``) on as few shards as the
    partition allows.
    """

    n_nodes: int
    n_shards: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not 1 <= self.n_shards <= self.n_nodes:
            raise ValueError(
                f"n_shards must be in 1..{self.n_nodes} (n_nodes), got {self.n_shards}"
            )

    def shard_of(self, node: int) -> int:
        """Shard owning *node*."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range 0..{self.n_nodes - 1}")
        return node * self.n_shards // self.n_nodes

    def nodes_of(self, shard: int) -> range:
        """The contiguous node block owned by *shard*."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range 0..{self.n_shards - 1}")
        # First node n with n * S // N == shard, i.e. ceil(shard * N / S).
        lo = -(-shard * self.n_nodes // self.n_shards)
        hi = -(-(shard + 1) * self.n_nodes // self.n_shards)
        return range(lo, hi)


class ShardRouter:
    """Per-shard outbox for cross-shard message traffic.

    A message whose destination node lives on another shard is not
    scheduled locally; the sender appends a timestamped **envelope** to
    the outbox and the coordinator routes it to the owning shard at the
    next superstep barrier.  Envelopes are plain tuples

        ``(arrival_time, src_node, link_seq, world_uid, dst_node, payload)``

    whose first three fields are globally unique (a node belongs to
    exactly one shard, and ``link_seq`` is per-shard monotone), so the
    receiving shard can sort incoming envelopes canonically and schedule
    their delivery in an order independent of shard count.

    ``world_uid`` names the delivery target: every :class:`MpiWorld`
    registers its arrival callback at construction, and worlds are
    constructed in launch order on **every** shard, so uids agree across
    shards without any name exchange.
    """

    def __init__(self, plan: ShardPlan, shard_id: int) -> None:
        if not 0 <= shard_id < plan.n_shards:
            raise ValueError(f"shard_id {shard_id} out of range 0..{plan.n_shards - 1}")
        self.plan = plan
        self.shard_id = shard_id
        self.outbox: list[tuple] = []
        self.sent = 0
        self.received = 0
        self._link_seq = itertools.count()
        self._worlds: list[Callable[[Any], None]] = []

    def owns(self, node: int) -> bool:
        """True when this shard simulates *node*."""
        return self.plan.shard_of(node) == self.shard_id

    def register(self, deliver: Callable[[Any], None]) -> int:
        """Register a delivery callback; returns its cross-shard uid."""
        self._worlds.append(deliver)
        return len(self._worlds) - 1

    def deliver_target(self, world_uid: int) -> Callable[[Any], None]:
        """Callback registered under *world_uid* (receive side)."""
        return self._worlds[world_uid]

    def emit(
        self,
        arrival_time: float,
        src_node: int,
        world_uid: int,
        dst_node: int,
        payload: Any,
    ) -> None:
        """Queue one cross-shard message envelope (send side)."""
        self.sent += 1
        self.outbox.append(
            (arrival_time, src_node, next(self._link_seq), world_uid, dst_node, payload)
        )

    def drain(self) -> list[tuple]:
        """Take and clear the pending outbox (one superstep's sends)."""
        out, self.outbox = self.outbox, []
        return out

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: topology, counters, undelivered envelopes."""
        return {
            "shard_id": self.shard_id,
            "n_shards": self.plan.n_shards,
            "n_nodes": self.plan.n_nodes,
            "sent": self.sent,
            "received": self.received,
            "worlds": len(self._worlds),
            "outbox": [
                [arrival, src, seq, uid, dst, desc.value(payload)]
                for arrival, src, seq, uid, dst, payload in self.outbox
            ],
        }
