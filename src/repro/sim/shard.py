"""Shard topology and the cross-shard message router.

Leaf module (stdlib only) so :class:`~repro.machine.cluster.Cluster` can
carry a router without importing the parallel-DES driver; the driver
itself lives in :mod:`repro.sim.parallel`.

Shard-stable RNG stream naming (the contract parallel DES rests on)
-------------------------------------------------------------------
Every shard builds the **full** cluster (construction schedules no
events, so non-owned nodes are inert), which fixes the construction-time
draw order (``machine.clock``, ``machine.tickphase``, ``switch.clock``)
identically on every shard.  All *runtime* randomness is drawn from
streams named per entity, never from a shared event-order-dependent
stream:

* ``kernel.lottery.n<node>`` — lottery dispatch (kernel/policy.py)
* ``daemon.<name>.n<node>.c<cpu>`` — daemon service/jitter draws
* ``daemon.<name>.phase`` — one aligned-phase draw at install time
* ``faults.net.<kind>.<src>-><dst>`` — per-link, per-type message-fault
  decisions (kind ∈ drop/delay/dup).  Every draw for link ``src->dst``
  happens inside an event on node ``src``, whose local event order the
  serial engine fixes, so the decision sequence per link is identical on
  whichever shard owns ``src`` — and identical to the serial run.
* ``faults.pipe.n<node>`` — control-pipe loss, drawn on the node whose
  pipe carries the message.
* ``faults.clock`` — the one timesync-loss event draws jump/drift for
  **all** nodes in node order inside a single event; non-owned nodes'
  clocks are inert, so every shard sees the same sequence.

:class:`repro.rng.StreamFactory` derives each stream from the seed and
the CRC32 of its name — independent of creation order — so a stream
draws identically regardless of which shard owns the node, and identically
whether or not the sibling nodes' streams were ever created.  The one
remaining sharded-mode restriction is the hardware-collective path, whose
switch-combine hop is shorter than the conservative lookahead (see
:func:`repro.sim.parallel.validate_sharded_config`).
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["ShardPlan", "ShardRouter"]


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous block partition of cluster nodes across shards.

    With no explicit ``boundaries``, ``shard_of(node) = node * n_shards
    // n_nodes`` — blocks differ in size by at most one node.  An
    explicit ``boundaries`` tuple ``(b_0=0, b_1, ..., b_S=n_nodes)``
    assigns nodes ``[b_k, b_{k+1})`` to shard ``k`` — still contiguous
    (so a node's ranks never split, and a job's consecutive ranks
    ``node = rank // tpn`` stay on as few shards as the cut allows), but
    the cuts can respect rank placement: :meth:`for_placement` weights
    each node by the ranks it hosts, so idle tail nodes don't eat shard
    capacity and every shard carries a near-equal share of the job.
    """

    n_nodes: int
    n_shards: int
    boundaries: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not 1 <= self.n_shards <= self.n_nodes:
            raise ValueError(
                f"n_shards must be in 1..{self.n_nodes} (n_nodes), got {self.n_shards}"
            )
        b = self.boundaries
        if b is not None:
            if (
                len(b) != self.n_shards + 1
                or b[0] != 0
                or b[-1] != self.n_nodes
                or any(b[i] >= b[i + 1] for i in range(len(b) - 1))
            ):
                raise ValueError(
                    f"boundaries must be strictly increasing from 0 to "
                    f"{self.n_nodes} with {self.n_shards + 1} entries, got {b}"
                )

    @classmethod
    def for_placement(
        cls,
        n_nodes: int,
        n_shards: int,
        job_nodes: int,
        tasks_per_node: int,
    ) -> "ShardPlan":
        """Plan whose cuts balance *ranks*, not node counts.

        The job packs ranks onto nodes ``0..job_nodes-1`` (``node = rank
        // tasks_per_node``); those nodes weigh ``tasks_per_node``, idle
        nodes weigh 1 (their daemons still cost something).  A greedy
        prefix-sum cut puts each boundary where the cumulative weight is
        closest to ``k/S`` of the total, while leaving every shard at
        least one node.  Deterministic, and purely an execution-strategy
        choice: the result digest is plan-independent.
        """
        if not 0 <= job_nodes <= n_nodes:
            raise ValueError(
                f"job_nodes {job_nodes} out of range 0..{n_nodes}"
            )
        weights = [
            tasks_per_node if n < job_nodes else 1 for n in range(n_nodes)
        ]
        prefix = [0]
        for w in weights:
            prefix.append(prefix[-1] + w)
        total = prefix[-1]
        bounds = [0]
        for k in range(1, n_shards):
            target = k * total / n_shards
            lo = bounds[-1] + 1
            hi = n_nodes - (n_shards - k)  # leave >=1 node per later shard
            cut = min(range(lo, hi + 1), key=lambda j: (abs(prefix[j] - target), j))
            bounds.append(cut)
        bounds.append(n_nodes)
        return cls(n_nodes, n_shards, boundaries=tuple(bounds))

    def shard_of(self, node: int) -> int:
        """Shard owning *node*."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range 0..{self.n_nodes - 1}")
        if self.boundaries is not None:
            return bisect_right(self.boundaries, node) - 1
        return node * self.n_shards // self.n_nodes

    def nodes_of(self, shard: int) -> range:
        """The contiguous node block owned by *shard*."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range 0..{self.n_shards - 1}")
        if self.boundaries is not None:
            return range(self.boundaries[shard], self.boundaries[shard + 1])
        # First node n with n * S // N == shard, i.e. ceil(shard * N / S).
        lo = -(-shard * self.n_nodes // self.n_shards)
        hi = -(-(shard + 1) * self.n_nodes // self.n_shards)
        return range(lo, hi)


class ShardRouter:
    """Per-shard outbox for cross-shard message traffic.

    A message whose destination node lives on another shard is not
    scheduled locally; the sender appends a timestamped **envelope** to
    the outbox and the coordinator routes it to the owning shard at the
    next superstep barrier.  Envelopes are plain tuples

        ``(arrival_time, src_node, link_seq, world_uid, dst_node, payload)``

    whose first three fields are globally unique (a node belongs to
    exactly one shard, and ``link_seq`` is per-shard monotone), so the
    receiving shard can sort incoming envelopes canonically and schedule
    their delivery in an order independent of shard count.

    ``world_uid`` names the delivery target: every :class:`MpiWorld`
    registers its arrival callback at construction, and worlds are
    constructed in launch order on **every** shard, so uids agree across
    shards without any name exchange.
    """

    def __init__(self, plan: ShardPlan, shard_id: int) -> None:
        if not 0 <= shard_id < plan.n_shards:
            raise ValueError(f"shard_id {shard_id} out of range 0..{plan.n_shards - 1}")
        self.plan = plan
        self.shard_id = shard_id
        self.outbox: list[tuple] = []
        self.sent = 0
        self.received = 0
        self._link_seq = itertools.count()
        self._worlds: list[Callable[[Any], None]] = []

    def owns(self, node: int) -> bool:
        """True when this shard simulates *node*."""
        return self.plan.shard_of(node) == self.shard_id

    def register(self, deliver: Callable[[Any], None]) -> int:
        """Register a delivery callback; returns its cross-shard uid."""
        self._worlds.append(deliver)
        return len(self._worlds) - 1

    def deliver_target(self, world_uid: int) -> Callable[[Any], None]:
        """Callback registered under *world_uid* (receive side)."""
        return self._worlds[world_uid]

    def emit(
        self,
        arrival_time: float,
        src_node: int,
        world_uid: int,
        dst_node: int,
        payload: Any,
    ) -> None:
        """Queue one cross-shard message envelope (send side)."""
        self.sent += 1
        self.outbox.append(
            (arrival_time, src_node, next(self._link_seq), world_uid, dst_node, payload)
        )

    def drain(self) -> list[tuple]:
        """Take and clear the pending outbox (one superstep's sends)."""
        out, self.outbox = self.outbox, []
        return out

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: topology, counters, undelivered envelopes."""
        return {
            "shard_id": self.shard_id,
            "n_shards": self.plan.n_shards,
            "n_nodes": self.plan.n_nodes,
            "sent": self.sent,
            "received": self.received,
            "worlds": len(self._worlds),
            "outbox": [
                [arrival, src, seq, uid, dst, desc.value(payload)]
                for arrival, src, seq, uid, dst, payload in self.outbox
            ],
        }
