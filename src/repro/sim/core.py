"""Event queue and simulator.

The engine is a classic calendar queue over :mod:`heapq`.  Design points
that matter for the layers above:

* **Stable ordering.**  Heap entries sort by ``(time, priority, seq)``.
  ``priority`` lets the kernel order same-instant happenings correctly —
  e.g. a timer tick (which is a preemption point) must be processed before
  an application compute-completion scheduled for the same instant, and
  hardware events before software wakeups.  ``seq`` is a monotone counter
  guaranteeing FIFO among full ties, which makes runs reproducible.

* **C-level comparisons.**  The heap stores plain ``(time, priority, seq,
  Event)`` tuples.  ``seq`` is unique, so a comparison always resolves
  within the first three scalar fields and never reaches the
  :class:`Event` object — every sift runs entirely in the C tuple
  comparator instead of calling ``Event.__lt__`` (which used to account
  for millions of Python-level calls per run).  :class:`Event` remains
  the public, cancellable handle.

* **Lazy cancellation with compaction.**  Cancelling an event marks its
  handle dead; the heap entry is skipped on pop.  The kernel cancels and
  re-schedules compute completions on every preemption, so cancellation
  is O(1).  When dead entries outnumber live ones (and the heap is big
  enough to care) the heap is compacted in one O(n) ``heapify`` pass —
  ordering is total, so compaction can never change firing order.

* **No global state.**  A :class:`Simulator` is an ordinary object; tests
  freely create thousands of them.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Any, Callable, Optional

__all__ = ["Event", "EventPriority", "Simulator", "SimulationError"]


#: Compaction threshold: only heaps at least this large are compacted
#: (tiny heaps churn through cancels without ever carrying real weight).
_COMPACT_MIN_ENTRIES = 64


class SimulationError(RuntimeError):
    """Raised for invalid engine use (scheduling in the past, etc.)."""


class EventPriority(IntEnum):
    """Relative ordering of events that fire at the same instant.

    Lower value fires first.  The tiers encode hardware-before-software:
    an interrupt asserted at time *t* is visible to a dispatcher decision
    made at time *t*.
    """

    INTERRUPT = 0     # timer ticks, IPIs, device interrupts
    MESSAGE = 1       # network message delivery
    KERNEL = 2        # dispatcher passes, wakeups, completion processing
    NORMAL = 3        # default application-level callbacks
    LATE = 4          # bookkeeping that must observe everything else


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Treat instances as opaque handles: inspect :attr:`time` / :attr:`active`,
    call :meth:`cancel`.  The handle never participates in heap ordering
    (the heap compares ``(time, priority, seq)`` tuples), but ``__lt__``
    is kept so handle lists sort in firing order.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False
        #: Owning simulator (None for handles built outside a Simulator);
        #: lets cancel() maintain the owner's live-entry counter.
        self._sim = sim

    @property
    def active(self) -> bool:
        """True until the event has been cancelled (firing clears ``fn``)."""
        return not self._cancelled and self.fn is not None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; safe after firing."""
        if not self._cancelled and self.fn is not None:
            # Still live: tell the owning simulator one queued entry died
            # (fired events have fn cleared before the callback runs, so
            # they never reach this branch).
            sim = self._sim
            if sim is not None:
                sim._live -= 1
                dead = len(sim._heap) - sim._live
                if dead >= _COMPACT_MIN_ENTRIES and dead > sim._live:
                    sim._compact()
        self._cancelled = True
        # Break reference cycles early; a cancelled event may sit in the
        # heap for a long simulated time before being popped and skipped.
        self.fn = None
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "active"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} prio={self.priority} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, callback, arg1, arg2)
        sim.run_until(1_000_000.0)

    Callbacks receive their ``args`` and may schedule further events.  The
    clock only moves forward; scheduling strictly in the past raises
    :class:`SimulationError` (scheduling *at* the current instant is legal
    and common — e.g. an immediate dispatcher pass).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Entries are ``(time, priority, seq, Event)``; ``seq`` is unique
        #: so tuple comparison never falls through to the Event.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: Live (non-cancelled) entries currently queued; maintained by
        #: schedule/pop/cancel so :attr:`pending` is O(1).
        self._live = 0
        self._running = False
        #: Optional sanitizer hook invoked (with no arguments) after every
        #: processed event.  Installed by
        #: :class:`repro.checkpoint.monitor.InvariantMonitor` in sanitizer
        #: mode; ``None`` (the default) costs one predicate per event and
        #: adds no events, so baseline runs stay bit-identical.
        self.on_event: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule *fn(*args)* to run *delay* µs from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule *fn(*args)* at absolute time *time* (µs)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time!r}; now is {self.now!r}")
        priority = int(priority)
        seq = next(self._seq)
        ev = Event(time, priority, seq, fn, args, self)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Drop dead heap entries in one pass (firing order is unchanged:
        entry ordering is total, so a heapify of any subset agrees with
        the pop order of the original heap restricted to that subset).

        In-place (slice assignment) on purpose: the fused ``run_until``
        loop holds a local alias to the heap list, and compaction can
        trigger mid-callback via ``Event.cancel``.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3]._cancelled]
        heapq.heapify(heap)

    def _pop_next(self) -> Optional[Event]:
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if not ev._cancelled:
                self._live -= 1
                return ev
        return None

    def _pop_due(self, bound: float) -> Optional[Event]:
        """Pop the next live event with ``time <= bound`` in one heap walk.

        Dead (cancelled) entries met on the way are discarded.  A live head
        beyond *bound* is left in place, so "looking" costs no re-sift —
        this is the fused replacement for the ``peek_time()`` + ``step()``
        pair that used to pay two O(log n) traversals per event in
        :meth:`run_until`.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3]._cancelled:
                heapq.heappop(heap)
                continue
            if entry[0] > bound:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return entry[3]
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is drained.

        Reads the *handle*'s time rather than the heap entry's copy: they
        only differ if someone corrupted the handle, and reporting the
        handle's view is what lets the invariant sanitizer notice.
        """
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
        return heap[0][3].time if heap else None

    def _fire(self, ev: Event) -> None:
        self.now = ev.time
        fn, args = ev.fn, ev.args
        # Mark fired before invoking so re-entrant cancels are no-ops.
        ev.fn = None
        ev.args = ()
        self._events_processed += 1
        fn(*args)
        if self.on_event is not None:
            self.on_event()

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        ev = self._pop_next()
        if ev is None:
            return False
        self._fire(ev)
        return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps ``<= time``; leave ``now`` at *time*.

        Returns the number of events processed.  ``max_events`` is a safety
        valve for tests (raises :class:`SimulationError` when exceeded, which
        catches accidental event storms early instead of hanging CI).
        """
        if time < self.now:
            raise SimulationError(f"run_until({time!r}) is in the past (now={self.now!r})")
        processed = 0
        # The pop/fire pair is inlined below: at profile scale the two
        # method calls per event are a measurable slice of the engine's
        # per-event budget.  step()/run() keep the readable methods; this
        # loop must stay behaviourally identical to _pop_due + _fire.
        heap = self._heap
        heappop = heapq.heappop
        while True:
            if max_events is not None and processed >= max_events:
                nxt = self.peek_time()
                if nxt is not None and nxt <= time:
                    raise SimulationError(f"exceeded max_events={max_events} before t={time}")
                break
            ev = None
            while heap:
                entry = heap[0]
                candidate = entry[3]
                if candidate._cancelled:
                    heappop(heap)
                    continue
                if entry[0] > time:
                    break
                heappop(heap)
                self._live -= 1
                ev = candidate
                break
            if ev is None:
                break
            # -- inline _fire(ev) --
            self.now = ev.time
            fn, args = ev.fn, ev.args
            # Mark fired before invoking so re-entrant cancels are no-ops.
            ev.fn = None
            ev.args = ()
            self._events_processed += 1
            fn(*args)
            if self.on_event is not None:
                self.on_event()
            processed += 1
        self.now = time
        return processed

    def run_until_before(self, bound: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps strictly ``< bound``; leave ``now`` at
        *bound*.

        The half-open-window counterpart of :meth:`run_until`, used by the
        conservative parallel-DES driver (:mod:`repro.sim.parallel`): a
        superstep may process everything before the safe horizon but must
        leave events *at* the horizon untouched, because a cross-shard
        message can still arrive exactly at the horizon instant with an
        earlier tie-break priority.  Returns the number of events processed.
        """
        if bound < self.now:
            raise SimulationError(
                f"run_until_before({bound!r}) is in the past (now={self.now!r})"
            )
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        while True:
            if max_events is not None and processed >= max_events:
                nxt = self.peek_time()
                if nxt is not None and nxt < bound:
                    raise SimulationError(f"exceeded max_events={max_events} before t={bound}")
                break
            ev = None
            while heap:
                entry = heap[0]
                candidate = entry[3]
                if candidate._cancelled:
                    heappop(heap)
                    continue
                if entry[0] >= bound:
                    break
                heappop(heap)
                self._live -= 1
                ev = candidate
                break
            if ev is None:
                break
            # -- inline _fire(ev) --
            self.now = ev.time
            fn, args = ev.fn, ev.args
            # Mark fired before invoking so re-entrant cancels are no-ops.
            ev.fn = None
            ev.args = ()
            self._events_processed += 1
            fn(*args)
            if self.on_event is not None:
                self.on_event()
            processed += 1
        self.now = bound
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.  Returns events processed."""
        processed = 0
        while True:
            if max_events is not None and processed >= max_events and self.peek_time() is not None:
                raise SimulationError(f"exceeded max_events={max_events}")
            ev = self._pop_next()
            if ev is None:
                break
            self._fire(ev)
            processed += 1
        return processed

    @property
    def events_processed(self) -> int:
        """Total events fired over the simulator's lifetime (for stats/tests)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live events still queued (O(1): a maintained counter,
        not a heap scan — this sits inside checkpoint/invariant paths)."""
        return self._live

    def active_events(self) -> list[Event]:
        """Live queued events in firing order (checkpoint/introspection).

        Cancelled entries are filtered out and the result is sorted by
        ``(time, priority, seq)``, so two simulators that will fire the
        same callbacks in the same order return equal-shaped lists even if
        their internal heap layouts differ.
        """
        return [
            entry[3]
            for entry in sorted(e for e in self._heap if not e[3]._cancelled)
        ]
