"""Pluggable node-scheduler policies: the dispatch core behind a small API.

The paper's argument is that *scheduling semantics* — not hardware — decide
parallel-job scalability.  :class:`~repro.kernel.scheduler.NodeScheduler`
therefore keeps only mechanism (context switches, completion events, IPIs,
tick checks, accounting) and delegates every policy decision to a
:class:`SchedPolicy` object:

``queue_for(thread)``
    Which run queue a READY thread is pushed to.
``place(thread)``
    React to *thread* becoming ready or better: dispatch an idle CPU,
    request a preemption, or arm a tick-boundary check.
``pick(cpu_idx)``
    Choose (and dequeue) the next occupant for an idle CPU.
``steal_from(cpu_idx)``
    Migration fallback when ``pick`` finds the home queues empty.
``on_tick(cpu_idx)``
    The preemption point on an *occupied* CPU: compare the incumbent
    against the best waiter and preempt, rotate, or re-arm.
``waiter_beats(cpu_idx, thread)``
    Reverse preemption: after running *thread*'s priority was worsened,
    should some waiter now take its CPU?
``snapshot_state(desc)``
    Policy-private state for checkpoint fingerprints.  Restore needs no
    inverse hook: checkpointing is replay-based (rebuild from config and
    replay), which re-derives policy state and replays any named rng
    streams a policy draws from.

Policies are registered by name (``@register_policy``) and selected via
``KernelConfig.policy`` / ``policy_params``; unknown names or params fail
loudly at config construction.  The ``aix`` policy is the pre-refactor
dispatcher extracted verbatim and is covered by a bit-identical contract
(``benchmarks/golden_perf_smoke.json``).

Design constraints every policy must respect:

* Route threads through the scheduler's ``local_queues``/``global_queue``
  only — the invariant monitor and checkpoint descriptors walk exactly
  those structures.
* ``queue_for`` must be a pure function of the thread's static routing
  fields (``use_global_queue``, ``affinity_cpu``): ``RunQueue.remove``
  bookkeeps on whichever queue it is called on, so routing may not depend
  on mutable state.
* All randomness comes from named streams on ``sched.rng_streams`` (the
  cluster's :class:`~repro.rng.StreamFactory`), created lazily so policies
  that draw nothing leave other streams' draws untouched.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel.thread import Thread, ThreadState
from repro.sim.core import EventPriority

__all__ = [
    "SchedPolicy",
    "AixPolicy",
    "FairPolicy",
    "QuantumPolicy",
    "LotteryPolicy",
    "register_policy",
    "policy_names",
    "policy_param_names",
    "validate_policy",
    "make_policy",
]

_PRIO_INTERRUPT = EventPriority.INTERRUPT

_REGISTRY: dict[str, type] = {}


def register_policy(cls: type) -> type:
    """Class decorator: add *cls* to the policy registry under ``cls.name``."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"policy class {cls.__name__} has no name")
    if name in _REGISTRY:
        raise ValueError(f"duplicate policy name {name!r}")
    _REGISTRY[name] = cls
    return cls


def policy_names() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def policy_param_names(name: str) -> tuple[str, ...]:
    """Declared parameter names of policy *name* (KeyError if unknown)."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scheduling policy {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return tuple(sorted(_REGISTRY[name].PARAMS))


def validate_policy(name: str, params=()) -> None:
    """Loud validation for ``KernelConfig``: unknown policy names or
    per-policy params raise ValueError listing what *is* registered
    (the ``FaultConfig.validate_targets`` failure discipline)."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown scheduling policy {name!r}; "
            f"registered policies: {sorted(_REGISTRY)}"
        )
    # Instantiating runs the constructor's own name/value checks.
    _REGISTRY[name](**dict(params))


def make_policy(config) -> "SchedPolicy":
    """Build the policy instance a :class:`KernelConfig` selects."""
    if config.policy not in _REGISTRY:
        raise ValueError(
            f"unknown scheduling policy {config.policy!r}; "
            f"registered policies: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[config.policy](**dict(config.policy_params))


class SchedPolicy:
    """Base class: shared routing/pick machinery with AIX's shape.

    Subclasses override the decision methods; the base provides the
    key-ordered pick (local queue beats global on ties, steal fallback)
    and the canonical queue routing every zoo member shares.

    ``queue_key`` is either ``None`` (queues order by ``thread.priority``
    — the AIX fast path, no callable indirection in ``RunQueue.push``) or
    a method mapping a thread to its heap key at enqueue time.
    """

    #: Registry name; subclasses must set it.
    name = ""
    #: Declared tunables and their defaults.  ``None`` defaults are
    #: resolved against the kernel config at :meth:`bind` time.
    PARAMS: dict = {}
    #: Enqueue-time heap key, or None for priority ordering.
    queue_key: Optional[Callable[[Thread], float]] = None

    def __init__(self, **params) -> None:
        unknown = sorted(set(params) - set(self.PARAMS))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for policy {self.name!r}; "
                f"valid: {sorted(self.PARAMS)}"
            )
        self.params = {**self.PARAMS, **params}
        self.sched = None

    def bind(self, sched) -> None:
        """Attach to a :class:`NodeScheduler` (queues already built)."""
        self.sched = sched

    # ------------------------------------------------------------------
    # Decision interface
    # ------------------------------------------------------------------
    def queue_for(self, thread: Thread):
        """The run queue *thread* is pushed to when READY."""
        sched = self.sched
        if thread.use_global_queue and sched.config.daemons_global_queue:
            return sched.global_queue
        return sched.local_queues[thread.affinity_cpu]

    def place(self, thread: Thread) -> None:
        """React to *thread* becoming ready/better: dispatch or preempt."""
        raise NotImplementedError

    def pick(self, cpu_idx: int) -> Optional[Thread]:
        """Choose the next occupant for idle *cpu_idx* (dequeued), or None.

        Base behaviour: best heap key wins, local queue beats global on
        ties, and an empty home falls back to :meth:`steal_from`.
        """
        sched = self.sched
        lq = sched.local_queues[cpu_idx]
        gq = sched.global_queue
        lp = lq.best_priority()
        gp = gq.best_priority()
        if lp is not None and (gp is None or lp <= gp):
            return lq.pop()
        if gp is not None:
            return gq.pop()
        if sched.config.steal_enabled:
            return self.steal_from(cpu_idx)
        return None

    def steal_from(self, cpu_idx: int) -> Optional[Thread]:
        """Steal the best migratable thread from a sibling local queue."""
        sched = self.sched
        best_q, best_p = None, None
        for i, q in enumerate(sched.local_queues):
            if i == cpu_idx or not q:
                continue
            p = q.best_stealable_priority()
            if p is not None and (best_p is None or p < best_p):
                best_q, best_p = q, p
        if best_q is not None:
            return best_q.pop_stealable()
        return None

    def on_tick(self, cpu_idx: int) -> None:
        """Preemption point on an *occupied* CPU: preempt, rotate, or re-arm."""
        raise NotImplementedError

    def waiter_beats(self, cpu_idx: int, thread: Thread) -> bool:
        """After RUNNING *thread* was worsened: should a waiter take over?"""
        raise NotImplementedError

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view of policy-private state."""
        return {"name": self.name, "params": sorted(self.params.items())}

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _fill_idle(self, thread: Thread) -> bool:
        """Dispatch idle CPUs until *thread* runs or none can take work.

        A single dispatch is not enough: the freed CPU may pick a
        different (earlier-queued or better-keyed) thread, leaving
        *thread* READY while other CPUs idle — work conservation requires
        retrying every idle CPU, each iteration either occupying one or
        proving nothing more is dispatchable.  (The ``aix`` policy
        deliberately does not do this: there a preempted worse-priority
        thread waits for its priority turn — pre-refactor behaviour, held
        bit-identical by the golden digests.)
        """
        sched = self.sched
        while thread.state is ThreadState.READY:
            idle = sched._find_idle_cpu()
            if idle is None:
                return False
            sched._dispatch(idle)
            if sched.cpus[idle].thread is None:
                return False  # nothing dispatchable there: no progress
        return True

    def best_waiting_key(self, cpu_idx: int):
        """Best heap key waiting for *cpu_idx* (local or global), or None."""
        sched = self.sched
        lp = sched.local_queues[cpu_idx].best_priority()
        gp = sched.global_queue.best_priority()
        if lp is None:
            return gp
        if gp is None:
            return lp
        return min(lp, gp)


@register_policy
class AixPolicy(SchedPolicy):
    """The paper's AIX dispatcher, extracted verbatim from NodeScheduler.

    **Bit-identical contract:** this class is the pre-refactor behaviour
    move-only.  `perf_smoke.py` digests against
    ``benchmarks/golden_perf_smoke.json`` hold it to the seed schedule
    event-for-event; change it only together with a deliberate golden
    regeneration.
    """

    name = "aix"

    def place(self, thread: Thread) -> None:
        """Dispatch or preempt for a newly READY thread.

        Dispatching a freed CPU may pick a *different* (better or
        earlier-queued equal) thread; when that happens this thread is
        still READY and must fall through to the preemption/rotation
        arming below, or it would wait unbounded (two co-scheduled jobs
        timesharing a CPU hit exactly this).
        """
        sched = self.sched
        if thread.use_global_queue and sched.config.daemons_global_queue:
            idle = sched._find_idle_cpu()
            if idle is not None:
                sched._dispatch(idle)
                if thread.state is not ThreadState.READY:
                    return
            # Preempt the CPU running the worst-priority occupant.
            worst_cpu, worst_prio = None, -1
            for cpu in sched.cpus:
                if cpu.thread is not None and cpu.thread.priority > worst_prio:
                    worst_cpu, worst_prio = cpu.index, cpu.thread.priority
            if worst_cpu is None:
                return
            if thread.priority < worst_prio:
                sched._request_preempt(worst_cpu)
            elif thread.priority == worst_prio:
                sched._schedule_check(worst_cpu)
            return

        home = thread.affinity_cpu
        if sched.cpus[home].idle:
            sched._dispatch(home)
            if thread.state is not ThreadState.READY:
                return
        if thread.allow_steal and sched.config.steal_enabled:
            idle = sched._find_idle_cpu()
            if idle is not None:
                sched._dispatch(idle)
                if thread.state is not ThreadState.READY:
                    return
        running = sched.cpus[home].thread
        if running is None:
            return
        if thread.priority < running.priority:
            if thread.hardware:
                # Device interrupt: asserted directly at the target CPU,
                # no dispatcher noticing latency.
                sched._check_cpu(home)
            else:
                sched._request_preempt(home)
        elif thread.priority == running.priority:
            sched._schedule_check(home)

    def on_tick(self, cpu_idx: int) -> None:
        """Compare the occupant against the best waiter at a tick."""
        sched = self.sched
        cpu = sched.cpus[cpu_idx]
        best = self.best_waiting_key(cpu_idx)
        if best is None:
            return
        running = cpu.thread
        if best < running.priority:
            sched._preempt(cpu_idx)
        elif best == running.priority:
            # Round-robin among equals at the preemption point — but only
            # once the incumbent has consumed a timeslice (one base tick),
            # as AIX's per-tick priority ageing effectively does.  If not
            # yet, re-arm for the next boundary so the waiter still gets
            # its turn.
            if sched.sim.now - cpu.last_switch >= sched.config.tick_period_us - 1e-6:
                sched._preempt(cpu_idx)
            else:
                sched._rearm_check(cpu_idx)

    def waiter_beats(self, cpu_idx: int, thread: Thread) -> bool:
        """Strict priority: a waiter wins only if numerically better."""
        best = self.best_waiting_key(cpu_idx)
        return best is not None and best < thread.priority


class _RotatingPolicy(SchedPolicy):
    """Shared place/rotate machinery for the slice-based policies.

    Priority-blind placement: dispatch idles, otherwise arm a check so
    the incumbent's slice expiry is noticed at a tick boundary; rotation
    preempts whoever exhausted its slice while anyone waits.
    """

    PARAMS = {"slice_us": None}

    def __init__(self, **params) -> None:
        super().__init__(**params)
        s = self.params["slice_us"]
        if s is not None and float(s) <= 0:
            raise ValueError(f"policy {self.name!r}: slice_us must be positive")

    def bind(self, sched) -> None:
        super().bind(sched)
        s = self.params["slice_us"]
        self.slice_us = float(s) if s is not None else float(sched.config.tick_period_us)

    def _has_waiter(self, cpu_idx: int) -> bool:
        return self.best_waiting_key(cpu_idx) is not None

    def place(self, thread: Thread) -> None:
        sched = self.sched
        glob = thread.use_global_queue and sched.config.daemons_global_queue
        home = thread.affinity_cpu
        if not glob and sched.cpus[home].idle:
            sched._dispatch(home)
            if thread.state is not ThreadState.READY:
                return
        if glob or (thread.allow_steal and sched.config.steal_enabled):
            if self._fill_idle(thread):
                return
        # Every CPU busy: arm the rotation check where this thread can
        # run — its home CPU, or for global work wherever the incumbent
        # has held its CPU longest (deepest into / past its slice).
        target = self._longest_running_cpu() if glob else home
        if target is not None and sched.cpus[target].thread is not None:
            sched._schedule_check(target)

    def _longest_running_cpu(self) -> Optional[int]:
        sched = self.sched
        best, best_t = None, None
        for cpu in sched.cpus:
            if cpu.thread is not None and (best_t is None or cpu.last_switch < best_t):
                best, best_t = cpu.index, cpu.last_switch
        return best

    def on_tick(self, cpu_idx: int) -> None:
        sched = self.sched
        if not self._has_waiter(cpu_idx):
            return
        if sched.sim.now - sched.cpus[cpu_idx].last_switch >= self.slice_us - 1e-6:
            sched._preempt(cpu_idx)
        else:
            sched._rearm_check(cpu_idx)

    def waiter_beats(self, cpu_idx: int, thread: Thread) -> bool:
        # Priority-blind: a worsened incumbent only rotates out at slice
        # expiry, same as any other occupant.
        sched = self.sched
        return (
            self._has_waiter(cpu_idx)
            and sched.sim.now - sched.cpus[cpu_idx].last_switch >= self.slice_us - 1e-6
        )


@register_policy
class QuantumPolicy(_RotatingPolicy):
    """Fixed-quantum round-robin: FIFO queues, rotate every ``slice_us``.

    Priorities are ignored entirely; fairness is temporal.  The FIFO is
    cross-queue: heap keys are constant so entries order by their global
    sequence numbers, and :meth:`pick` compares (key, seq) ranks between
    the local and global queue — the oldest waiter anywhere wins.
    """

    name = "quantum"

    def queue_key(self, thread: Thread) -> float:
        """Constant key: the heap degenerates to arrival-order FIFO."""
        return 0.0

    def pick(self, cpu_idx: int) -> Optional[Thread]:
        """Oldest waiter across local+global queues (by global seq)."""
        sched = self.sched
        lq = sched.local_queues[cpu_idx]
        gq = sched.global_queue
        lr = lq.head_rank()
        gr = gq.head_rank()
        if lr is not None and (gr is None or lr <= gr):
            return lq.pop()
        if gr is not None:
            return gq.pop()
        if sched.config.steal_enabled:
            return self.steal_from(cpu_idx)
        return None


@register_policy
class LotteryPolicy(_RotatingPolicy):
    """Ticket-proportional lottery scheduling (Waldspurger-style).

    Each pick draws a winner among the CPU's eligible waiters with
    probability proportional to tickets (``128 - priority``, so favored
    threads hold more).  Draws come from the named
    ``kernel.lottery.<node>`` stream of the cluster's StreamFactory —
    seed-deterministic, replayable, and isolated from every other
    consumer's draws.  Rotation between draws is slice-based.

    The per-*node* stream name is load-bearing for parallel DES
    (:mod:`repro.sim.parallel`): StreamFactory derives the stream from the
    name alone, so node *n*'s lottery draws are identical no matter which
    shard owns the node or how many sibling streams exist — the
    shard-stable naming contract ``tests/test_parallel_des.py`` pins.  A
    single global ``kernel.lottery`` stream would instead interleave draws
    in event order across nodes and break shard equivalence.
    """

    name = "lottery"

    def queue_key(self, thread: Thread) -> float:
        """Constant key: ordering is irrelevant, winners are drawn."""
        return 0.0

    def bind(self, sched) -> None:
        """Attach and open this node's ``kernel.lottery.<node>`` stream."""
        super().bind(sched)
        if sched.rng_streams is None:
            raise ValueError(
                "lottery policy needs named rng streams: construct "
                "NodeScheduler/Node with rng_streams=<StreamFactory> "
                "(Cluster wires this automatically)"
            )
        self._rng = sched.rng_streams.stream(f"kernel.lottery.n{sched.node_id}")

    @staticmethod
    def _tickets(thread: Thread) -> int:
        return 128 - thread.priority

    def pick(self, cpu_idx: int) -> Optional[Thread]:
        """Hold the lottery among *cpu_idx*'s eligible waiters."""
        sched = self.sched
        cands = list(sched.local_queues[cpu_idx].threads())
        cands.extend(sched.global_queue.threads())
        if not cands:
            if sched.config.steal_enabled:
                return self.steal_from(cpu_idx)
            return None
        if len(cands) == 1:
            # No contention, no draw: keeps stream consumption (and thus
            # cross-seed variance) proportional to actual contention.
            winner = cands[0]
        else:
            total = 0
            for t in cands:
                total += self._tickets(t)
            r = float(self._rng.random()) * total
            acc = 0
            winner = cands[-1]
            for t in cands:
                acc += self._tickets(t)
                if r < acc:
                    winner = t
                    break
        self.queue_for(winner).remove(winner)
        return winner


@register_policy
class FairPolicy(SchedPolicy):
    """CFS-style virtual-runtime fair share.

    Each thread accrues virtual runtime ``cpu_time / weight`` with weight
    ``128 - priority``; queues order by vruntime, so the thread furthest
    behind its fair share runs next.  ``min_granularity_us`` (default: one
    tick period) bounds both the preemption hysteresis — an incumbent is
    only displaced once it is a granularity *ahead* of the best waiter —
    and the minimum time it holds the CPU between switches.

    ``thread.policy_data`` stores the thread's vruntime offset: the
    sleeper boost advances it so a long sleeper resumes at most one
    granularity behind the queue floor instead of monopolising the CPU
    while it "catches up" (CFS's ``place_entity``).
    """

    name = "fair"
    PARAMS = {"min_granularity_us": None}

    def __init__(self, **params) -> None:
        super().__init__(**params)
        g = self.params["min_granularity_us"]
        if g is not None and float(g) <= 0:
            raise ValueError("policy 'fair': min_granularity_us must be positive")

    def bind(self, sched) -> None:
        """Attach, resolve the granularity default, reset the floor."""
        super().bind(sched)
        g = self.params["min_granularity_us"]
        self.gran_us = float(g) if g is not None else float(sched.config.tick_period_us)
        #: Highest vruntime ever dispatched: the queue floor sleepers are
        #: placed against.  Monotonic, so placement never moves backwards.
        self._floor = 0.0

    def _vrt(self, thread: Thread) -> float:
        off = thread.policy_data
        if off is None:
            off = 0.0
            thread.policy_data = 0.0
        return off + thread.stats.cpu_time_us / (128 - thread.priority)

    def _occupant_vrt(self, cpu_idx: int, thread: Thread) -> float:
        """Occupant vruntime including CPU time accrued since dispatch
        (not yet folded into stats)."""
        sched = self.sched
        now = sched.sim.now
        if thread.spinning is not None and thread.completion_ev is None:
            in_flight = now - thread.run_start
        else:
            in_flight = sched.ticks.consumed_work(
                cpu_idx, thread.run_start, now, thread.run_work
            )
        return self._vrt(thread) + in_flight / (128 - thread.priority)

    def queue_key(self, thread: Thread) -> float:
        """Enqueue at the thread's vruntime, sleeper-boosted to the floor."""
        v = self._vrt(thread)
        floor = self._floor - self.gran_us
        if v < floor:
            # Sleeper boost: forgive runtime the thread could not have
            # used while off the queue (mutates the offset, so the credit
            # is permanent).
            thread.policy_data += floor - v
            v = floor
        return v

    def pick(self, cpu_idx: int) -> Optional[Thread]:
        """Lowest-vruntime waiter; raises the monotonic dispatch floor."""
        t = SchedPolicy.pick(self, cpu_idx)
        if t is not None:
            v = self._vrt(t)
            if v > self._floor:
                self._floor = v
        return t

    def place(self, thread: Thread) -> None:
        """Dispatch idles; else preempt the least-fair occupant."""
        sched = self.sched
        glob = thread.use_global_queue and sched.config.daemons_global_queue
        home = thread.affinity_cpu
        if not glob and sched.cpus[home].idle:
            sched._dispatch(home)
            if thread.state is not ThreadState.READY:
                return
        if glob or (thread.allow_steal and sched.config.steal_enabled):
            if self._fill_idle(thread):
                return
        # Preempt where the incumbent is furthest ahead in vruntime —
        # the least fair occupancy (for bound threads: the home CPU).
        target = self._max_vrt_cpu() if glob else home
        if target is None:
            return
        occ = sched.cpus[target].thread
        if occ is None:
            return
        lead = self._occupant_vrt(target, occ) - self._vrt(thread)
        if lead > self.gran_us and sched.sim.now - sched.cpus[target].last_switch >= self.gran_us - 1e-6:
            sched._request_preempt(target)
        else:
            sched._schedule_check(target)

    def _max_vrt_cpu(self) -> Optional[int]:
        sched = self.sched
        worst, worst_v = None, None
        for cpu in sched.cpus:
            t = cpu.thread
            if t is not None:
                v = self._occupant_vrt(cpu.index, t)
                if worst_v is None or v > worst_v:
                    worst, worst_v = cpu.index, v
        return worst

    def on_tick(self, cpu_idx: int) -> None:
        """Rotate out an incumbent a full granularity ahead of a waiter."""
        sched = self.sched
        cpu = sched.cpus[cpu_idx]
        best = self.best_waiting_key(cpu_idx)
        if best is None:
            return
        lead = self._occupant_vrt(cpu_idx, cpu.thread) - best
        if lead > self.gran_us and sched.sim.now - cpu.last_switch >= self.gran_us - 1e-6:
            sched._preempt(cpu_idx)
        else:
            sched._rearm_check(cpu_idx)

    def waiter_beats(self, cpu_idx: int, thread: Thread) -> bool:
        """A waiter wins once the incumbent leads by over a granularity."""
        best = self.best_waiting_key(cpu_idx)
        return (
            best is not None
            and self._occupant_vrt(cpu_idx, thread) - best > self.gran_us
        )

    def snapshot_state(self, desc) -> dict:
        """Base snapshot plus the monotonic vruntime floor."""
        state = super().snapshot_state(desc)
        state["vrt_floor"] = self._floor
        return state
