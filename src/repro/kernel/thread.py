"""Threads and the syscall request protocol.

A thread's body is a Python generator.  It advances by yielding *request*
objects; the scheduler resumes it (``gen.send(result)``) when the request
completes.  Crucially, :class:`Compute` requests consume simulated CPU time
only while the thread actually holds a CPU — a descheduled thread makes no
progress, which is precisely the cascade mechanism the paper studies.

Requests
--------
``Compute(d)``
    Burn *d* µs of CPU.  The thread is runnable; if preempted mid-burn the
    remaining work is preserved and resumed later.
``Sleep(d)`` / ``SleepUntil(t)``
    Release the CPU and wake after *d* µs / at absolute time *t*.  Wakeups
    are **tick-quantised** for threads with ``tick_quantized=True`` (the
    default, matching kernel timeout wheels): the wake fires at the next
    timer-tick boundary of the thread's home CPU at or after the requested
    time.  This is what makes "big ticks" batch daemon wakeups.
``Block()``
    Release the CPU until some other party calls
    :meth:`~repro.kernel.scheduler.NodeScheduler.wake`.
``SpinWait(register)``
    User-space polling (IBM MPI's default ``MP_WAIT_MODE=poll``): the
    thread *keeps its CPU*, spinning until the event of interest occurs.
    ``register(thread)`` is called once; it either returns a non-``None``
    result immediately (the event already happened) or arranges for
    ``NodeScheduler.spin_deliver(thread, value)`` to be called later.
    A spinning thread is preemptible like any other runnable thread — this
    is how a daemon stalls an MPI task that is "waiting" for a message.
``YieldCpu()``
    Go to the back of the ready queue among equals.
``SetPriority(p)``
    Change own priority (zero-time; may trigger reverse preemption of
    self).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Generator, Optional

__all__ = [
    "ThreadState",
    "Compute",
    "Sleep",
    "SleepUntil",
    "Block",
    "SpinWait",
    "YieldCpu",
    "SetPriority",
    "Thread",
    "ThreadStats",
]

_tid_counter = itertools.count(1)


class ThreadState(Enum):
    """Lifecycle of a thread: NEW → READY/RUNNING ↔ BLOCKED/SLEEPING → FINISHED."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    FINISHED = "finished"


# ---------------------------------------------------------------------------
# Syscall request objects
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Compute:
    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("Compute duration must be >= 0")


@dataclass(frozen=True)
class Sleep:
    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("Sleep duration must be >= 0")


@dataclass(frozen=True)
class SleepUntil:
    time_us: float


@dataclass(frozen=True)
class Block:
    """Wait until woken externally via ``NodeScheduler.wake(thread, value)``."""


@dataclass(frozen=True)
class SpinWait:
    """Spin on the CPU until an external event delivers a value.

    ``register`` is invoked exactly once by the scheduler with the spinning
    thread; a non-``None`` return short-circuits the spin (event already
    occurred).  Otherwise the registrar must later call
    ``NodeScheduler.spin_deliver(thread, value)``.
    """

    register: Callable[["Thread"], Optional[Any]]


@dataclass(frozen=True)
class YieldCpu:
    pass


@dataclass(frozen=True)
class SetPriority:
    priority: int

    def __post_init__(self) -> None:
        if not 0 <= self.priority <= 127:
            raise ValueError("priority out of range [0, 127]")


@dataclass
class ThreadStats:
    """Lifetime accounting, used by the trace layer and by tests."""

    cpu_time_us: float = 0.0
    dispatches: int = 0
    preemptions: int = 0
    voluntary_switches: int = 0
    ready_wait_us: float = 0.0
    last_ready_at: float = 0.0


class Thread:
    """A schedulable entity: one kernel thread.

    Most fields are scheduler-private; external layers should only touch
    :attr:`name`, :attr:`category`, :attr:`priority` (read), :attr:`state`
    (read), and :attr:`stats`.

    Parameters
    ----------
    body:
        Generator yielding syscall requests.  ``None`` builds a finished
        placeholder (used by tests).
    priority:
        AIX-style: lower value = more favored.
    affinity_cpu:
        Home CPU index within the node.  Threads are queued there unless
        ``use_global_queue`` routes them to the node-global queue.
    use_global_queue:
        Request queueing to all CPUs of the node.  Only honoured when the
        kernel is configured with ``daemons_global_queue`` (paper §3.1.2);
        the scheduler decides.
    allow_steal:
        Whether an idle CPU may run this thread away from its home CPU.
        Parallel-job main threads are bound (``False``), matching
        production MP_BINDPROC usage; daemons are stealable.
    tick_quantized:
        Whether sleep wakeups snap to tick boundaries (kernel timeout
        semantics).  True for everything except test scaffolding.
    """

    __slots__ = (
        "tid",
        "name",
        "category",
        "priority",
        "base_priority",
        "state",
        "node_id",
        "affinity_cpu",
        "use_global_queue",
        "allow_steal",
        "tick_quantized",
        "hardware",
        "gen",
        "cpu",
        "work_remaining",
        "run_start",
        "run_work",
        "completion_ev",
        "wake_ev",
        "spinning",
        "spin_value",
        "resume_advance",
        "cs_due",
        "rq_entry",
        "policy_data",
        "stats",
        "on_finish",
        "on_priority_change",
    )

    def __init__(
        self,
        body: Optional[Generator],
        name: str,
        priority: int,
        node_id: int,
        affinity_cpu: int,
        category: str = "app",
        use_global_queue: bool = False,
        allow_steal: bool = True,
        tick_quantized: bool = True,
        hardware: bool = False,
    ) -> None:
        if not 0 <= priority <= 127:
            raise ValueError("priority out of range [0, 127]")
        self.tid = next(_tid_counter)
        self.name = name
        self.category = category
        self.priority = priority
        self.base_priority = priority
        self.state = ThreadState.NEW
        self.node_id = node_id
        self.affinity_cpu = affinity_cpu
        self.use_global_queue = use_global_queue
        self.allow_steal = allow_steal
        self.tick_quantized = tick_quantized
        #: Hardware-interrupt wakeup semantics (device interrupt handlers):
        #: becoming ready preempts the target CPU immediately.
        self.hardware = hardware
        self.gen = body

        self.cpu: Optional[int] = None
        #: Remaining CPU work (µs) of the current Compute request.
        self.work_remaining: float = 0.0
        self.run_start: float = 0.0
        #: Work that was scheduled for completion in the current dispatch.
        self.run_work: float = 0.0
        self.completion_ev = None
        self.wake_ev = None
        #: Active SpinWait request, if the thread is spin-waiting.
        self.spinning: Optional[SpinWait] = None
        #: Value delivered to a spinner while it was off-CPU.
        self.spin_value: Any = None
        #: Set when the generator must be advanced at the next dispatch
        #: (YieldCpu completion, or a spin satisfied while off-CPU).
        self.resume_advance: bool = False
        #: Context-switch cost to fold into the next completion.
        self.cs_due: float = 0.0
        self.rq_entry = None
        #: Scheduling-policy-private state (e.g. the fair policy's
        #: vruntime offset).  None until a policy that needs it writes it.
        self.policy_data = None
        self.stats = ThreadStats()
        #: Optional callback invoked when the body finishes.
        self.on_finish: Optional[Callable[["Thread"], None]] = None
        #: Optional callback invoked after every priority change (used to
        #: mirror a task's priority onto its auxiliary threads).
        self.on_priority_change: Optional[Callable[["Thread", int, int], None]] = None

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view of this thread (see :mod:`repro.checkpoint`).

        *desc* resolves identities that are not stable across process
        rebuilds: thread keys come from per-node spawn order (``tid`` is a
        module-global counter) and pending events are described by their
        calendar coordinates, never by object identity.
        """
        return {
            "key": desc.thread(self),
            "name": self.name,
            "category": self.category,
            "state": self.state.value,
            "priority": self.priority,
            "base_priority": self.base_priority,
            "cpu": self.cpu,
            "affinity_cpu": self.affinity_cpu,
            "work_remaining": self.work_remaining,
            "run_start": self.run_start,
            "run_work": self.run_work,
            "cs_due": self.cs_due,
            "spinning": self.spinning is not None,
            "resume_advance": self.resume_advance,
            "policy_data": self.policy_data,
            "wake_ev": desc.event(self.wake_ev),
            "completion_ev": desc.event(self.completion_ev),
            "stats": {
                "cpu_time_us": self.stats.cpu_time_us,
                "dispatches": self.stats.dispatches,
                "preemptions": self.stats.preemptions,
                "voluntary_switches": self.stats.voluntary_switches,
                "ready_wait_us": self.stats.ready_wait_us,
                "last_ready_at": self.stats.last_ready_at,
            },
        }

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.RUNNING)

    @property
    def finished(self) -> bool:
        return self.state is ThreadState.FINISHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.tid} {self.name!r} prio={self.priority} "
            f"{self.state.value} node={self.node_id} cpu={self.cpu}>"
        )
