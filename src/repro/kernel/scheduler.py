"""The per-node dispatcher: priority scheduling with AIX preemption semantics.

One :class:`NodeScheduler` owns the CPUs of one SMP node.  The behaviours
the paper manipulates are all here:

**Delayed cross-CPU preemption (§3).**  When a readying operation should
preempt a *different*, busy CPU, stock AIX waits for that CPU to notice at
its next natural kernel entry — in the worst case the next 10 ms timer
tick.  With the "real time scheduling" option the readying side forces a
hardware interrupt (IPI) instead, observed to land in tenths of a
millisecond.  Two stock deficiencies the paper fixed are modelled as flags:
no IPI on *reverse* preemption (a running thread's priority being lowered
below a waiter's), and at most one preemption IPI in flight at a time.

**Same-CPU immediacy.**  A wakeup processed on the CPU that should run the
thread (our quantised daemon wakeups fire in that CPU's tick context) can
preempt immediately — "if the processor involved is the one on which the
readying operation occurred, the pre-emption can be immediate".

**Equal-priority rotation.**  Runnable equals share a CPU round-robin at
tick boundaries.  This is how an MPI task's auxiliary timer thread (equal
priority, same binding) steals time from a spinning main thread, and how
two MPI tasks forced onto one CPU (the ALE3D trace) serialise.

**Queue policy (§3.1.2).**  Daemons are queued per-CPU for locality by
default; the prototype queues them to a node-global queue served by all
CPUs, trading a per-daemon penalty for maximal overlap.  (The penalty is
applied by the daemon engine inflating service times; the scheduler just
provides the queue.)

**Work stealing.**  An idle CPU takes work whose ``allow_steal`` permits
migration — how a 15-tasks-per-node configuration lets the spare CPU
absorb daemon activity.  Bound job threads are never stolen.

**Policy/mechanism split.**  Everything above describes the *default*
(``aix``) policy.  This class keeps only mechanism — context switches,
completion events, IPIs, tick checks, accounting — and delegates every
decision (queue routing, placement, picking, stealing, rotation,
preempt checks) to a :class:`~repro.kernel.policy.SchedPolicy` selected
by ``KernelConfig.policy``.  The ``aix`` policy is the extracted
original behaviour under a bit-identical contract.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.config import KernelConfig, PRIO_IDLE
from repro.kernel.policy import make_policy
from repro.kernel.runqueue import RunQueue
from repro.kernel.thread import (
    Block,
    Compute,
    SetPriority,
    Sleep,
    SleepUntil,
    SpinWait,
    Thread,
    ThreadState,
    YieldCpu,
)
from repro.kernel.ticks import TickSchedule
from repro.sim.core import EventPriority, Simulator

__all__ = ["CpuState", "NodeScheduler"]

#: Hoisted enum members: the dispatcher schedules kernel-priority events on
#: every completion/wakeup, and repeated ``EventPriority.KERNEL`` attribute
#: walks show up at profile scale.
_PRIO_KERNEL = EventPriority.KERNEL
_PRIO_INTERRUPT = EventPriority.INTERRUPT


class CpuState:
    """Dispatcher-visible state of one CPU."""

    __slots__ = (
        "index",
        "thread",
        "run_began",
        "last_switch",
        "check_ev",
        "busy_us",
        "last_tid",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.thread: Optional[Thread] = None
        #: When the current occupant was placed (for trace intervals).
        self.run_began: float = 0.0
        self.last_switch: float = 0.0
        #: Pending tick-boundary preemption/rotation check event.
        self.check_ev = None
        #: Accumulated busy wall time (utilisation accounting).
        self.busy_us: float = 0.0
        #: tid of the previous occupant (cache-pollution accounting).
        self.last_tid: Optional[int] = None

    @property
    def idle(self) -> bool:
        return self.thread is None


class NodeScheduler:
    """Priority dispatcher for the CPUs of one node.

    Parameters
    ----------
    sim:
        The shared simulator.
    node_id:
        Node index (for traces and thread identity).
    n_cpus:
        CPUs on this node.
    config:
        Kernel policy.
    ticks:
        This node's tick schedule (phase may be node-specific).
    trace:
        Optional object with ``record_interval(node_id, cpu, thread, t0,
        t1)``; called whenever a thread leaves a CPU.
    rng_streams:
        Optional :class:`~repro.rng.StreamFactory` for policies that draw
        randomness (``lottery`` uses ``kernel.lottery.<node>``).  The
        Cluster passes its own factory; deterministic policies never
        touch it, so passing None stays valid for them.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        n_cpus: int,
        config: KernelConfig,
        ticks: TickSchedule,
        trace: Optional[Any] = None,
        rng_streams: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.n_cpus = n_cpus
        self.config = config
        self.ticks = ticks
        self.trace = trace
        self.rng_streams = rng_streams
        self.policy = make_policy(config)
        key = self.policy.queue_key
        self.cpus = [CpuState(i) for i in range(n_cpus)]
        self.local_queues = [RunQueue(f"n{node_id}c{i}", key=key) for i in range(n_cpus)]
        self.global_queue = RunQueue(f"n{node_id}g", key=key)
        self.threads: list[Thread] = []
        self._ipis_inflight = 0
        #: IPIs suppressed by the stock one-in-flight rule (for tests/stats).
        self.ipis_suppressed = 0
        self.ipis_sent = 0
        self.policy.bind(self)
        # Bound-method aliases: the decision calls sit on the dispatch hot
        # path, and one attribute walk per call is the whole price of the
        # policy indirection (guarded by the bench_engine policy bench).
        self._queue_for = self.policy.queue_for
        self._consider_placement = self.policy.place
        self._pick_best = self.policy.pick

    # ==================================================================
    # Public API
    # ==================================================================
    def spawn(
        self,
        body: Generator,
        name: str,
        priority: int,
        affinity_cpu: int,
        category: str = "app",
        use_global_queue: bool = False,
        allow_steal: bool = True,
        tick_quantized: bool = True,
        hardware: bool = False,
        start: bool = True,
    ) -> Thread:
        """Create a thread and advance it to its first request.

        ``start=False`` defers the first advance until :meth:`start` —
        needed when the body's first request touches registration state
        keyed by the thread itself.
        """
        if not 0 <= affinity_cpu < self.n_cpus:
            raise ValueError(f"affinity_cpu {affinity_cpu} out of range")
        thread = Thread(
            body,
            name=name,
            priority=priority,
            node_id=self.node_id,
            affinity_cpu=affinity_cpu,
            category=category,
            use_global_queue=use_global_queue,
            allow_steal=allow_steal,
            tick_quantized=tick_quantized,
            hardware=hardware,
        )
        self.threads.append(thread)
        if start:
            self._advance(thread, None)
        return thread

    def start(self, thread: Thread) -> None:
        """Begin executing a thread spawned with ``start=False``."""
        if thread.state is not ThreadState.NEW:
            raise RuntimeError(f"start() on {thread!r} in state {thread.state}")
        self._advance(thread, None)

    def wake(self, thread: Thread, value: Any = None) -> None:
        """Complete a Block/Sleep: advance the thread to its next request."""
        if thread.state not in (ThreadState.BLOCKED, ThreadState.SLEEPING):
            raise RuntimeError(f"wake() on {thread!r} in state {thread.state}")
        if thread.wake_ev is not None:
            thread.wake_ev.cancel()
            thread.wake_ev = None
        self._advance(thread, value)

    def spin_deliver(self, thread: Thread, value: Any) -> None:
        """Satisfy a SpinWait: the spun-on event occurred."""
        if thread.spinning is None:
            raise RuntimeError(f"spin_deliver() on non-spinning {thread!r}")
        thread.spinning = None
        if thread.state is ThreadState.RUNNING:
            # Account the spin occupancy before the thread moves on.  The
            # segment starts at run_start (set when the spin began or the
            # thread was re-dispatched), NOT cpu.run_began: the occupancy
            # since dispatch may include completed Compute work that
            # _on_complete already credited.
            thread.stats.cpu_time_us += self.sim.now - thread.run_start
            self._advance(thread, value)
        elif thread.state is ThreadState.READY:
            # Preempted mid-spin; resume the generator at next dispatch.
            thread.spin_value = value
            thread.resume_advance = True
        else:  # pragma: no cover - spinners are only RUNNING or READY
            raise RuntimeError(f"spinner {thread!r} in state {thread.state}")

    def set_priority(self, thread: Thread, priority: int, self_call: bool = False) -> None:
        """Change *thread*'s dispatch priority (the co-scheduler's tool).

        ``self_call`` marks a thread changing its own priority via syscall,
        where the kernel is entered anyway and preemption is immediate;
        external changes to a *running* thread on another CPU go through
        the reverse-preemption noticing machinery.
        """
        if not 0 <= priority <= 127:
            raise ValueError("priority out of range [0, 127]")
        old = thread.priority
        if priority == old:
            return
        thread.priority = priority
        if thread.on_priority_change is not None:
            thread.on_priority_change(thread, old, priority)

        if thread.state is ThreadState.READY:
            q = self._queue_for(thread)
            q.remove(thread)
            q.push(thread)
            if priority < old:
                self._consider_placement(thread)
        elif thread.state is ThreadState.RUNNING:
            if priority > old:
                # Reverse preemption: does a waiter now beat us?
                cpu_idx = thread.cpu
                if self.policy.waiter_beats(cpu_idx, thread):
                    if self_call:
                        # Syscall exit is a natural preemption point.
                        self._check_cpu(cpu_idx)
                    elif self.config.realtime_scheduling and self.config.fix_reverse_preemption:
                        self._send_ipi(cpu_idx)
                    else:
                        self._schedule_check(cpu_idx)
        # BLOCKED / SLEEPING / NEW / FINISHED: takes effect on next wakeup.

    def kill(self, thread: Thread) -> None:
        """Terminate *thread* immediately, whatever it is doing.

        Models an abnormal death (the fault injector's tool): the victim is
        yanked off its CPU / out of its queue, pending timers are cancelled,
        and — unlike :meth:`_finish` — ``on_finish`` is *not* invoked: nobody
        is notified, which is exactly why the co-scheduler watchdog exists.
        """
        if thread.state is ThreadState.FINISHED:
            return
        if thread.state is ThreadState.RUNNING:
            self._off_cpu_and_dispatch(thread, voluntary=False)
        elif thread.state is ThreadState.READY:
            self._queue_for(thread).remove(thread)
        if thread.wake_ev is not None:
            thread.wake_ev.cancel()
            thread.wake_ev = None
        if thread.completion_ev is not None:
            thread.completion_ev.cancel()
            thread.completion_ev = None
        thread.spinning = None
        thread.resume_advance = False
        thread.spin_value = None
        thread.state = ThreadState.FINISHED
        thread.gen = None

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view of the dispatcher: CPUs, queues, all threads."""
        return {
            "node": self.node_id,
            "cpus": [
                {
                    "index": c.index,
                    "thread": desc.thread(c.thread),
                    "run_began": c.run_began,
                    "last_switch": c.last_switch,
                    "busy_us": c.busy_us,
                    "last": desc.tid(c.last_tid),
                    "check_pending": c.check_ev is not None and c.check_ev.active,
                }
                for c in self.cpus
            ],
            "local_queues": [q.snapshot_state(desc) for q in self.local_queues],
            "global_queue": self.global_queue.snapshot_state(desc),
            "threads": [t.snapshot_state(desc) for t in self.threads],
            "ipis": {
                "inflight": self._ipis_inflight,
                "sent": self.ipis_sent,
                "suppressed": self.ipis_suppressed,
            },
            "policy": self.policy.snapshot_state(desc),
        }

    def idle_cpus(self) -> int:
        """Number of CPUs with no occupant right now."""
        return sum(1 for c in self.cpus if c.idle)

    def running_threads(self) -> list[Optional[Thread]]:
        """Per-CPU occupants (None for idle CPUs)."""
        return [c.thread for c in self.cpus]

    # ==================================================================
    # Generator driving
    # ==================================================================
    def _advance(self, thread: Thread, value: Any) -> None:
        """Drive the body generator until it issues a time-taking request.

        This is the hottest dispatcher function (once per syscall request),
        so the generator's ``send`` is bound once and requests dispatch on
        exact class identity — the request types are final dataclasses, so
        ``type(req) is Compute`` is both correct and skips the isinstance
        machinery for the Compute case that dominates real workloads.
        """
        sim = self.sim
        send = thread.gen.send
        while True:
            try:
                req = send(value)
            except StopIteration:
                self._finish(thread)
                return
            value = None
            cls = req.__class__

            if cls is Compute:
                if req.duration_us <= 0:
                    continue
                thread.work_remaining = req.duration_us
                if thread.state is ThreadState.RUNNING:
                    self._schedule_completion(thread)
                else:
                    self._make_ready(thread)
                return

            if cls is Sleep or cls is SleepUntil:
                if cls is Sleep:
                    wake_t = sim.now + req.duration_us
                else:
                    wake_t = max(sim.now, req.time_us)
                if thread.tick_quantized:
                    wake_t = self.ticks.quantize_wake(thread.affinity_cpu, wake_t)
                if thread.state is ThreadState.RUNNING:
                    self._off_cpu_and_dispatch(thread, voluntary=True)
                thread.state = ThreadState.SLEEPING
                thread.wake_ev = sim.schedule_at(
                    wake_t, self._timer_wake, thread, priority=_PRIO_KERNEL
                )
                return

            if cls is Block:
                if thread.state is ThreadState.RUNNING:
                    self._off_cpu_and_dispatch(thread, voluntary=True)
                thread.state = ThreadState.BLOCKED
                return

            if cls is SpinWait:
                res = req.register(thread)
                if res is not None:
                    value = res  # event already occurred; no spin needed
                    continue
                thread.spinning = req
                if thread.state is ThreadState.RUNNING:
                    # Occupy the CPU open-endedly; no completion event.
                    thread.run_start = self.sim.now
                    thread.run_work = 0.0
                else:
                    self._make_ready(thread)
                return

            if cls is SetPriority:
                self.set_priority(thread, req.priority, self_call=True)
                if thread.state is not ThreadState.RUNNING:
                    # set_priority preempted us (reverse preemption at the
                    # syscall boundary); the generator resumes at dispatch.
                    thread.resume_advance = True
                    return
                continue

            if cls is YieldCpu:
                if thread.state is ThreadState.RUNNING:
                    thread.resume_advance = True
                    self._off_cpu_and_dispatch(thread, voluntary=True)
                    self._make_ready(thread)
                    return
                continue

            raise TypeError(f"unknown syscall request {req!r} from {thread!r}")

    def _finish(self, thread: Thread) -> None:
        if thread.state is ThreadState.RUNNING:
            self._off_cpu_and_dispatch(thread, voluntary=True)
        if thread.wake_ev is not None:
            thread.wake_ev.cancel()
            thread.wake_ev = None
        thread.state = ThreadState.FINISHED
        thread.gen = None
        if thread.on_finish is not None:
            thread.on_finish(thread)

    def _timer_wake(self, thread: Thread) -> None:
        thread.wake_ev = None
        if thread.state is ThreadState.SLEEPING:
            self._advance(thread, None)

    # ==================================================================
    # Ready queues and placement
    # ==================================================================
    # _queue_for / _consider_placement / _pick_best are bound to the
    # active policy's queue_for / place / pick in __init__.

    def _make_ready(self, thread: Thread) -> None:
        thread.state = ThreadState.READY
        thread.stats.last_ready_at = self.sim.now
        self._queue_for(thread).push(thread)
        self._consider_placement(thread)

    def _find_idle_cpu(self) -> Optional[int]:
        for cpu in self.cpus:
            if cpu.idle:
                return cpu.index
        return None

    # ==================================================================
    # Dispatch / placement
    # ==================================================================
    def _dispatch(self, cpu_idx: int) -> None:
        cpu = self.cpus[cpu_idx]
        if cpu.thread is not None:
            return
        thread = self._pick_best(cpu_idx)
        if thread is None:
            return
        self._place(cpu, thread)

    def _place(self, cpu: CpuState, thread: Thread) -> None:
        now = self.sim.now
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu.index
        cpu.thread = thread
        cpu.run_began = now
        cpu.last_switch = now
        thread.stats.dispatches += 1
        thread.stats.ready_wait_us += now - thread.stats.last_ready_at
        thread.cs_due = self.config.context_switch_us
        if (
            self.config.cache_refill_us > 0.0
            and cpu.last_tid is not None
            and cpu.last_tid != thread.tid
        ):
            # Someone else's working set evicted ours: pay the refill.
            thread.cs_due += self.config.cache_refill_us
        cpu.last_tid = thread.tid

        if thread.resume_advance:
            # Generator continuation (YieldCpu done, or spin satisfied while
            # off-CPU).  Deferred through the event queue so deep chains of
            # zero-time re-dispatches can't recurse.  The flag stays set
            # until the resume actually runs, so a same-timestamp preemption
            # and re-dispatch cannot lose (or double-drive) the
            # continuation; stale resume events no-op on the cleared flag.
            thread.run_start = now
            thread.run_work = 0.0
            self.sim.schedule(0.0, self._resume_on_cpu, thread, priority=_PRIO_KERNEL)
        elif thread.spinning is not None:
            thread.run_start = now
            thread.run_work = 0.0
        else:
            self._schedule_completion(thread)

    def _resume_on_cpu(self, thread: Thread) -> None:
        # Only fire while the thread still holds a CPU *and* the
        # continuation is still pending; otherwise the flag survives and the
        # next _place schedules a fresh resume.
        if thread.state is ThreadState.RUNNING and thread.resume_advance:
            thread.resume_advance = False
            value, thread.spin_value = thread.spin_value, None
            self._advance(thread, value)

    def _schedule_completion(self, thread: Thread) -> None:
        sim = self.sim
        now = sim.now
        work = thread.work_remaining + thread.cs_due
        thread.cs_due = 0.0
        thread.run_start = now
        thread.run_work = work
        t_done = self.ticks.inflate(thread.cpu, now, work)
        thread.completion_ev = sim.schedule_at(
            t_done, self._on_complete, thread, priority=_PRIO_KERNEL
        )

    def _on_complete(self, thread: Thread) -> None:
        thread.completion_ev = None
        thread.stats.cpu_time_us += thread.run_work
        thread.work_remaining = 0.0
        thread.run_work = 0.0
        self._advance(thread, None)

    def _off_cpu_and_dispatch(self, thread: Thread, voluntary: bool) -> None:
        """Release *thread*'s CPU and refill it."""
        cpu_idx = self._off_cpu(thread, voluntary)
        self._dispatch(cpu_idx)

    def _off_cpu(self, thread: Thread, voluntary: bool) -> int:
        cpu_idx = thread.cpu
        cpu = self.cpus[cpu_idx]
        now = self.sim.now
        if self.trace is not None:
            self.trace.record_interval(self.node_id, cpu_idx, thread, cpu.run_began, now)
        cpu.busy_us += now - cpu.run_began
        if thread.completion_ev is not None:
            thread.completion_ev.cancel()
            thread.completion_ev = None
        if thread.spinning is not None:
            # Same run_start rationale as spin_deliver: don't re-charge
            # compute already credited by _on_complete.
            thread.stats.cpu_time_us += now - thread.run_start
        if voluntary:
            thread.stats.voluntary_switches += 1
        cpu.thread = None
        thread.cpu = None
        return cpu_idx

    # ==================================================================
    # Preemption machinery
    # ==================================================================
    def _request_preempt(self, cpu_idx: int) -> None:
        """A better-priority thread waits for a busy CPU: get it noticed."""
        if self.config.realtime_scheduling:
            if self.config.fix_multi_ipi or self._ipis_inflight == 0:
                self._send_ipi(cpu_idx)
                return
            self.ipis_suppressed += 1
        self._schedule_check(cpu_idx)

    def _send_ipi(self, cpu_idx: int) -> None:
        if self.config.fix_multi_ipi or self._ipis_inflight == 0:
            self._ipis_inflight += 1
            self.ipis_sent += 1
            self.sim.schedule(
                self.config.ipi_latency_us,
                self._ipi_arrive,
                cpu_idx,
                priority=_PRIO_INTERRUPT,
            )
        else:
            self.ipis_suppressed += 1
            self._schedule_check(cpu_idx)

    def _ipi_arrive(self, cpu_idx: int) -> None:
        self._ipis_inflight -= 1
        cpu = self.cpus[cpu_idx]
        # The interrupted context pays the handler cost.
        th = cpu.thread
        if th is not None and th.completion_ev is not None:
            th.completion_ev.cancel()
            th.run_work += self.config.ipi_cost_us
            t_done = self.ticks.inflate(cpu_idx, th.run_start, th.run_work)
            th.completion_ev = self.sim.schedule_at(
                max(t_done, self.sim.now), self._on_complete, th, priority=_PRIO_KERNEL
            )
        self._check_cpu(cpu_idx)

    def _schedule_check(self, cpu_idx: int) -> None:
        """Arrange for *cpu_idx* to notice pending work at its next tick.

        If we are already inside this CPU's tick processing (quantised
        wakeups fire exactly on boundaries), the check is immediate — the
        readying operation happened on the noticing CPU.
        """
        cpu = self.cpus[cpu_idx]
        if self.ticks.is_boundary(cpu_idx, self.sim.now):
            self._check_cpu(cpu_idx)
            return
        if cpu.check_ev is not None and cpu.check_ev.active:
            return
        cpu.check_ev = self.sim.schedule_at(
            self.ticks.next_boundary(cpu_idx, self.sim.now),
            self._tick_check,
            cpu_idx,
            priority=_PRIO_INTERRUPT,
        )

    def _tick_check(self, cpu_idx: int) -> None:
        self.cpus[cpu_idx].check_ev = None
        self._check_cpu(cpu_idx)

    def _rearm_check(self, cpu_idx: int) -> None:
        """Re-arm the pending-work check for *cpu_idx*'s next tick boundary
        (policies call this when the incumbent keeps its CPU for now)."""
        cpu = self.cpus[cpu_idx]
        if cpu.check_ev is None or not cpu.check_ev.active:
            cpu.check_ev = self.sim.schedule_at(
                self.ticks.next_boundary(cpu_idx, self.sim.now),
                self._tick_check,
                cpu_idx,
                priority=_PRIO_INTERRUPT,
            )

    def _check_cpu(self, cpu_idx: int) -> None:
        """Preemption point: refill an idle CPU, else let the policy judge
        the occupant against its waiters."""
        if self.cpus[cpu_idx].thread is None:
            self._dispatch(cpu_idx)
            return
        self.policy.on_tick(cpu_idx)

    def _preempt(self, cpu_idx: int) -> None:
        cpu = self.cpus[cpu_idx]
        thread = cpu.thread
        now = self.sim.now
        if thread.spinning is None:
            done = self.ticks.consumed_work(cpu_idx, thread.run_start, now, thread.run_work)
            thread.stats.cpu_time_us += done
            remaining = thread.run_work - done
        else:
            remaining = 0.0
        thread.stats.preemptions += 1
        self._off_cpu(thread, voluntary=False)
        thread.run_work = 0.0
        thread.work_remaining = remaining
        self._make_ready(thread)
        self._dispatch(cpu_idx)
