"""Key-ordered run queues with lazy removal.

Default dispatch order is AIX's: numerically lowest priority first, FIFO
among equals.  A :class:`~repro.kernel.policy.SchedPolicy` may instead
supply a *key* callable evaluated at enqueue time (virtual runtime for
``fair``, a constant for the FIFO policies — entries then order purely by
sequence number).  Entries are heap tuples ``(key, seq, thread)``; removal
(thread chosen elsewhere, priority change) marks the entry stale via the
thread's ``rq_entry`` back-pointer and the heap skips stale entries on
pop — the same O(1)-cancel idiom the event queue uses.  When stale
entries outnumber live ones past a floor, :meth:`remove` compacts the
heap in place (mirroring the event queue's dead>live>=64 rule) so
churn-heavy workloads cannot accumulate unbounded dead weight.

``seq`` comes from a class-global counter, so sequence order is total
*across* queues — :meth:`head_rank` exposes the head's ``(key, seq)``
rank for policies that run a cross-queue FIFO.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator, Optional

from repro.kernel.thread import Thread

__all__ = ["RunQueue"]

#: Compaction floor: never compact tiny heaps (pruning handles those);
#: beyond it, compact as soon as dead entries outnumber live ones.
_COMPACT_MIN_ENTRIES = 64


class _Entry:
    __slots__ = ("priority", "seq", "thread", "live")

    def __init__(self, priority: float, seq: int, thread: Thread) -> None:
        self.priority = priority
        self.seq = seq
        self.thread = thread
        self.live = True

    def __lt__(self, other: "_Entry") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class RunQueue:
    """One dispatch queue (per-CPU local, or node-global for daemons)."""

    _seq = itertools.count()

    def __init__(
        self, name: str = "", key: Optional[Callable[[Thread], float]] = None
    ) -> None:
        self.name = name
        #: Enqueue-time ordering key; None = thread.priority (AIX order,
        #: and the fast path — no callable indirection in push).
        self._key = key
        self._heap: list[_Entry] = []
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, thread: Thread) -> None:
        """Enqueue *thread* at its current key, behind equals."""
        if thread.rq_entry is not None and thread.rq_entry.live:
            raise RuntimeError(f"{thread!r} is already queued")
        key = thread.priority if self._key is None else self._key(thread)
        entry = _Entry(key, next(self._seq), thread)
        thread.rq_entry = entry
        heapq.heappush(self._heap, entry)
        self._live += 1

    def remove(self, thread: Thread) -> None:
        """Dequeue *thread* (lazy; compacts when dead weight dominates)."""
        entry = thread.rq_entry
        if entry is None or not entry.live:
            raise RuntimeError(f"{thread!r} is not queued")
        entry.live = False
        entry.thread = None
        thread.rq_entry = None
        self._live -= 1
        dead = len(self._heap) - self._live
        if dead >= _COMPACT_MIN_ENTRIES and dead > self._live:
            self._heap = [e for e in self._heap if e.live]
            heapq.heapify(self._heap)

    def _prune(self) -> None:
        heap = self._heap
        while heap and not heap[0].live:
            heapq.heappop(heap)

    def best_priority(self) -> Optional[int]:
        """Key of the head thread (priority under the default order), or None."""
        self._prune()
        return self._heap[0].priority if self._heap else None

    def head_rank(self) -> Optional[tuple]:
        """``(key, seq)`` rank of the head thread, or None when empty.

        Sequence numbers are globally monotonic across queues, so ranks
        compare meaningfully *between* queues — the cross-queue FIFO the
        quantum policy runs.
        """
        self._prune()
        if not self._heap:
            return None
        head = self._heap[0]
        return (head.priority, head.seq)

    def peek(self) -> Optional[Thread]:
        """Return (without removing) the head thread, or None."""
        self._prune()
        return self._heap[0].thread if self._heap else None

    def pop(self) -> Optional[Thread]:
        """Dequeue and return the best thread, or None when empty."""
        self._prune()
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        thread = entry.thread
        entry.live = False
        entry.thread = None
        thread.rq_entry = None
        self._live -= 1
        return thread

    def best_stealable_priority(self) -> Optional[int]:
        """Best priority among threads that permit migration, or None."""
        best: Optional[int] = None
        for entry in self._heap:
            if entry.live and entry.thread.allow_steal:
                if best is None or entry.priority < best:
                    best = entry.priority
        return best

    def pop_stealable(self) -> Optional[Thread]:
        """Dequeue the best thread with ``allow_steal`` set, or None.

        Linear scan — stealing is rare (only when a CPU idles with an empty
        local queue), and queues are short.
        """
        best_entry: Optional[_Entry] = None
        for entry in self._heap:
            if entry.live and entry.thread.allow_steal:
                if best_entry is None or entry < best_entry:
                    best_entry = entry
        if best_entry is None:
            return None
        thread = best_entry.thread
        best_entry.live = False
        best_entry.thread = None
        thread.rq_entry = None
        self._live -= 1
        return thread

    def threads(self) -> Iterator[Thread]:
        """Iterate live queued threads (test/introspection helper)."""
        for entry in self._heap:
            if entry.live:
                yield entry.thread

    def snapshot_state(self, desc) -> dict:
        """Checkpoint view: queued threads in exact dispatch order.

        Entry sequence numbers come from a class-global counter, so their
        absolute values differ between rebuilds of the same run — only the
        *order* they induce is reproducible, and only the order is
        captured.
        """
        order = sorted(
            (e for e in self._heap if e.live), key=lambda e: (e.priority, e.seq)
        )
        return {
            "name": self.name,
            "order": [[e.priority, desc.thread(e.thread)] for e in order],
        }
