"""`schedtune`-style kernel option surface.

The paper notes that "implementing these changes as options in a production
operating system such as AIX requires some mechanism for selecting these
options.  We accomplished this by adding options to the `schedtune` command".
This module is that mechanism's analogue: a small command-like interface
that validates option names/values and produces :class:`KernelConfig`
instances, so experiment scripts read like the administrative actions the
paper describes.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Mapping

from repro.config import KernelConfig

__all__ = ["Schedtune"]

#: Options the prototype kernel added, with the paper section introducing
#: each (kept as documentation surfaced through `describe`).
_PAPER_OPTIONS = {
    "big_tick_multiplier": "§3.1.1 Generate fewer routine timer interrupts",
    "tick_phase": "§3.2.1 Take timer ticks simultaneously on each CPU",
    "align_ticks_to_global_time": "§4 Schedule tick interrupts at the same time cluster-wide",
    "realtime_scheduling": "§3 Existing AIX real-time scheduling option",
    "fix_reverse_preemption": "§3 improvement 1: IPI on reverse pre-emption",
    "fix_multi_ipi": "§3 improvement 2: multiple in-flight preemption IPIs",
    "daemons_global_queue": "§3.1.2 Execute overhead tasks with maximum parallelism",
    "policy": "beyond the paper: pluggable dispatch policy (repro.kernel.policy zoo)",
}


class Schedtune:
    """Mutable view over kernel options; `commit()` yields a KernelConfig.

    >>> st = Schedtune()
    >>> st.set("big_tick_multiplier", 25)
    >>> st.set("tick_phase", "aligned")
    >>> cfg = st.commit()
    >>> cfg.physical_tick_period_us
    250000.0

    Policy selection rides the same surface: ``set("policy", "quantum")``
    picks a zoo member, and dotted ``policy.<param>`` names stage its
    tunables (``set("policy.slice_us", 5000.0)``) — validated against the
    *currently staged* policy's declared parameters, so select the policy
    first.
    """

    def __init__(self, base: KernelConfig | None = None) -> None:
        self._base = base if base is not None else KernelConfig()
        self._pending: dict[str, Any] = {}
        self._valid = {f.name for f in fields(KernelConfig)}

    def set(self, option: str, value: Any) -> None:
        """Stage an option change; unknown names raise immediately.

        ``policy.<param>`` stages one per-policy parameter, merged into
        ``policy_params`` and validated against the staged policy.
        """
        if option.startswith("policy."):
            from repro.kernel.policy import policy_param_names

            param = option[len("policy."):]
            policy = self.get("policy")
            valid = policy_param_names(policy)
            if param not in valid:
                raise KeyError(
                    f"schedtune: policy {policy!r} has no parameter {param!r}; "
                    f"valid: {sorted(valid)}"
                )
            merged = dict(self.get("policy_params"))
            merged[param] = value
            self._pending["policy_params"] = tuple(sorted(merged.items()))
            return
        if option not in self._valid:
            raise KeyError(
                f"schedtune: unknown option {option!r}; valid: {sorted(self._valid)}"
            )
        self._pending[option] = value

    def set_many(self, options: Mapping[str, Any]) -> None:
        """Stage several option changes at once."""
        for k, v in options.items():
            self.set(k, v)

    def get(self, option: str) -> Any:
        """Current (staged or base) value of an option."""
        if option in self._pending:
            return self._pending[option]
        if option not in self._valid:
            raise KeyError(f"schedtune: unknown option {option!r}")
        return getattr(self._base, option)

    def commit(self) -> KernelConfig:
        """Validate and return the resulting immutable KernelConfig."""
        return self._base.with_options(**self._pending)

    def reset(self) -> None:
        """Discard all staged changes."""
        self._pending.clear()

    @staticmethod
    def describe(option: str) -> str:
        """Where in the paper an option comes from ('' for base options)."""
        return _PAPER_OPTIONS.get(option, "")

    @staticmethod
    def paper_options() -> tuple[str, ...]:
        return tuple(_PAPER_OPTIONS)
