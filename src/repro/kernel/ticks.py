"""Timer-tick arithmetic.

Rather than firing an event per CPU per tick (which would dominate the
event budget of any whole-cluster run: 1024 CPUs × 100 Hz = 102 400 events
per simulated second), the tick engine is *analytic*: tick boundaries are a
closed-form arithmetic progression per CPU, and their CPU cost is folded
into compute-completion times via :meth:`TickSchedule.inflate`.  Events are
only scheduled at tick boundaries when something actually hangs off them —
a pending cross-CPU preemption, an equal-priority rotation, or a quantised
sleep wakeup.

This preserves every behaviour the paper manipulates:

* **staggered vs aligned phase** (§3.2.1): boundary phase is per-CPU
  (``x + k·stagger``) or shared; with ``align_ticks_to_global_time`` the
  phase is additionally anchored to global-time multiples of the period so
  the *whole cluster* ticks simultaneously once clocks are synchronised.
* **big ticks** (§3.1.1): the physical period is ``base × multiplier``;
  quantised wakeups snap to the coarser boundaries, which is what batches
  daemon activations.
* **tick cost**: a thread running across k boundaries pays k × cost, so
  per-CPU overhead falls as the multiplier rises.
"""

from __future__ import annotations

import math

from repro.config import KernelConfig

__all__ = ["TickSchedule"]

#: Absolute slop (µs) for "is this time exactly on a boundary" tests.
#: Double precision holds ~1e-7 µs absolute error at hour-long runs.
_EPS = 1e-6


class TickSchedule:
    """Tick boundaries and costs for the CPUs of one node.

    Parameters
    ----------
    config:
        Kernel policy (period, multiplier, phase policy, costs).
    n_cpus:
        CPUs on this node.
    node_phase_us:
        This node's base tick phase.  Ignored (forced to the node clock
        offset complement) when ``align_ticks_to_global_time`` is set —
        the kernel schedules ticks on boundaries of its *local* clock, so
        a node whose clock is offset from global time ticks early/late by
        that offset.
    clock_offset_us:
        The node's time-of-day offset from global simulation time.
    """

    def __init__(
        self,
        config: KernelConfig,
        n_cpus: int,
        node_phase_us: float = 0.0,
        clock_offset_us: float = 0.0,
    ) -> None:
        self.config = config
        self.n_cpus = n_cpus
        self.period = config.physical_tick_period_us
        self.cost = config.physical_tick_cost_us
        if config.align_ticks_to_global_time:
            # Local clock reads (global + offset); local boundaries at
            # multiples of the period land at global times (k·P - offset).
            base = (-clock_offset_us) % self.period
        else:
            base = node_phase_us % self.period
        if config.tick_phase == "staggered":
            self._phases = [
                (base + i * config.stagger_offset_us) % self.period for i in range(n_cpus)
            ]
        else:
            self._phases = [base] * n_cpus

    def phase(self, cpu: int) -> float:
        """Tick phase of *cpu* in [0, period)."""
        return self._phases[cpu]

    # ------------------------------------------------------------------
    # Boundary queries
    # ------------------------------------------------------------------
    def next_boundary(self, cpu: int, t: float) -> float:
        """First boundary strictly after *t* (with epsilon slop)."""
        ph = self._phases[cpu]
        k = math.floor((t - ph + _EPS) / self.period) + 1
        return ph + k * self.period

    def boundary_at_or_after(self, cpu: int, t: float) -> float:
        """First boundary at or after *t* (used for sleep quantisation)."""
        ph = self._phases[cpu]
        k = math.ceil((t - ph - _EPS) / self.period)
        return ph + k * self.period

    def is_boundary(self, cpu: int, t: float) -> bool:
        """True when *t* coincides with a tick boundary of *cpu*."""
        ph = self._phases[cpu]
        frac = (t - ph) % self.period
        return frac < _EPS or (self.period - frac) < _EPS

    def boundaries_in(self, cpu: int, t0: float, t1: float, inclusive_end: bool = True) -> int:
        """Count boundaries in ``(t0, t1]`` (or ``(t0, t1)``)."""
        if t1 <= t0:
            return 0
        ph = self._phases[cpu]
        lo = math.floor((t0 - ph + _EPS) / self.period)
        if inclusive_end:
            hi = math.floor((t1 - ph + _EPS) / self.period)
        else:
            hi = math.ceil((t1 - ph - _EPS) / self.period) - 1
        return max(0, hi - lo)

    # ------------------------------------------------------------------
    # Cost folding
    # ------------------------------------------------------------------
    def inflate(self, cpu: int, start: float, work: float) -> float:
        """Completion time for *work* µs of CPU begun at *start* on *cpu*.

        Fixed point of ``t = start + work + cost × boundaries_in(start, t]``:
        each tick crossed while running charges its handler cost to the
        running thread, possibly pushing completion across further ticks.

        This is the dispatcher's per-completion hot path (one call per
        scheduled completion), so the boundary count is inlined with the
        *start*-side floor hoisted out of the fixed-point loop — each
        iteration pays one division instead of a :meth:`boundaries_in`
        call recomputing both ends.  Deliberately **not** optimised:
        replacing the division with a precomputed reciprocal multiply is
        ~1 ulp sloppier, and near eps-shifted boundaries that ulp can flip
        the floor — violating the bit-identical-results contract the
        engine work is held to.
        """
        if work <= 0:
            return start
        cost = self.cost
        base = start + work
        if cost == 0.0:
            return base
        period = self.period
        ph = self._phases[cpu]
        floor = math.floor
        lo = floor((start - ph + _EPS) / period)
        t = base
        while True:
            k = floor((t - ph + _EPS) / period) - lo
            t2 = base + cost * k
            if t2 <= t + _EPS:
                return t2
            t = t2

    def consumed_work(self, cpu: int, start: float, now: float, run_work: float) -> float:
        """CPU work completed by a thread that ran on *cpu* from *start* to *now*.

        Subtracts tick-handler costs for boundaries strictly inside the
        interval (a preemption occurring *at* a boundary is the tick's own
        doing, so that boundary's cost is not charged).  Clamped to
        ``[0, run_work]``.
        """
        elapsed = now - start
        if elapsed <= 0:
            return 0.0
        k = self.boundaries_in(cpu, start, now, inclusive_end=False)
        return min(max(0.0, elapsed - self.cost * k), run_work)

    def quantize_wake(self, cpu: int, t: float) -> float:
        """Snap a sleep wakeup to kernel timeout granularity."""
        return self.boundary_at_or_after(cpu, t)
