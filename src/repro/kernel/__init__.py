"""AIX-like SMP kernel scheduling model.

This package models the scheduling semantics the paper manipulates:

* priority dispatch with per-CPU run queues and an optional node-global
  queue for daemons (:mod:`repro.kernel.runqueue`, §3.1.2),
* timer ticks — period, per-CPU phase (staggered vs aligned) and the
  "big tick" folding, charged analytically to running threads
  (:mod:`repro.kernel.ticks`, §3.1.1/§3.2.1),
* delayed cross-CPU preemption noticing, the "real time scheduling" IPI
  option, and the paper's reverse-preemption / multi-IPI fixes
  (:mod:`repro.kernel.scheduler`, §3),
* a `schedtune`-style option surface (:mod:`repro.kernel.schedtune`),
* pluggable dispatch policies behind the SchedPolicy interface — the
  extracted ``aix`` default plus a fair/quantum/lottery zoo
  (:mod:`repro.kernel.policy`).

Threads are Python generators yielding syscall request objects
(:mod:`repro.kernel.thread`); compute only progresses while a thread
actually holds a CPU, which is what makes the paper's cascade effect
emergent rather than assumed.
"""

from repro.kernel.thread import (
    Block,
    Compute,
    SetPriority,
    Sleep,
    SleepUntil,
    SpinWait,
    Thread,
    ThreadState,
    YieldCpu,
)
from repro.kernel.ticks import TickSchedule
from repro.kernel.policy import SchedPolicy, make_policy, policy_names, register_policy
from repro.kernel.runqueue import RunQueue
from repro.kernel.scheduler import NodeScheduler
from repro.kernel.schedtune import Schedtune

__all__ = [
    "SchedPolicy",
    "make_policy",
    "policy_names",
    "register_policy",
    "Thread",
    "ThreadState",
    "Compute",
    "Sleep",
    "SleepUntil",
    "Block",
    "SpinWait",
    "YieldCpu",
    "SetPriority",
    "TickSchedule",
    "RunQueue",
    "NodeScheduler",
    "Schedtune",
]
