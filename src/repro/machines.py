"""Named presets for the paper's evaluation platforms.

"LLNL conducted tests on two machines: 'ASCI White,' a classified system
that has a total of 512 nodes, all 16-way SMPs based on the 375 MHz
Power3 processor; and 'Frost' which has a total of 68 nodes … The AWE
machine, 'Blue Oak', has a total of 128 nodes, of which 120 are 16-way
Nighthawk II compute nodes; thus the maximum number of Power3-II
processors available to run the tests is 1920."
"""

from __future__ import annotations

from repro.config import MachineConfig

__all__ = ["ASCI_WHITE", "FROST", "BLUE_OAK", "machine_preset", "PRESETS"]

#: ASCI White (LLNL): 512 × 16-way Power3.
ASCI_WHITE = MachineConfig(n_nodes=512, cpus_per_node=16)
#: Frost (LLNL): 68 × 16-way Power3.
FROST = MachineConfig(n_nodes=68, cpus_per_node=16)
#: Blue Oak (AWE): 120 × 16-way Nighthawk II compute nodes (1920 CPUs).
BLUE_OAK = MachineConfig(n_nodes=120, cpus_per_node=16)

PRESETS: dict[str, MachineConfig] = {
    "asci-white": ASCI_WHITE,
    "frost": FROST,
    "blue-oak": BLUE_OAK,
}


def machine_preset(name: str) -> MachineConfig:
    """Look up a paper platform by name (case-insensitive)."""
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    try:
        return PRESETS[key]
    except KeyError:
        raise KeyError(f"unknown machine {name!r}; presets: {sorted(PRESETS)}") from None
