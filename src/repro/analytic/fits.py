"""Scaling-curve fits (paper Figure 6).

The paper fits straight lines to Allreduce time vs processor count —
``y_vanilla(x) = 0.70·x + 166`` and ``y_prototype(x) = 0.22·x + 210`` —
and reads the ~3× improvement off the slope ratio.  It also contrasts the
measured *linear* scaling against the *logarithmic* scaling the tree
algorithm predicts.  This module provides both fits plus a comparison that
says which one explains the data better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FitResult", "fit_linear", "fit_log", "compare_fits"]


@dataclass(frozen=True)
class FitResult:
    """A least-squares fit ``y ≈ a·f(x) + b`` with its quality."""

    kind: str     # "linear" (f=x) or "log" (f=log2 x)
    slope: float  # a
    intercept: float  # b
    r2: float

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted curve at *x* (scalar or array)."""
        x = np.asarray(x, dtype=float)
        fx = np.log2(x) if self.kind == "log" else x
        return self.slope * fx + self.intercept

    def __str__(self) -> str:
        f = "log2(x)" if self.kind == "log" else "x"
        return f"y = {self.slope:.3g}·{f} + {self.intercept:.4g}  (R²={self.r2:.3f})"


def _fit(x: np.ndarray, y: np.ndarray, kind: str) -> FitResult:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need >= 2 points with matching shapes")
    fx = np.log2(x) if kind == "log" else x
    a, b = np.polyfit(fx, y, 1)
    resid = y - (a * fx + b)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(kind, float(a), float(b), r2)


def fit_linear(x, y) -> FitResult:
    """Least-squares ``y = a·x + b`` (the paper's Figure 6 lines)."""
    return _fit(np.asarray(x), np.asarray(y), "linear")


def fit_log(x, y) -> FitResult:
    """Least-squares ``y = a·log2(x) + b`` (the ideal tree scaling)."""
    return _fit(np.asarray(x), np.asarray(y), "log")


def compare_fits(x, y) -> tuple[FitResult, FitResult, str]:
    """Fit both forms; returns (linear, log, winner) by R².

    The paper's diagnosis — "the performance is linear and exhibits
    extreme variability … rather than logarithmically" — corresponds to
    the linear fit winning on noisy configurations and the log fit
    winning on noise-free ones.
    """
    lin = fit_linear(x, y)
    log = fit_log(x, y)
    winner = "linear" if lin.r2 >= log.r2 else "log"
    return lin, log, winner
