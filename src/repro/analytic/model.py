"""The vectorised Allreduce series model.

State is one vector: each rank's ready time.  A call advances every rank
through the recursive-doubling schedule round by round; each round is a
numpy maximum/propagation over partner indices, with noise injected from
:class:`~repro.analytic.noise.NoiseInjector`.  Non-power-of-two sizes use
the exact MPICH fold/unfold structure, so round counts (and therefore the
zero-noise logarithmic baseline) match the DES implementation.

The model is *the cascade, vectorised*: a single delayed rank propagates
its lateness to its partner, then to the partner's partners — max-plus
algebra over the exchange graph — which is why noise turns logarithmic
scaling linear exactly as the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig
from repro.analytic.noise import NoiseInjector

__all__ = ["AllreduceSeriesModel", "SeriesResult"]


@dataclass
class SeriesResult:
    """Outcome of one modelled series of Allreduce calls."""

    #: Mean-over-ranks duration of each call (µs).
    durations_us: np.ndarray
    n_ranks: int
    tasks_per_node: int

    @property
    def mean_us(self) -> float:
        return float(np.mean(self.durations_us))

    @property
    def median_us(self) -> float:
        return float(np.median(self.durations_us))

    @property
    def max_us(self) -> float:
        return float(np.max(self.durations_us))

    @property
    def min_us(self) -> float:
        return float(np.min(self.durations_us))

    @property
    def std_us(self) -> float:
        return float(np.std(self.durations_us))


class AllreduceSeriesModel:
    """Models a rank's-eye series of Allreduce calls at scale.

    Parameters mirror the DES entry points: the same
    :class:`~repro.config.ClusterConfig`, job shape, and a seed.
    """

    def __init__(
        self,
        config: ClusterConfig,
        n_ranks: int,
        tasks_per_node: int,
        seed: int = 0,
    ) -> None:
        if n_ranks < 2:
            raise ValueError("need at least 2 ranks")
        self.config = config
        self.n = int(n_ranks)
        self.tpn = int(tasks_per_node)
        self.rng = np.random.default_rng(seed)
        self.noise = NoiseInjector(config, n_ranks, tasks_per_node, self.rng)

        net = config.network
        self.o = net.overhead_us
        self.r = config.mpi.reduce_op_us
        # Per-pair latency depends on co-residency.
        self._node_of = np.arange(n_ranks) // tasks_per_node

        # Exchange schedule (fold / recursive doubling / unfold).
        self._build_schedule()

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------
    def _build_schedule(self) -> None:
        n = self.n
        pof2 = 1 << (n.bit_length() - 1)
        rem = n - pof2
        self.pof2 = pof2
        self.rem = rem

        # Mapping rank -> "newrank" in the power-of-two phase (-1 for the
        # folded-out even ranks).
        ranks = np.arange(n)
        newrank = np.where(
            ranks < 2 * rem,
            np.where(ranks % 2 == 0, -1, ranks // 2),
            ranks - rem,
        )
        # Inverse: newrank -> real rank.
        inv = np.full(pof2, -1, dtype=int)
        active = newrank >= 0
        inv[newrank[active]] = ranks[active]
        self.active_mask = active
        self.newrank = newrank

        self.rounds: list[np.ndarray] = []  # per-round partner (real ranks), -1 = idle
        mask = 1
        while mask < pof2:
            partner = np.full(n, -1, dtype=int)
            nd = newrank[active] ^ mask
            partner[active] = inv[nd]
            self.rounds.append(partner)
            mask <<= 1

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run_series(
        self,
        n_calls: int,
        compute_between_us: float = 0.0,
        t_start: float = 0.0,
    ) -> SeriesResult:
        """Model *n_calls* back-to-back Allreduce calls; returns durations.

        Without co-scheduling this is a single run.  With it, a run of a
        few hundred calls is far shorter than the 5 s window cycle, so a
        single wall-time placement would sample only one phase; instead
        the series is **stratified**: ``duty_cycle`` of the calls run
        inside the favored window (deferrable daemons silent) and the rest
        inside the unfavored window (daemons at stationary rates), plus
        the once-per-period flip stall — the overlapped execution of the
        piled-up daemon backlog, which costs the job ``max`` over ranks of
        their backlogs (everyone stalls simultaneously: the paper's whole
        point) amortised over the calls of one period.
        """
        if not self.noise.cosched_on:
            return SeriesResult(
                self._run_block(n_calls, compute_between_us, t_start), self.n, self.tpn
            )
        duty = self.noise.favored_len / self.noise.period
        n_unf = max(1, int(round(n_calls * (1.0 - duty))))
        n_fav = max(1, n_calls - n_unf)
        self.noise.force_window = "favored"
        d_fav = self._run_block(n_fav, compute_between_us, t_start)
        self.noise.force_window = "unfavored"
        d_unf = self._run_block(n_unf, compute_between_us, t_start)
        self.noise.force_window = None
        durations = np.concatenate([d_fav, d_unf])
        # Amortised flip stall: once per period the whole job pays the
        # slowest rank's deferred-daemon backlog plus the flip-noticing
        # latency, simultaneously on every node.
        mean_wall = float(durations.mean()) + compute_between_us
        calls_per_period = max(1.0, self.noise.period / mean_wall)
        durations += float(np.max(self.noise.window_stall)) / calls_per_period
        return SeriesResult(durations, self.n, self.tpn)

    def _run_block(
        self,
        n_calls: int,
        compute_between_us: float = 0.0,
        t_start: float = 0.0,
    ) -> np.ndarray:
        n = self.n
        o, r = self.o, self.r
        ready = np.full(n, float(t_start))
        durations = np.empty(n_calls)
        # Exposure estimate per round: overheads + a wire hop (the noise
        # rates are far below 1/round, so precision here barely matters).
        base_round = 2 * o + r + self.config.network.latency_us
        rem2 = 2 * self.rem

        hardware = self.config.mpi.algorithm == "hardware"
        net = self.config.network

        for call in range(n_calls):
            if compute_between_us > 0.0:
                ready += compute_between_us
                t_mean = float(ready.mean())
                ready += self.noise.sample_round(t_mean, compute_between_us)
            start = ready.copy()
            t0 = float(ready.min())

            if hardware:
                # Switch-combined: one deposit per rank, combine after the
                # slowest, synchronous fan-out.  Laggard sensitivity stays
                # (the max), the log-depth software cascade is gone.
                deposit = ready + o + self.noise.sample_round(t0, base_round)
                done = (
                    float(deposit.max())
                    + net.latency_us
                    + net.hw_collective_latency_us
                )
                ready = np.full(n, done + o)
                t1 = float(ready.max())
                cron = self.noise.cron_hits(t0, max(t1, t0 + 1.0))
                if cron.any():
                    ready += cron
                durations[call] = float(np.mean(ready - start))
                continue

            # ---- fold phase (non-power-of-two) -------------------------
            if self.rem > 0:
                evens = np.arange(0, rem2, 2)
                odds = evens + 1
                lat = self._pair_latency(evens, odds)
                arrive = ready[evens] + o + lat
                ready[odds] = np.maximum(ready[odds] + o, arrive) + o + r
                # Evens idle until the unfold at the end.

            # ---- recursive doubling ------------------------------------
            for partner in self.rounds:
                idx = self.active_mask
                p = partner[idx]
                lat = self._pair_latency(np.arange(n)[idx], p)
                exposure = base_round
                t_mean = float(ready[idx].mean())
                noise_d = self.noise.sample_round(t_mean, exposure)
                ready += noise_d
                send_t = ready[idx] + o
                arrive = send_t[self._perm_within_active(p)] + lat
                ready_idx = np.maximum(ready[idx] + o, arrive) + o + r
                ready[idx] = ready_idx

            # ---- unfold phase -------------------------------------------
            if self.rem > 0:
                evens = np.arange(0, rem2, 2)
                odds = evens + 1
                lat = self._pair_latency(odds, evens)
                arrive = ready[odds] + o + lat
                ready[evens] = np.maximum(ready[evens] + o, arrive) + o

            # ---- long outliers (cron) -----------------------------------
            t1 = float(ready.max())
            cron = self.noise.cron_hits(t0, max(t1, t0 + 1.0))
            if cron.any():
                ready += cron

            durations[call] = float(np.mean(ready - start))

        return durations

    # ------------------------------------------------------------------
    def _pair_latency(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        net = self.config.network
        same = self._node_of[a] == self._node_of[b]
        nbytes = 8
        return np.where(
            same,
            net.shm_latency_us + nbytes * net.per_byte_us,
            net.latency_us + nbytes * net.per_byte_us,
        )

    def _perm_within_active(self, partners_real: np.ndarray) -> np.ndarray:
        """Map real partner ranks to positions within the active subset."""
        # active ranks in order; position of rank x among actives:
        if not hasattr(self, "_active_pos"):
            pos = np.full(self.n, -1, dtype=int)
            pos[np.arange(self.n)[self.active_mask]] = np.arange(int(self.active_mask.sum()))
            self._active_pos = pos
        return self._active_pos[partners_real]

