"""Per-rank noise sampling for the vectorised model.

Builds, from the same configs the DES consumes, a sampler that answers:
*for an exposure window of length τ at wall time t, how much extra delay
does each rank accumulate?*  Sources and their mapping to model behaviour:

===================  ========================================================
source               model behaviour
===================  ========================================================
per-node daemons     Each daemon's activations land on its home CPU's task
                     (per-CPU queueing) — a fixed victim rank per node.  A
                     spare CPU (`tasks_per_node < cpus_per_node`) absorbs
                     stealable daemons entirely.  Under co-scheduling,
                     deferrable daemons are silenced during the favored
                     window and their backlog is paid at the window flip.
cron job             Aligned wall-clock grid across nodes; blocks one CPU
                     per node for its (long) service time; undeferred by
                     the spare CPU only in the sense that its components
                     exceed one CPU — we keep the simple one-victim model
                     but at priority above users it hits even 15/16 runs
                     with reduced probability.
interrupt handlers   Per-CPU, undeferrable, hit every rank at their rate.
timer ticks          Deterministic rate (1/period per CPU).  *Staggered*
                     phases → independent per-rank hits that skew the
                     collective; *aligned* → every rank pays at the same
                     instants, which shifts all ranks equally and adds no
                     skew, so the model charges the cost but to all ranks
                     simultaneously.
MPI timer threads    Per-rank, period `progress_interval_us`, cost
                     `progress_cost_us`; bound to the task's CPU, so a
                     spare CPU does not absorb them; mirrored priorities
                     mean co-scheduling does not remove them either.
===================  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, DaemonSpec

__all__ = ["NoiseInjector", "SPARE_ABSORPTION"]

#: Fraction of stealable daemon activations a spare CPU absorbs.  Not 1.0:
#: absorption requires the idle CPU to notice and steal before the home
#: CPU's task is disturbed, and it fails outright when two daemons fire
#: concurrently — the paper notes the leave-one-CPU-idle approach "does
#: not handle the occasional event of two concurrent interfering daemons".
SPARE_ABSORPTION = 0.85


@dataclass
class _PointSource:
    """A renewal source hitting a fixed set of ranks."""

    name: str
    rate_per_us: float          # activations per µs per victim
    mean_delay_us: float        # expected stall per activation
    victims: np.ndarray         # rank indices
    deferrable: bool            # silenced inside the co-scheduled window
    absorbed_by_spare: bool     # a spare CPU soaks it up


class NoiseInjector:
    """Samples per-rank delays for exposure windows.

    Parameters
    ----------
    config:
        The run's full configuration (noise ecology, kernel policy,
        co-scheduler schedule, MPI settings).
    n_ranks / tasks_per_node:
        Job shape; determines victims and spare-CPU absorption.
    rng:
        Source of randomness (model-level reproducibility).
    """

    def __init__(
        self,
        config: ClusterConfig,
        n_ranks: int,
        tasks_per_node: int,
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.n = n_ranks
        self.tpn = tasks_per_node
        self.cpn = config.machine.cpus_per_node
        self.rng = rng
        spare = self.tpn < self.cpn
        n_nodes = -(-n_ranks // tasks_per_node)

        self.sources: list[_PointSource] = []
        self.cron_specs: list[DaemonSpec] = []
        for idx, spec in enumerate(config.noise.daemons):
            if spec.name.startswith("cron"):
                self.cron_specs.append(spec)
                continue
            if spec.per_cpu:
                victims = np.arange(n_ranks)
                absorbed = False
            else:
                # Home CPU by daemon index (mirrors the engine's layout);
                # its victim is the task pinned there, if any.
                home = idx % self.cpn
                if home >= tasks_per_node:
                    continue  # lands on an always-free CPU
                victims = np.array(
                    [node * tasks_per_node + home for node in range(n_nodes)
                     if node * tasks_per_node + home < n_ranks]
                )
                absorbed = spare and not spec.per_cpu
            self.sources.append(
                _PointSource(
                    name=spec.name,
                    rate_per_us=1.0 / spec.period_us,
                    mean_delay_us=spec.mean_service_us(),
                    victims=victims,
                    deferrable=spec.deferrable and not spec.hardware,
                    absorbed_by_spare=absorbed,
                )
            )

        # MPI progress-engine timer threads: every rank, bound, un-absorbed.
        if config.mpi.progress_threads_enabled:
            self.sources.append(
                _PointSource(
                    name="mpi_timer",
                    rate_per_us=1.0 / config.mpi.progress_interval_us,
                    mean_delay_us=config.mpi.progress_cost_us,
                    victims=np.arange(n_ranks),
                    deferrable=False,   # priorities are mirrored
                    absorbed_by_spare=False,
                )
            )

        # Timer ticks.
        self.tick_rate = 1.0 / config.kernel.physical_tick_period_us
        self.tick_cost = config.kernel.physical_tick_cost_us
        self.ticks_aligned = config.kernel.tick_phase == "aligned" and (
            config.kernel.align_ticks_to_global_time or config.machine.n_nodes == 1
        )

        # Co-scheduler window bookkeeping.
        cs = config.cosched
        self.cosched_on = cs.enabled
        if self.cosched_on:
            self.period = cs.period_us
            self.favored_len = cs.favored_window_us
            # Backlog paid at each window flip: deferred daemon CPU per
            # victim CPU per period, plus the priority-flip noticing skew.
            backlog = np.zeros(n_ranks)
            for src in self.sources:
                if src.deferrable and not src.absorbed_by_spare:
                    backlog[src.victims] += src.rate_per_us * self.period * src.mean_delay_us
            notice = (
                config.kernel.ipi_latency_us
                if config.kernel.realtime_scheduling and config.kernel.fix_reverse_preemption
                else config.kernel.physical_tick_period_us / 2.0
            )
            self.window_stall = backlog + notice
        else:
            self.period = None
            self.favored_len = None
            self.window_stall = None

        #: Stratified-sampling override: None (wall-time windows),
        #: "favored" or "unfavored".  Set by the series model.
        self.force_window: str | None = None

    # ------------------------------------------------------------------
    def in_favored_window(self, t: float) -> bool:
        """Is global time *t* inside the co-scheduled favored window?"""
        if not self.cosched_on:
            return False
        if self.force_window is not None:
            return self.force_window == "favored"
        return (t % self.period) < self.favored_len

    def sample_round(self, t_mean: float, exposure_us: float) -> np.ndarray:
        """Per-rank delay accumulated over one exposure of *exposure_us*.

        ``t_mean`` locates the round in wall time for window logic.
        Renewal hits are approximated as Poisson thinning — exact for the
        exponential-ish service processes at the rates involved.
        """
        delays = np.zeros(self.n)
        favored = self.in_favored_window(t_mean)
        for src in self.sources:
            if self.cosched_on and favored and src.deferrable:
                continue
            lam = src.rate_per_us * exposure_us
            if src.absorbed_by_spare:
                lam *= 1.0 - SPARE_ABSORPTION
            if lam <= 0:
                continue
            hits = self.rng.poisson(lam, size=src.victims.size)
            nz = hits > 0
            if np.any(nz):
                # Delay per hit ~ exponential around the mean: preserves
                # the right-skew of trace-observed service times.
                add = self.rng.exponential(src.mean_delay_us, size=int(nz.sum())) * hits[nz]
                delays[src.victims[nz]] += add
        # Ticks.
        lam_t = self.tick_rate * exposure_us
        if self.tick_cost > 0 and lam_t > 0:
            if self.ticks_aligned:
                # Simultaneous everywhere: the cost lands on every rank at
                # the same instants — a common-mode shift, no added skew.
                delays += self.rng.poisson(lam_t) * self.tick_cost
            else:
                delays += self.rng.poisson(lam_t, size=self.n) * self.tick_cost
        return delays

    def cron_hits(self, t0: float, t1: float) -> np.ndarray:
        """Per-rank delays from aligned cron activations in ``[t0, t1)``.

        Cron components run at priority better than user processes, so a
        spare CPU helps only partially; the model keeps the full hit at
        16/16 and suppresses it at <16/16 with probability 0.5 (one spare
        CPU against several concurrently-fired scripts).
        """
        delays = np.zeros(self.n)
        spare = self.tpn < self.cpn
        n_nodes = -(-self.n // self.tpn)
        for spec in self.cron_specs:
            phase = spec.phase_us if spec.phase_us is not None else 0.0
            k0 = int(np.ceil((t0 - phase) / spec.period_us))
            k1 = int(np.ceil((t1 - phase) / spec.period_us))
            for k in range(k0, k1):
                service = spec.service.mean() + spec.pagefault_prob * spec.pagefault_cost_us
                # One victim CPU per node (the paper observed one CPU per
                # node consumed on multiple nodes simultaneously).
                for node in range(n_nodes):
                    if spare and self.rng.random() < 0.5:
                        continue
                    victim = node * self.tpn + int(self.rng.integers(self.tpn))
                    if victim < self.n:
                        delays[victim] += service
        return delays
