"""Vectorised large-scale collective/noise model.

A pure-Python DES cannot simulate 1 920 CPUs × thousands of Allreduces in
reasonable time, so paper-scale sweeps (Figures 3, 5, 6) run on this
layer: a numpy-vectorised simulation of the *collective schedule* — every
rank's ready time advanced round by round through the recursive-doubling
exchange — with interference injected per rank per round from the same
:class:`~repro.config.ClusterConfig` the DES consumes.  This is the
standard methodology of the OS-noise literature (inject sampled noise into
a LogP-style collective recursion); an integration test cross-validates it
against the DES at small scale.

* :mod:`repro.analytic.model` — the series model;
* :mod:`repro.analytic.noise` — per-source samplers built from configs;
* :mod:`repro.analytic.fits` — the linear/logarithmic fits of Figure 6.
"""

from repro.analytic.model import AllreduceSeriesModel, SeriesResult
from repro.analytic.noise import NoiseInjector
from repro.analytic.fits import FitResult, fit_linear, fit_log, compare_fits

__all__ = [
    "AllreduceSeriesModel",
    "SeriesResult",
    "NoiseInjector",
    "FitResult",
    "fit_linear",
    "fit_log",
    "compare_fits",
]
