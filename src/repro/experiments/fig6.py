"""Figures 3, 5 and 6 (+ the 15-tasks/node baseline, T1).

* **Figure 3** — Allreduce µs vs processor count, 16 tasks/node, standard
  kernel: linear (not logarithmic) with large variability.
* **Figure 5** — same sweep, prototype kernel + co-scheduler: improved and
  far less variable, still linear.
* **Figure 6** — both sweeps with fitted lines; the paper reports
  ``y_vanilla = 0.70·x + 166`` vs ``y_prototype = 0.22·x + 210`` (~3×
  slope ratio).
* **T1** — the 15 tasks/node community workaround: better than 16/node
  vanilla, still linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analytic.fits import FitResult, compare_fits
from repro.experiments.common import (
    PAPER_PROC_COUNTS,
    PROTO16,
    Scenario,
    SweepResult,
    VANILLA15,
    VANILLA16,
    allreduce_sweep,
)
from repro.experiments.reporting import ascii_chart, format_taxonomy, text_table

__all__ = [
    "Fig6Result",
    "run_fig3",
    "run_fig5",
    "run_tpn15",
    "run_fig6",
    "format_sweep",
    "format_fig6",
]

#: Paper's fitted lines for reference in reports.
PAPER_VANILLA_FIT = (0.70, 166.0)
PAPER_PROTOTYPE_FIT = (0.22, 210.0)


def _sweep(scenario: Scenario, proc_counts, n_calls, n_seeds, **harness) -> SweepResult:
    return allreduce_sweep(
        scenario, proc_counts=proc_counts, n_calls=n_calls, n_seeds=n_seeds, **harness
    )


def run_fig3(
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS, n_calls: int = 400, n_seeds: int = 3,
    **harness,
) -> SweepResult:
    """Vanilla kernel, 16 tasks/node (Figure 3).

    Extra keyword arguments (``journal``, ``trial_timeout_s``, ``jobs``)
    pass through to :func:`allreduce_sweep`, i.e. to its
    :class:`~repro.experiments.runner.TrialRunner`, for crash-safe and/or
    process-parallel campaigns; same for the other sweep runners below.
    """
    return _sweep(VANILLA16, proc_counts, n_calls, n_seeds, **harness)


def run_fig5(
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS, n_calls: int = 400, n_seeds: int = 3,
    **harness,
) -> SweepResult:
    """Prototype kernel + co-scheduler, 16 tasks/node (Figure 5)."""
    return _sweep(PROTO16, proc_counts, n_calls, n_seeds, **harness)


def run_tpn15(
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS, n_calls: int = 400, n_seeds: int = 3,
    **harness,
) -> SweepResult:
    """Vanilla kernel, 15 tasks/node (T1 baseline)."""
    counts15 = [15 * (-(-n // 16)) for n in proc_counts]  # same node counts
    return _sweep(VANILLA15, counts15, n_calls, n_seeds, **harness)


@dataclass
class Fig6Result:
    vanilla: SweepResult
    prototype: SweepResult
    vanilla_fit: FitResult
    prototype_fit: FitResult
    vanilla_winner: str   # "linear" or "log"
    prototype_winner: str

    @property
    def slope_ratio(self) -> float:
        return self.vanilla_fit.slope / self.prototype_fit.slope

    def mean_ratio_at(self, n: int) -> float:
        """Predicted vanilla/prototype mean-latency ratio at n CPUs."""
        return float(self.vanilla_fit.predict([n])[0] / self.prototype_fit.predict([n])[0])


def run_fig6(
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS, n_calls: int = 400, n_seeds: int = 3,
    **harness,
) -> Fig6Result:
    """Run both sweeps and fit the scaling lines (Figure 6)."""
    van = run_fig3(proc_counts, n_calls, n_seeds, **harness)
    pro = run_fig5(proc_counts, n_calls, n_seeds, **harness)
    vlin, _vlog, vwin = compare_fits(van.proc_counts, van.mean_us)
    plin, _plog, pwin = compare_fits(pro.proc_counts, pro.mean_us)
    return Fig6Result(van, pro, vlin, plin, vwin, pwin)


def format_sweep(res: SweepResult, title: str) -> str:
    """Render one sweep with its linear and log fits."""
    lin, log, winner = compare_fits(res.proc_counts, res.mean_us)
    table = text_table(
        ["procs", "mean_us", "run_std_us", "call_std_us"],
        res.rows(),
        title=title,
    )
    failed = ""
    if res.failed_points:
        failed = (
            f"failed points: {len(res.failed_points)} "
            f"({format_taxonomy(res.failure_taxonomy)})\n"
        )
    return (
        table
        + failed
        + f"linear fit : {lin}\n"
        + f"log fit    : {log}\n"
        + f"better fit : {winner} (paper: linear once noise dominates)\n"
    )


def format_fig6(res: Fig6Result) -> str:
    """Render the vanilla-vs-prototype comparison, chart and fits."""
    rows = []
    for (n, vm, *_), (_, pm, *_rest) in zip(res.vanilla.rows(), res.prototype.rows()):
        rows.append((n, vm, pm, vm / pm))
    table = text_table(
        ["procs", "vanilla_us", "prototype_us", "ratio"],
        rows,
        title="Figure 6 analogue: vanilla vs prototype Allreduce scaling",
    )
    chart = ascii_chart(
        res.vanilla.proc_counts,
        {"vanilla": res.vanilla.mean_us, "prototype": res.prototype.mean_us},
        title="Allreduce mean latency vs processor count",
        x_label="CPUs",
        y_label="us",
    )
    return (
        table
        + chart
        + f"vanilla fit   : {res.vanilla_fit}   (paper: y = 0.70x + 166)\n"
        + f"prototype fit : {res.prototype_fit}   (paper: y = 0.22x + 210)\n"
        + f"slope ratio   : {res.slope_ratio:.2f}x   (paper: ~3.2x, 'over 300% speedup')\n"
        + f"mean ratio @944 CPUs: {res.mean_ratio_at(944):.2f}x\n"
    )
