"""Figure 1: random vs co-scheduled system activity on an 8-way node.

The paper's motivating picture: with the *same total amount* of system
activity (red), purely random placement leaves few windows in which all
eight CPUs are simultaneously free for the application (green), while
overlapped placement leaves large ones.  This experiment quantifies the
picture: generate identical noise budgets with random vs aligned phasing
and measure the all-CPUs-free fraction of the timeline.

For K noise bursts of length d per CPU over horizon T, random phasing
gives an all-free fraction near ``(1 - Kd/T)^P`` (independent thinning per
CPU), while perfect overlap gives ``1 - Kd/T`` — the analytic curves the
measurement is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.reporting import text_table
from repro.units import ms, s

__all__ = ["Fig1Result", "run_fig1", "format_fig1"]


@dataclass
class Fig1Result:
    n_cpus: int
    noise_fraction_per_cpu: float
    green_random: float
    green_overlapped: float
    theory_random: float
    theory_overlapped: float

    @property
    def improvement(self) -> float:
        """How much more all-CPU time co-scheduling yields."""
        return self.green_overlapped / self.green_random


def _all_free_fraction(starts: np.ndarray, duration: float, horizon: float) -> float:
    """Fraction of [0, horizon) with no burst active, via event sweep.

    ``starts`` has shape (cpus, bursts); a point is green iff no burst on
    any CPU covers it.
    """
    edges = np.concatenate([starts.ravel(), np.minimum(starts.ravel() + duration, horizon)])
    deltas = np.concatenate([np.ones(starts.size), -np.ones(starts.size)])
    order = np.argsort(edges, kind="stable")
    edges, deltas = edges[order], deltas[order]
    busy = 0.0
    depth = 0
    prev = 0.0
    for t, d in zip(edges, deltas):
        if depth > 0:
            busy += t - prev
        depth += int(d)
        prev = t
    return 1.0 - busy / horizon


def run_fig1(
    n_cpus: int = 8,
    bursts_per_cpu: int = 200,
    burst_us: float = ms(2),
    horizon_us: float = s(4),
    seed: int = 0,
) -> Fig1Result:
    """Measure all-CPUs-free fractions for random vs overlapped noise."""
    rng = np.random.default_rng(seed)
    frac = bursts_per_cpu * burst_us / horizon_us
    # Random phasing: each CPU draws independent burst times.
    random_starts = rng.uniform(0, horizon_us - burst_us, size=(n_cpus, bursts_per_cpu))
    # Overlapped: one schedule shared by every CPU (co-scheduled daemons).
    shared = rng.uniform(0, horizon_us - burst_us, size=bursts_per_cpu)
    overlapped_starts = np.tile(shared, (n_cpus, 1))
    green_r = _all_free_fraction(random_starts, burst_us, horizon_us)
    green_o = _all_free_fraction(overlapped_starts, burst_us, horizon_us)
    return Fig1Result(
        n_cpus=n_cpus,
        noise_fraction_per_cpu=frac,
        green_random=green_r,
        green_overlapped=green_o,
        theory_random=float((1.0 - frac) ** n_cpus),
        theory_overlapped=float(1.0 - frac),
    )


def format_fig1(res: Fig1Result) -> str:
    """Render the Figure 1 table and improvement line."""
    rows = [
        ("random", res.green_random, res.theory_random),
        ("overlapped", res.green_overlapped, res.theory_overlapped),
    ]
    table = text_table(
        ["phasing", "all-CPUs-free fraction", "theory"],
        rows,
        title=(
            f"Figure 1 analogue: {res.n_cpus}-way node, "
            f"{100 * res.noise_fraction_per_cpu:.1f}% noise per CPU"
        ),
        floatfmt="{:.4f}",
    )
    return table + f"overlap improvement: {res.improvement:.2f}x more all-CPU time\n"
