"""T3: MPI timer ("progress engine") thread interference and the
``MP_POLLING_INTERVAL`` remedy.

Paper §5.3: auxiliary threads of the user processes — the MPI timer
threads, running every 400 ms — disrupted tightly synchronised Allreduces
even at that long period ("in the case of one Allreduce that took 6.7
msec, the auxiliary threads consumed 4.5 msec of run time spread over
several nodes").  Setting ``MP_POLLING_INTERVAL`` to ~400 seconds removed
the interference.

Both layers demonstrate it:

* DES (mechanism): a quiet cluster — no daemons, only timer threads —
  still shows Allreduce outliers that vanish with the long polling
  interval.
* Vectorised model (scale): the timer threads alone bend the scaling
  curve at paper processor counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytic.model import AllreduceSeriesModel
from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.config import MpiConfig, NoiseConfig
from repro.experiments.common import VANILLA16, make_config
from repro.experiments.reporting import text_table
from repro.system import System
from repro.units import ms, s

__all__ = ["TimerThreadsResult", "run_timer_threads", "format_timer_threads"]


@dataclass
class TimerThreadsResult:
    # DES (small scale, timer period compressed so hits land in-window).
    des_mean_default_us: float
    des_max_default_us: float
    des_mean_fixed_us: float
    des_max_fixed_us: float
    des_n_ranks: int
    des_timer_period_us: float
    # Model (paper scale).
    model_mean_default_us: float
    model_mean_fixed_us: float
    model_n_ranks: int

    @property
    def des_tail_reduction(self) -> float:
        return self.des_max_default_us / self.des_max_fixed_us

    @property
    def model_improvement(self) -> float:
        return self.model_mean_default_us / self.model_mean_fixed_us


def run_timer_threads(
    des_ranks: int = 32,
    n_calls: int = 400,
    model_ranks: int = 944,
    seed: int = 5,
    des_timer_period_us: float = ms(20),
) -> TimerThreadsResult:
    """Run the DES (mechanism) and model (scale) timer-thread studies."""
    # ---- DES: quiet cluster, timer threads the only noise --------------
    quiet = NoiseConfig()
    des_stats = {}
    for label, mpi in (
        ("default", MpiConfig(progress_interval_us=des_timer_period_us)),
        ("fixed", MpiConfig.with_long_polling()),
    ):
        cfg = make_config(VANILLA16, des_ranks, seed=seed, noise=quiet).replace(mpi=mpi)
        system = System(cfg)
        res = run_aggregate_trace(
            system,
            des_ranks,
            16,
            AggregateTraceConfig(calls_per_loop=n_calls, compute_between_us=150.0),
            horizon_us=s(60),
        )
        des_stats[label] = (res.mean_us, res.max_us)

    # ---- model: paper scale, true 400 ms period -------------------------
    model_stats = {}
    for label, mpi in (("default", MpiConfig()), ("fixed", MpiConfig.with_long_polling())):
        cfg = make_config(VANILLA16, model_ranks, seed=seed, noise=quiet).replace(mpi=mpi)
        model = AllreduceSeriesModel(cfg, model_ranks, 16, seed=seed)
        model_stats[label] = model.run_series(n_calls, compute_between_us=200.0).mean_us

    return TimerThreadsResult(
        des_mean_default_us=des_stats["default"][0],
        des_max_default_us=des_stats["default"][1],
        des_mean_fixed_us=des_stats["fixed"][0],
        des_max_fixed_us=des_stats["fixed"][1],
        des_n_ranks=des_ranks,
        des_timer_period_us=des_timer_period_us,
        model_mean_default_us=model_stats["default"],
        model_mean_fixed_us=model_stats["fixed"],
        model_n_ranks=model_ranks,
    )


def format_timer_threads(res: TimerThreadsResult) -> str:
    """Render both T3 tables."""
    des = text_table(
        ["MP_POLLING_INTERVAL", "mean_us", "max_us"],
        [
            (f"{res.des_timer_period_us / 1000:.0f} ms (compressed default)",
             res.des_mean_default_us, res.des_max_default_us),
            ("400 s (the fix)", res.des_mean_fixed_us, res.des_max_fixed_us),
        ],
        title=f"T3 (DES, {res.des_n_ranks} ranks, no daemons — timer threads only)",
    )
    model = text_table(
        ["MP_POLLING_INTERVAL", "mean_us"],
        [
            ("400 ms (default)", res.model_mean_default_us),
            ("400 s (the fix)", res.model_mean_fixed_us),
        ],
        title=f"T3 (model, {res.model_n_ranks} ranks)",
    )
    return (
        des
        + f"tail reduction: {res.des_tail_reduction:.1f}x\n\n"
        + model
        + f"mean improvement at scale: {res.model_improvement:.2f}x\n"
    )
