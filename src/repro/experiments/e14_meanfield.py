"""E14: mean-field fast path — accuracy/speed trade-off curve.

The parallel-DES work (:mod:`repro.sim.parallel`) ships two speed levers.
Sharding buys wall-clock from extra cores without changing a single
event.  The mean-field path (:mod:`repro.sim.meanfield`) buys speed from
*approximation*: on nodes no trace consumer is watching, B consecutive
activations of a daemon instance fold into one wakeup+compute pair.  That
is a modelling decision, so its cost must be measured, not asserted —
this experiment publishes the curve.

Protocol: one exact reference run (``meanfield=None``), then one run per
batch factor, all on the identical config/seed.  ``batch=1`` must
reproduce the exact run's result digest bit-for-bit (the oracle
discipline: the fast path degenerates to the reference, not to an
approximation of it); the experiment *fails* if it doesn't.  For each
batch we report the event-count reduction and wall speedup against
exact, and three accuracy views:

* ``elapsed_dev`` — relative makespan deviation;
* ``mean_dev`` — relative deviation of the mean Allreduce duration;
* sorted-curve error — quantiles of the pointwise relative gap between
  the two *sorted* node-0 duration series (the Figure-4 statistic).

Per-call pointwise comparison is deliberately not a metric: which call
catches a daemon hit is chaotic (the paper's own observation about its
64-call trace blocks — "some blocks catch interference, some don't"),
so batching reorders hits across calls without changing the
distribution.  The sorted curve is the stable object.

Scale note: compressed time (factor 50, the E8/E13 device) on the
vanilla 16-tasks-per-node machine, so daemon activations — the thing
mean-field elides — dominate the event budget the way they do over the
minutes-long windows of a real White run.  The traced node (node 0) is
exempt from batching, as a real measurement would keep it; its share of
the event budget shrinks as 1/n_nodes, so the reductions here (16 nodes)
*understate* White scale (512 nodes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import VANILLA16, make_config
from repro.experiments.reporting import text_table
from repro.results import register_result
from repro.sim.meanfield import MeanFieldConfig
from repro.sim.parallel import run_parallel
from repro.units import s

__all__ = ["E14Result", "run_e14", "format_e14"]

#: App provider module:attr path (picklable across shard workers).
APP = "repro.apps.aggregate_trace:sharded_app"

#: Time-compression factor applied to the standard daemon ecology.
TIME_COMPRESSION = 50.0

BATCHES = (1, 2, 4, 8, 16, 32)
BATCHES_QUICK = (1, 8, 32)


@register_result
@dataclass
class E14Result:
    """The accuracy/speed curve plus the oracle verdict."""

    n_ranks: int
    n_nodes: int
    calls: int
    compute_between_us: float
    time_compression: float
    seed: int
    exact_digest: str
    exact_events: int
    exact_wall_s: float
    exact_elapsed_us: float
    batches: list = field(default_factory=list)
    #: Per-batch rows, parallel to ``batches``.
    events: list = field(default_factory=list)
    event_reduction: list = field(default_factory=list)
    wall_s: list = field(default_factory=list)
    wall_speedup: list = field(default_factory=list)
    elapsed_dev_pct: list = field(default_factory=list)
    mean_dev_pct: list = field(default_factory=list)
    curve_err_p50_pct: list = field(default_factory=list)
    curve_err_p90_pct: list = field(default_factory=list)
    curve_err_max_abs_us: list = field(default_factory=list)
    digests: list = field(default_factory=list)
    #: batch=1 reproduced the exact digest bit-for-bit.
    oracle_ok: bool = False

    def rows(self):
        """Per-batch table rows (batch, events, reductions, accuracy)."""
        return [
            (
                self.batches[i],
                self.events[i],
                self.event_reduction[i],
                self.wall_speedup[i],
                self.elapsed_dev_pct[i],
                self.mean_dev_pct[i],
                self.curve_err_p50_pct[i],
                self.curve_err_p90_pct[i],
                self.curve_err_max_abs_us[i] / 1000.0,
            )
            for i in range(len(self.batches))
        ]


def _sorted_series(ranks: dict) -> np.ndarray:
    return np.sort(np.concatenate([np.asarray(v, dtype=float) for v in ranks.values()]))


def run_e14(quick: bool = False, seed: int = 1234) -> E14Result:
    """Run the exact reference and the batch sweep; never raises on
    accuracy — the numbers *are* the result — but records the oracle
    verdict (``batch=1`` digest equality) for callers to gate on."""
    if quick:
        n_ranks, calls, batches = 64, 12, BATCHES_QUICK
    else:
        n_ranks, calls, batches = 256, 48, BATCHES
    compute_between = 20000.0
    noise = scale_noise(standard_noise(include_cron=False), TIME_COMPRESSION)
    config = make_config(VANILLA16, n_ranks=n_ranks, noise=noise, seed=seed)
    params = dict(
        loops=1,
        calls_per_loop=calls,
        trace_block=64,
        compute_between_us=compute_between,
        payload_bytes=8,
        record_nodes=(0,),
    )

    def one(meanfield):
        t0 = time.perf_counter()
        r = run_parallel(
            config,
            n_ranks=n_ranks,
            tasks_per_node=16,
            app=APP,
            app_params=params,
            shards=1,
            horizon_us=s(600),
            meanfield=meanfield,
            use_processes=False,
        )
        return r, time.perf_counter() - t0

    exact, exact_wall = one(None)
    exact_sorted = _sorted_series(exact.ranks)
    exact_mean = float(exact_sorted.mean())
    res = E14Result(
        n_ranks=n_ranks,
        n_nodes=config.machine.n_nodes,
        calls=calls,
        compute_between_us=compute_between,
        time_compression=TIME_COMPRESSION,
        seed=seed,
        exact_digest=exact.digest,
        exact_events=sum(exact.events_per_shard),
        exact_wall_s=exact_wall,
        exact_elapsed_us=exact.elapsed_us,
    )
    for b in batches:
        r, wall = one(MeanFieldConfig(batch=b, exempt_nodes=(0,)))
        srt = _sorted_series(r.ranks)
        gap = np.abs(srt - exact_sorted)
        rel = gap / exact_sorted * 100.0
        ev = sum(r.events_per_shard)
        res.batches.append(b)
        res.events.append(ev)
        res.event_reduction.append(res.exact_events / ev)
        res.wall_s.append(wall)
        res.wall_speedup.append(exact_wall / wall)
        res.elapsed_dev_pct.append(
            (r.elapsed_us - exact.elapsed_us) / exact.elapsed_us * 100.0
        )
        res.mean_dev_pct.append((float(srt.mean()) - exact_mean) / exact_mean * 100.0)
        res.curve_err_p50_pct.append(float(np.percentile(rel, 50)))
        res.curve_err_p90_pct.append(float(np.percentile(rel, 90)))
        res.curve_err_max_abs_us.append(float(gap.max()))
        res.digests.append(r.digest)
    res.oracle_ok = (1 not in res.batches) or (
        res.digests[res.batches.index(1)] == res.exact_digest
    )
    return res


def format_e14(res: E14Result) -> str:
    """Render the curve as an aligned text table with the oracle verdict."""
    head = (
        f"E14: mean-field accuracy/speed curve — {res.n_ranks} ranks on "
        f"{res.n_nodes} nodes, {res.calls} Allreduce calls, time "
        f"compression {res.time_compression:g}\n"
        f"exact: {res.exact_events} events, {res.exact_wall_s:.1f}s wall, "
        f"digest {res.exact_digest[:12]}\n"
        f"oracle (batch=1 bit-identical): {'PASS' if res.oracle_ok else 'FAIL'}"
    )
    table = text_table(
        (
            "batch", "events", "ev_x", "wall_x",
            "elapsed%", "mean%", "curve_p50%", "curve_p90%", "max_abs_ms",
        ),
        res.rows(),
        floatfmt="{:+.2f}",
    )
    return head + "\n" + table
