"""E9: crash/restart — checkpoint a run mid-flight and resume bit-identically.

The robustness headline for a simulation campaign: kill the process in
the middle of a sweep (and inject a node crash in the middle of the
trial for good measure), resume, and end up with results
indistinguishable from a run that was never interrupted.  Two levels:

* **Mid-trial** — a DES run (the aggregate_trace benchmark under the
  co-scheduler, with an injected node crash) is checkpointed on a sim-time
  cadence, abandoned at ~60 % of its horizon as if the process died, then
  restored from the last checkpoint (replay + fingerprint verification)
  and driven to the same fixed horizon as an uninterrupted reference run.
  Acceptance: the full-state fingerprints — event calendar, RNG streams,
  every thread and run queue, the trace digests — match bit-for-bit.
* **Mid-sweep** — an analytic-model sweep journals each completed
  (count, seed) trial; the sweep is cut short, re-run against the same
  journal (finished trials served from disk), and compared against an
  uninterrupted sweep.  Acceptance: arrays exactly equal, with the
  expected number of journal hits.

Both the reference and the resumed DES runs advance to the same fixed
horizon rather than "until the job finishes", so their states are
comparable at an identical instant.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.apps.aggregate_trace import AggregateTraceConfig, aggregate_trace_body
from repro.checkpoint import (
    CheckpointManager,
    InvariantMonitor,
    SweepJournal,
    capture_state,
    register_builder,
    state_fingerprint,
)
from repro.config import (
    CheckpointPolicy,
    ClusterConfig,
    CoschedConfig,
    FaultConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NodeFaultSpec,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import PROTO16, allreduce_sweep
from repro.experiments.reporting import text_table
from repro.system import System
from repro.trace.recorder import TraceRecorder
from repro.units import s

__all__ = ["E9Result", "E9Driver", "build_e9_driver", "run_e9", "format_e9"]

#: Time compression shared with E4/E8 so runs span several co-scheduler
#: periods at test scale.
TIME_COMPRESSION = 50.0


class E9Driver:
    """One checkpointable aggregate_trace run (built by the registry).

    Exposes ``.system`` for the checkpoint layer and ``advance`` for the
    chunked drive loop; everything about its construction is a pure
    function of the (picklable) builder arguments, which is what makes
    replay-based restore exact.
    """

    def __init__(
        self,
        n_ranks: int,
        tpn: int,
        loops: int,
        calls_per_loop: int,
        seed: int,
        crash: bool,
    ) -> None:
        period = s(5) / TIME_COMPRESSION
        horizon = self.horizon_us = 4.0 * period
        faults = FaultConfig(enabled=False)
        if crash:
            # A node freeze mid-trial, spanning a window flip — the state
            # a checkpoint must capture faithfully (hog threads, frozen
            # runqueues, retransmit timers) to replay through it.
            faults = FaultConfig(
                enabled=True,
                node_faults=(
                    NodeFaultSpec(
                        node=1,
                        kind="crash",
                        at_us=1.4 * period,
                        duration_us=0.4 * period,
                    ),
                ),
                watchdog_interval_us=period / 2.0,
            )
        config = ClusterConfig(
            machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
            kernel=KernelConfig.prototype(
                big_tick=max(1, int(round(25 / TIME_COMPRESSION)))
            ),
            cosched=CoschedConfig(enabled=True, period_us=period, duty_cycle=0.90),
            mpi=MpiConfig.with_long_polling(progress_threads_enabled=False),
            noise=scale_noise(standard_noise(include_cron=False), TIME_COMPRESSION),
            faults=faults,
            seed=seed,
        )
        self.system = System(config, trace=TraceRecorder(enabled=True))
        self.sink: dict = {}
        app = AggregateTraceConfig(
            loops=loops, calls_per_loop=calls_per_loop, trace_block=16
        )
        placement = self.system.cluster.place(n_ranks, tpn)
        node0 = {r for r in range(n_ranks) if placement.node_of(r) == 0}
        self.job = self.system.launch(
            n_ranks, tpn, aggregate_trace_body(app, self.sink, node0), name="e9"
        )

    def advance(self, to_us: float) -> None:
        """Drive the simulation to the given absolute time."""
        self.system.sim.run_until(to_us)

    @property
    def done(self) -> bool:
        return self.job.done


@register_builder("e9.aggregate_trace")
def build_e9_driver(
    n_ranks: int = 8,
    tpn: int = 4,
    loops: int = 2,
    calls_per_loop: int = 60,
    seed: int = 91,
    crash: bool = True,
) -> E9Driver:
    """Registry builder: every argument is a picklable scalar."""
    return E9Driver(n_ranks, tpn, loops, calls_per_loop, seed, crash)


@dataclass
class E9Result:
    """Outcome of the crash/restart round-trip and the journal resume."""

    horizon_us: float
    #: Events processed by the uninterrupted reference / the resumed run.
    events_reference: int
    events_resumed: int
    #: SHA-256 of the full state at the horizon, both paths.
    fingerprint_reference: str
    fingerprint_resumed: str
    n_checkpoints: int
    #: Invariant violations found at the horizon (must be 0).
    invariant_violations: int
    #: Journal hits when the cut-short sweep was resumed.
    journal_hits: int
    #: Resumed sweep arrays exactly equal the uninterrupted sweep's?
    journal_match: bool
    sweep_proc_counts: np.ndarray
    failed_points: list = field(default_factory=list)
    n_ranks: int = 8
    crash_injected: bool = True

    @property
    def fingerprint_match(self) -> bool:
        """Did the resumed run land bit-identical to the reference?"""
        return self.fingerprint_reference == self.fingerprint_resumed


def run_e9(quick: bool = False, workdir=None) -> E9Result:
    """Run the E9 crash/resume experiment (see the module docstring).

    *workdir* receives the checkpoints and the sweep journal; a temp
    directory is used (and discarded) when not given.
    """
    if workdir is None:
        with tempfile.TemporaryDirectory() as td:
            return _run_e9(quick, Path(td))
    return _run_e9(quick, Path(workdir))


def _run_e9(quick: bool, workdir: Path) -> E9Result:
    args = dict(
        n_ranks=8,
        tpn=4,
        loops=1 if quick else 2,
        calls_per_loop=40 if quick else 60,
        seed=91,
        crash=True,
    )

    # ---- mid-trial: reference run, uninterrupted ----------------------
    ref = build_e9_driver(**args)
    horizon = ref.horizon_us
    chunk = horizon / 20.0
    t = 0.0
    while t < horizon:
        t = min(horizon, t + chunk)
        ref.advance(t)
    fp_ref = state_fingerprint(capture_state(ref.system))
    events_ref = ref.system.sim.events_processed

    # ---- mid-trial: checkpointed run, "crashed" at 60 % ---------------
    ckpt_dir = workdir / "checkpoints"
    policy = CheckpointPolicy(
        enabled=True, interval_sim_us=horizon / 8.0, keep_last=2
    )
    victim = build_e9_driver(**args)
    mgr = CheckpointManager(victim, "e9.aggregate_trace", args, policy, ckpt_dir)
    t = 0.0
    while t < 0.6 * horizon:
        t += chunk
        victim.advance(t)
        mgr.tick()
    n_ckpts = len(mgr.written)
    del victim, mgr  # the process "dies" here

    # ---- resume from the last checkpoint and finish -------------------
    resumed = CheckpointManager.resume_latest(ckpt_dir, policy=policy)
    t = resumed.system.sim.now
    while t < horizon:
        t = min(horizon, t + chunk)
        resumed.system.sim.run_until(t)
        resumed.tick()
    report = InvariantMonitor(resumed.system).check()
    fp_res = state_fingerprint(capture_state(resumed.system))
    events_res = resumed.system.sim.events_processed

    # ---- mid-sweep: journaled trials resume bit-identically -----------
    counts = (128, 256, 512) if quick else (128, 256, 512, 944)
    n_calls, n_seeds = (100, 2) if quick else (200, 2)
    sweep_dir = workdir / "sweep"
    partial = SweepJournal(sweep_dir)
    allreduce_sweep(
        PROTO16, proc_counts=counts[:2], n_calls=n_calls, n_seeds=n_seeds,
        journal=partial,
    )  # ... and the campaign is killed here
    resumed_journal = SweepJournal(sweep_dir)
    resumed_sweep = allreduce_sweep(
        PROTO16, proc_counts=counts, n_calls=n_calls, n_seeds=n_seeds,
        journal=resumed_journal,
    )
    uninterrupted = allreduce_sweep(
        PROTO16, proc_counts=counts, n_calls=n_calls, n_seeds=n_seeds
    )
    journal_match = (
        np.array_equal(resumed_sweep.mean_us, uninterrupted.mean_us)
        and np.array_equal(resumed_sweep.run_std_us, uninterrupted.run_std_us)
        and np.array_equal(resumed_sweep.call_std_us, uninterrupted.call_std_us)
    )

    return E9Result(
        horizon_us=horizon,
        events_reference=events_ref,
        events_resumed=events_res,
        fingerprint_reference=fp_ref,
        fingerprint_resumed=fp_res,
        n_checkpoints=n_ckpts,
        invariant_violations=len(report.violations),
        journal_hits=resumed_journal.hits,
        journal_match=journal_match,
        sweep_proc_counts=np.asarray(counts, dtype=int),
        failed_points=list(resumed_sweep.failed_points),
        n_ranks=args["n_ranks"],
        crash_injected=args["crash"],
    )


def format_e9(res: E9Result) -> str:
    """Render the E9 verdict table."""
    rows = [
        ("events processed (reference)", res.events_reference, ""),
        ("events processed (crash+resume)", res.events_resumed, ""),
        ("state fingerprints match", res.fingerprint_match,
         res.fingerprint_reference[:16]),
        ("checkpoints written before crash", res.n_checkpoints, ""),
        ("invariant violations at horizon", res.invariant_violations, ""),
        ("journal hits on sweep resume", res.journal_hits, ""),
        ("resumed sweep == uninterrupted", res.journal_match,
         f"{len(res.sweep_proc_counts)} counts"),
    ]
    table = text_table(
        ["check", "value", "detail"],
        rows,
        title=(
            "E9: kill -9 mid-campaign, resume from checkpoint + journal "
            f"(node crash injected: {res.crash_injected})"
        ),
    )
    verdict = "PASS" if (
        res.fingerprint_match
        and res.journal_match
        and res.invariant_violations == 0
        and res.events_reference == res.events_resumed
    ) else "FAIL"
    return f"{table}\nverdict: {verdict}\n"
