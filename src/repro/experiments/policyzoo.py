"""E13: policy ablation — the dispatch-policy zoo under the paper's workload.

The paper's whole argument is that *scheduling semantics* — not raw CPU
speed — decide whether a parallel job scales: AIX's priority dispatcher
lets a spinning MPI rank starve the very daemons whose work it is
spinning on.  With the dispatch core extracted behind
:class:`repro.kernel.policy.SchedPolicy`, that claim becomes directly
testable: run the same compute+Allreduce workload, same noise ecology,
same co-scheduler, and swap only the node dispatch policy.

For each (policy, cluster size) cell this experiment runs the DES at
compressed time and reports the Figure-4-style statistics (mean / median
/ max Allreduce latency) plus the *slowdown* against the noise-free
analytic prediction — the same yardstick Fig 4 and the chaos liveness
oracle anchor on.  Priority-blind policies (``fair``, ``quantum``,
``lottery``) time-share the CPU between ranks and daemons instead of
letting favored-priority ranks monopolize it, so they trade the paper's
interference tail for a different cost structure; the table makes that
trade visible per cluster size.

Every (policy, size) cell is one :class:`~repro.experiments.runner.
TrialSpec`, so the campaign inherits ``--jobs`` fan-out, journal resume,
and byte-identical serial-vs-parallel results; each record carries a
digest of its duration series so repeat runs are checkable bit-for-bit.

Scale note: DES at reduced scale with E8's time compression; the config
build rule deliberately mirrors the chaos harness's
(:func:`repro.chaos.oracles.build_cluster_config`) without importing it —
``repro.chaos`` already imports ``repro.experiments`` — so chaos sweeps
and this ablation exercise the same machine.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analytic.model import AllreduceSeriesModel
from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NoiseConfig,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.reporting import text_table
from repro.experiments.runner import TrialRunner, TrialSpec
from repro.kernel.policy import policy_names, validate_policy
from repro.system import System
from repro.units import s

__all__ = ["PolicyZooResult", "run_policyzoo", "format_policyzoo"]

#: Cluster sizes (MPI ranks) of the ablation columns; 8 tasks/node.
SIZES = (8, 16, 32)
SIZES_QUICK = (8, 16)


def build_policy_config(
    policy: str,
    policy_params: tuple,
    n_ranks: int,
    tpn: int,
    seed: int,
    time_compression: float,
) -> ClusterConfig:
    """The system under ablation: prototype kernel + co-scheduler +
    standard daemon ecology at compressed time — the same build rule as
    the chaos harness, with only the dispatch policy swapped."""
    return ClusterConfig(
        machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
        kernel=KernelConfig.prototype(
            big_tick=max(1, int(round(25 / time_compression)))
        ).with_options(policy=policy, policy_params=policy_params),
        cosched=CoschedConfig(
            enabled=True, period_us=s(5) / time_compression, duty_cycle=0.90
        ),
        mpi=MpiConfig.with_long_polling(progress_threads_enabled=False),
        noise=scale_noise(standard_noise(include_cron=False), time_compression),
        seed=seed,
    )


def _series_digest(durations) -> str:
    """Deterministic fingerprint of a duration series (repr of each
    float — exact, not rounded — so any drift shows)."""
    h = hashlib.sha256()
    for d in durations:
        h.update(repr(float(d)).encode())
    return h.hexdigest()[:16]


def _policy_trial(params: dict) -> dict:
    """Run one (policy, size) cell: the aggregate_trace workload on a
    system whose node dispatch policy is *params["policy"]*.

    Top-level and pure per the TrialRunner contract; returns plain JSON
    including the series digest the determinism checks compare.
    """
    cfg = build_policy_config(
        params["policy"],
        tuple(tuple(p) for p in params["policy_params"]),
        params["n_ranks"],
        params["tpn"],
        params["seed"],
        params["time_compression"],
    )
    system = System(cfg)
    res = run_aggregate_trace(
        system,
        params["n_ranks"],
        params["tpn"],
        AggregateTraceConfig(
            calls_per_loop=params["calls"],
            compute_between_us=params["compute_between_us"],
        ),
    )
    sample = res.sorted_node0_sample()
    return {
        "mean_us": res.mean_us,
        "median_us": res.median_us,
        "max_us": float(sample[-1]),
        "elapsed_us": res.elapsed_us,
        "values_ok": bool(res.values_ok),
        "digest": _series_digest(sample),
        "events_processed": system.sim.events_processed,
    }


@dataclass
class PolicyZooResult:
    """The ablation grid: per-policy rows over the size columns."""

    policies: tuple  # row order
    sizes: tuple  # ranks per column
    #: policy -> [mean_us per size], etc.
    mean_us: dict
    median_us: dict
    max_us: dict
    values_ok: dict  # policy -> [bool per size]
    digests: dict  # policy -> [series digest per size]
    #: Noise-free analytic prediction per size (µs) — the slowdown anchor.
    reference_us: tuple
    tpn: int
    calls: int
    seed: int
    time_compression: float

    def slowdown(self, policy: str) -> list:
        """Mean latency over the noise-free prediction, per size."""
        return [
            m / ref for m, ref in zip(self.mean_us[policy], self.reference_us)
        ]


def run_policyzoo(
    policies: Optional[Sequence[str]] = None,
    sizes: Optional[Sequence[int]] = None,
    tpn: int = 8,
    calls: int = 220,
    compute_between_us: float = 200.0,
    seed: int = 13,
    time_compression: float = 50.0,
    quick: bool = False,
    journal=None,
    trial_timeout_s: Optional[float] = None,
    jobs: int = 1,
) -> PolicyZooResult:
    """Run the policy × size ablation grid.

    Defaults cover every registered policy at :data:`SIZES`; pass
    *policies* to pin the sweep to a subset (the CLI's ``--policy``).
    Deterministic end to end: the grid depends only on the arguments,
    never on ``jobs`` or resume state.
    """
    if policies is None:
        policies = policy_names()
    for name in policies:
        validate_policy(name)  # fail loudly before any DES time is spent
    if sizes is None:
        sizes = SIZES_QUICK if quick else SIZES
    if quick:
        calls = min(calls, 120)

    specs = [
        TrialSpec(
            key=f"policyzoo-{policy}-n{n}-s{seed}" + ("-quick" if quick else ""),
            fn="repro.experiments.policyzoo:_policy_trial",
            params=dict(
                policy=policy,
                policy_params=[],
                n_ranks=n,
                tpn=tpn,
                calls=calls,
                compute_between_us=compute_between_us,
                seed=seed,
                time_compression=time_compression,
            ),
        )
        for policy in policies
        for n in sizes
    ]
    runner = TrialRunner(jobs=jobs, journal=journal, trial_timeout_s=trial_timeout_s)
    outcomes = runner.run(specs)
    cells = {
        (spec.params["policy"], spec.params["n_ranks"]): outcome.require()
        for spec, outcome in zip(specs, outcomes)
    }

    # Noise-free analytic prediction per size (aix semantics — the model
    # predates the zoo; it is the common yardstick, not a per-policy fit).
    reference = []
    for n in sizes:
        quiet = build_policy_config(
            "aix", (), n, tpn, seed, time_compression
        ).replace(noise=NoiseConfig())
        model = AllreduceSeriesModel(quiet, n, tpn, seed=seed)
        reference.append(model.run_series(32, compute_between_us=0.0).median_us)

    def column(field: str) -> dict:
        return {
            p: [cells[(p, n)][field] for n in sizes] for p in policies
        }

    return PolicyZooResult(
        policies=tuple(policies),
        sizes=tuple(sizes),
        mean_us=column("mean_us"),
        median_us=column("median_us"),
        max_us=column("max_us"),
        values_ok=column("values_ok"),
        digests=column("digest"),
        reference_us=tuple(reference),
        tpn=tpn,
        calls=calls,
        seed=seed,
        time_compression=time_compression,
    )


def format_policyzoo(res: PolicyZooResult) -> str:
    """Render the ablation grid, one table per cluster size."""
    parts = [
        "E13: policy ablation — dispatch-policy zoo, same workload/noise/"
        "co-scheduler",
        "",
    ]
    for col, n in enumerate(res.sizes):
        rows = []
        for p in res.policies:
            rows.append(
                (
                    p,
                    res.mean_us[p][col],
                    res.median_us[p][col],
                    res.max_us[p][col],
                    f"{res.mean_us[p][col] / res.reference_us[col]:.2f}x",
                    "ok" if res.values_ok[p][col] else "BAD VALUES",
                )
            )
        parts.append(
            text_table(
                ["policy", "mean_us", "median_us", "max_us", "slowdown", "values"],
                rows,
                title=(
                    f"{n} ranks x {res.tpn}/node "
                    f"(noise-free prediction {res.reference_us[col]:.0f} us, "
                    f"compressed {res.time_compression:.0f}x)"
                ),
                floatfmt="{:.1f}",
            )
        )
    parts.append(
        "slowdown = mean / noise-free analytic prediction (the Fig 4 "
        "yardstick).  The aix dispatcher\nkeeps favored ranks on-CPU "
        "(paper semantics); priority-blind policies time-share ranks\n"
        "against daemons and spinners, trading the interference tail for "
        "fair-share latency.\n"
    )
    return "\n".join(parts)
