"""T2: "100 fully populated nodes running the prototype kernel yielded a
154 % speedup over 100 nodes running at 15 tasks per node on the standard
AIX kernel."

Job-level comparison at fixed node count and fixed total problem size:
the prototype runs 1600 tasks (16/node) while the workaround baseline runs
1500 (15/node), so the prototype splits the compute 16/15 finer *and* its
collectives are cheaper.  Speedup is reported the way the paper reports
ratios (``x % speedup`` = time ratio × 100, matching the "over 300 %"
slope-ratio usage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.experiments.common import PROTO16, VANILLA15
from repro.experiments.reporting import text_table
from repro.experiments.runner import TrialRunner, TrialSpec

__all__ = ["SpeedupResult", "run_speedup154", "format_speedup"]


@dataclass
class SpeedupResult:
    n_nodes: int
    proto_ranks: int
    baseline_ranks: int
    proto_cycle_us: float
    baseline_cycle_us: float
    #: Per-cycle Allreduce component of each configuration.
    proto_allreduce_us: float
    baseline_allreduce_us: float

    @property
    def speedup_percent(self) -> float:
        """Paper usage: 'x% speedup' = time ratio × 100 (cf. 'over 300%'
        for the ~3.2× slope ratio)."""
        return 100.0 * self.baseline_allreduce_us / self.proto_allreduce_us

    @property
    def cycle_speedup_percent(self) -> float:
        return 100.0 * self.baseline_cycle_us / self.proto_cycle_us


def run_speedup154(
    n_nodes: int = 100,
    n_calls: int = 400,
    n_seeds: int = 3,
    compute_between_us: float = 200.0,
    seed: int = 11,
    journal=None,
    trial_timeout_s: Optional[float] = None,
    jobs: int = 1,
) -> SpeedupResult:
    """Compare Allreduce series on the same 100 nodes, both ways populated.

    The paper's statement is an Allreduce-benchmark result: "100 fully
    populated nodes running the prototype kernel yielded a 154% speedup
    over 100 nodes running at 15 tasks per node on the standard AIX
    kernel" — i.e. the prototype's collectives at 1600 tasks beat the
    workaround's at 1500 tasks by the quoted ratio, despite the prototype
    carrying one extra (noisier) task per node.

    The 2 × *n_seeds* trials run through
    :class:`~repro.experiments.runner.TrialRunner` (``jobs`` workers,
    journal resume, per-trial watchdog) like every other campaign.
    """
    runner = TrialRunner(jobs=jobs, journal=journal, trial_timeout_s=trial_timeout_s)
    scenarios = (PROTO16, VANILLA15)
    specs = [
        TrialSpec(
            key=f"speedup154-{scenario.name}-s{k}",
            fn="repro.experiments.common:_allreduce_trial",
            params=dict(
                scenario=scenario,
                n_ranks=n_nodes * scenario.tasks_per_node,
                seed=seed + k,
                model_seed=seed + 13 * k + n_nodes * scenario.tasks_per_node,
                n_calls=n_calls,
                compute_between_us=compute_between_us,
            ),
        )
        for scenario in scenarios
        for k in range(n_seeds)
    ]
    by_key = {o.key: o for o in runner.run(specs)}
    results = {}
    for scenario in scenarios:
        n = n_nodes * scenario.tasks_per_node
        means = [
            by_key[f"speedup154-{scenario.name}-s{k}"].require()["mean_us"]
            for k in range(n_seeds)
        ]
        allreduce = float(np.mean(means))
        # A full bulk-synchronous cycle at the paper's typical granularity
        # (compute + one synchronising collective).
        cycle = compute_between_us + allreduce
        results[scenario.name] = (n, cycle, allreduce)
    pn, pc, pa = results["proto16"]
    bn, bc, ba = results["vanilla15"]
    return SpeedupResult(n_nodes, pn, bn, pc, bc, pa, ba)


def format_speedup(res: SpeedupResult) -> str:
    """Render the T2 table and the paper-convention speedup line."""
    rows = [
        ("prototype 16/node", res.proto_ranks, res.proto_allreduce_us, res.proto_cycle_us),
        ("vanilla 15/node", res.baseline_ranks, res.baseline_allreduce_us, res.baseline_cycle_us),
    ]
    table = text_table(
        ["configuration", "tasks", "allreduce_us", "cycle_us"],
        rows,
        title=f"T2: fixed-size job on {res.n_nodes} nodes",
    )
    return table + (
        f"speedup: {res.speedup_percent:.0f}%  "
        f"(paper: 154% — prototype fully-populated vs 15/node workaround)\n"
    )
