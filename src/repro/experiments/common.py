"""Shared experiment infrastructure: canonical scenarios and sweeps.

The three configurations the paper contrasts, reused across figures:

* **vanilla16** — stock AIX 4.3.3 semantics, 16 tasks/node, MPI timer
  threads at their default 400 ms period (Figure 3).
* **vanilla15** — the community workaround: leave one CPU per node idle
  for the daemons (§5.3 baseline, the comparand of the 154 % result).
* **proto16** — the paper's full treatment: prototype kernel (big tick
  250 ms, simultaneous cluster-aligned ticks, global daemon queue,
  real-time scheduling with both fixes) + co-scheduler (favored 30 /
  unfavored 100 / 5 s period / 90 % duty) + the ``MP_POLLING_INTERVAL``
  timer-thread fix (Figures 5 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analytic.model import AllreduceSeriesModel
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NoiseConfig,
)
from repro.daemons.catalog import standard_noise

__all__ = [
    "Scenario",
    "VANILLA16",
    "VANILLA15",
    "PROTO16",
    "make_config",
    "SweepResult",
    "allreduce_sweep",
    "PAPER_PROC_COUNTS",
]

#: Processor counts sampled in the sweeps — spanning the paper's plotted
#: range up to near Blue Oak's 1920 CPUs.
PAPER_PROC_COUNTS: tuple[int, ...] = (128, 256, 512, 944, 1360, 1728)


@dataclass(frozen=True)
class Scenario:
    """One machine configuration under test."""

    name: str
    kernel: Callable[[], KernelConfig]
    tasks_per_node: int
    #: MPI timer-thread fix applied (long MP_POLLING_INTERVAL)?
    long_polling: bool
    cosched: bool

    def mpi_config(self) -> MpiConfig:
        """MPI settings for this scenario (timer-thread fix applied or not)."""
        return MpiConfig.with_long_polling() if self.long_polling else MpiConfig()

    def cosched_config(self) -> CoschedConfig:
        """Co-scheduler settings for this scenario (paper defaults)."""
        return CoschedConfig(enabled=self.cosched)


VANILLA16 = Scenario("vanilla16", KernelConfig.vanilla, 16, False, False)
VANILLA15 = Scenario("vanilla15", KernelConfig.vanilla, 15, False, False)
PROTO16 = Scenario("proto16", KernelConfig.prototype, 16, True, True)


def make_config(
    scenario: Scenario,
    n_ranks: int,
    seed: int = 0,
    cpus_per_node: int = 16,
    noise: Optional[NoiseConfig] = None,
    include_cron: bool = False,
) -> ClusterConfig:
    """Build the full ClusterConfig for a scenario at a given job size.

    ``include_cron`` is off for scaling sweeps (the paper's fitted lines
    exclude the known cron outlier — Fig 4 studies it separately) and on
    where the experiment wants the outlier.
    """
    n_nodes = -(-n_ranks // scenario.tasks_per_node)
    return ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpus_per_node),
        kernel=scenario.kernel(),
        mpi=scenario.mpi_config(),
        cosched=scenario.cosched_config(),
        noise=noise if noise is not None else standard_noise(include_cron=include_cron),
        seed=seed,
    )


@dataclass
class SweepResult:
    """Allreduce latency vs processor count for one scenario."""

    scenario: str
    proc_counts: np.ndarray
    #: Mean per-call Allreduce time at each count, averaged over seeds (µs).
    mean_us: np.ndarray
    #: Std over seeds of the per-run means — the run-to-run variability the
    #: paper's scatter shows.
    run_std_us: np.ndarray
    #: Mean within-run standard deviation (call-to-call variability).
    call_std_us: np.ndarray
    n_seeds: int
    n_calls: int
    #: Trials that failed or timed out, as ``"<scenario>-n<procs>-s<seed>"``
    #: keys.  A count whose every seed failed carries NaN in the arrays —
    #: the sweep reports an explicit hole rather than dying mid-campaign.
    failed_points: list = field(default_factory=list)

    def rows(self) -> list[tuple[int, float, float, float]]:
        """Table rows: (procs, mean, run-σ, call-σ)."""
        return [
            (int(n), float(m), float(rs), float(cs))
            for n, m, rs, cs in zip(
                self.proc_counts, self.mean_us, self.run_std_us, self.call_std_us
            )
        ]


def allreduce_sweep(
    scenario: Scenario,
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS,
    n_calls: int = 400,
    n_seeds: int = 3,
    compute_between_us: float = 200.0,
    base_seed: int = 1000,
    journal=None,
    trial_timeout_s: Optional[float] = None,
) -> SweepResult:
    """Model an aggregate_trace-style series at each processor count.

    Mirrors the paper's methodology: "each plotted datum is the average of
    at least 3 runs, and each run is the result of thousands of
    Allreduces" (we default to hundreds per run; benchmarks may raise it).

    Crash safety: with a :class:`repro.checkpoint.SweepJournal` supplied,
    every finished ``(count, seed)`` trial is journaled atomically and a
    re-run with the same journal skips it — a killed sweep resumes where
    it died, bit-identically (JSON round-trips doubles exactly).  With
    *trial_timeout_s*, each trial runs under a wall-clock watchdog; a
    wedged or failing trial is recorded in ``failed_points`` (and in the
    journal) and the sweep continues, leaving an explicit NaN hole when
    a count loses all its seeds.
    """
    from repro.checkpoint.harness import trial_watchdog

    means = np.empty(len(proc_counts))
    run_stds = np.empty(len(proc_counts))
    call_stds = np.empty(len(proc_counts))
    failed: list[str] = []
    for i, n in enumerate(proc_counts):
        per_seed = []
        per_std = []
        for s in range(n_seeds):
            key = f"{scenario.name}-n{n}-s{s}"
            if journal is not None:
                done = journal.lookup(key)
                if done is not None:
                    per_seed.append(done["mean_us"])
                    per_std.append(done["std_us"])
                    continue
            try:
                with trial_watchdog(trial_timeout_s):
                    cfg = make_config(scenario, n, seed=base_seed + s)
                    model = AllreduceSeriesModel(
                        cfg, n, scenario.tasks_per_node, seed=base_seed + 7 * s + n
                    )
                    res = model.run_series(n_calls, compute_between_us=compute_between_us)
            except Exception as exc:  # TrialTimeout, or a model blow-up
                # under an adversarial config: record the hole, keep the
                # campaign alive.  (KeyboardInterrupt still aborts.)
                failed.append(key)
                if journal is not None:
                    journal.record_failure(key, f"{type(exc).__name__}: {exc}")
                continue
            per_seed.append(res.mean_us)
            per_std.append(res.std_us)
            if journal is not None:
                journal.record(key, {"mean_us": res.mean_us, "std_us": res.std_us})
        # A count whose every seed failed stays in the sweep as an
        # explicit NaN hole — downstream fits mask it, plots show a gap.
        means[i] = float(np.mean(per_seed)) if per_seed else float("nan")
        run_stds[i] = float(np.std(per_seed)) if per_seed else float("nan")
        call_stds[i] = float(np.mean(per_std)) if per_std else float("nan")
    return SweepResult(
        scenario.name,
        np.asarray(proc_counts, dtype=int),
        means,
        run_stds,
        call_stds,
        n_seeds,
        n_calls,
        failed_points=failed,
    )
