"""Shared experiment infrastructure: canonical scenarios and sweeps.

The three configurations the paper contrasts, reused across figures:

* **vanilla16** — stock AIX 4.3.3 semantics, 16 tasks/node, MPI timer
  threads at their default 400 ms period (Figure 3).
* **vanilla15** — the community workaround: leave one CPU per node idle
  for the daemons (§5.3 baseline, the comparand of the 154 % result).
* **proto16** — the paper's full treatment: prototype kernel (big tick
  250 ms, simultaneous cluster-aligned ticks, global daemon queue,
  real-time scheduling with both fixes) + co-scheduler (favored 30 /
  unfavored 100 / 5 s period / 90 % duty) + the ``MP_POLLING_INTERVAL``
  timer-thread fix (Figures 5 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.analytic.model import AllreduceSeriesModel
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NoiseConfig,
)
from repro.daemons.catalog import standard_noise
from repro.experiments.runner import TrialRunner, TrialSpec

__all__ = [
    "Scenario",
    "VANILLA16",
    "VANILLA15",
    "PROTO16",
    "make_config",
    "SweepResult",
    "allreduce_sweep",
    "allreduce_trial_specs",
    "PAPER_PROC_COUNTS",
]

#: Processor counts sampled in the sweeps — spanning the paper's plotted
#: range up to near Blue Oak's 1920 CPUs.
PAPER_PROC_COUNTS: tuple[int, ...] = (128, 256, 512, 944, 1360, 1728)


@dataclass(frozen=True)
class Scenario:
    """One machine configuration under test."""

    name: str
    kernel: Callable[[], KernelConfig]
    tasks_per_node: int
    #: MPI timer-thread fix applied (long MP_POLLING_INTERVAL)?
    long_polling: bool
    cosched: bool

    def mpi_config(self) -> MpiConfig:
        """MPI settings for this scenario (timer-thread fix applied or not)."""
        return MpiConfig.with_long_polling() if self.long_polling else MpiConfig()

    def cosched_config(self) -> CoschedConfig:
        """Co-scheduler settings for this scenario (paper defaults)."""
        return CoschedConfig(enabled=self.cosched)


VANILLA16 = Scenario("vanilla16", KernelConfig.vanilla, 16, False, False)
VANILLA15 = Scenario("vanilla15", KernelConfig.vanilla, 15, False, False)
PROTO16 = Scenario("proto16", KernelConfig.prototype, 16, True, True)


def make_config(
    scenario: Scenario,
    n_ranks: int,
    seed: int = 0,
    cpus_per_node: int = 16,
    noise: Optional[NoiseConfig] = None,
    include_cron: bool = False,
) -> ClusterConfig:
    """Build the full ClusterConfig for a scenario at a given job size.

    ``include_cron`` is off for scaling sweeps (the paper's fitted lines
    exclude the known cron outlier — Fig 4 studies it separately) and on
    where the experiment wants the outlier.
    """
    n_nodes = -(-n_ranks // scenario.tasks_per_node)
    return ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpus_per_node),
        kernel=scenario.kernel(),
        mpi=scenario.mpi_config(),
        cosched=scenario.cosched_config(),
        noise=noise if noise is not None else standard_noise(include_cron=include_cron),
        seed=seed,
    )


@dataclass
class SweepResult:
    """Allreduce latency vs processor count for one scenario."""

    scenario: str
    proc_counts: np.ndarray
    #: Mean per-call Allreduce time at each count, averaged over seeds (µs).
    mean_us: np.ndarray
    #: Std over seeds of the per-run means — the run-to-run variability the
    #: paper's scatter shows.
    run_std_us: np.ndarray
    #: Mean within-run standard deviation (call-to-call variability).
    call_std_us: np.ndarray
    n_seeds: int
    n_calls: int
    #: Trials that failed or timed out, as ``"<scenario>-n<procs>-s<seed>"``
    #: keys.  A count whose every seed failed carries NaN in the arrays —
    #: the sweep reports an explicit hole rather than dying mid-campaign.
    failed_points: list = field(default_factory=list)
    #: Final-failure counts by taxonomy (``crash | hang | exception |
    #: timeout | quarantined``), sorted by taxonomy name.  Only *final*
    #: failures count — transient crash/hang retries the supervised
    #: backend recovered from stay out of saved results on purpose, so a
    #: chaos campaign that converges remains byte-identical to a clean
    #: serial run (retry telemetry lives in ``TrialRunner.stats``).
    failure_taxonomy: dict = field(default_factory=dict)

    def rows(self) -> list[tuple[int, float, float, float]]:
        """Table rows: (procs, mean, run-σ, call-σ)."""
        return [
            (int(n), float(m), float(rs), float(cs))
            for n, m, rs, cs in zip(
                self.proc_counts, self.mean_us, self.run_std_us, self.call_std_us
            )
        ]


def _allreduce_trial(params: dict) -> dict:
    """One (scenario, count, seed) Allreduce-series trial.

    The unit of work every sweep-style campaign schedules through
    :class:`~repro.experiments.runner.TrialRunner`; must stay a top-level
    function so worker processes can resolve it by name.
    """
    scenario: Scenario = params["scenario"]
    n = params["n_ranks"]
    cfg = make_config(scenario, n, seed=params["seed"])
    model = AllreduceSeriesModel(
        cfg, n, scenario.tasks_per_node, seed=params["model_seed"]
    )
    res = model.run_series(
        params["n_calls"], compute_between_us=params["compute_between_us"]
    )
    return {"mean_us": res.mean_us, "std_us": res.std_us}


def allreduce_trial_specs(
    scenario: Scenario,
    proc_counts: Sequence[int],
    n_calls: int,
    n_seeds: int,
    compute_between_us: float = 200.0,
    base_seed: int = 1000,
) -> list[TrialSpec]:
    """The sweep as pure data: one spec per (count, seed), journal keys
    matching the historical ``<scenario>-n<procs>-s<seed>`` format so old
    journals resume under the new runner."""
    return [
        TrialSpec(
            key=f"{scenario.name}-n{n}-s{s}",
            fn="repro.experiments.common:_allreduce_trial",
            params=dict(
                scenario=scenario,
                n_ranks=int(n),
                seed=base_seed + s,
                model_seed=base_seed + 7 * s + int(n),
                n_calls=n_calls,
                compute_between_us=compute_between_us,
            ),
        )
        for n in proc_counts
        for s in range(n_seeds)
    ]


def allreduce_sweep(
    scenario: Scenario,
    proc_counts: Sequence[int] = PAPER_PROC_COUNTS,
    n_calls: int = 400,
    n_seeds: int = 3,
    compute_between_us: float = 200.0,
    base_seed: int = 1000,
    journal=None,
    trial_timeout_s: Optional[float] = None,
    jobs: int = 1,
    runner: Optional[TrialRunner] = None,
    store=None,
) -> SweepResult:
    """Model an aggregate_trace-style series at each processor count.

    Mirrors the paper's methodology: "each plotted datum is the average of
    at least 3 runs, and each run is the result of thousands of
    Allreduces" (we default to hundreds per run; benchmarks may raise it).

    Execution policy lives in :class:`~repro.experiments.runner.TrialRunner`
    (pass one via *runner*, or let *jobs*/*journal*/*trial_timeout_s* build
    it): trials run serially or across ``jobs`` worker processes, finished
    trials are journaled atomically and skipped on resume, and timed-out or
    failing trials become recorded entries in ``failed_points`` — an
    explicit NaN hole when a count loses all its seeds — instead of killing
    the campaign.  Because trials are pure functions of their specs and
    outcomes merge in spec order, ``jobs=N`` is bit-identical to serial.

    *store* (a :class:`repro.store.ResultStore`) memoizes trials *across*
    campaigns and runs: specs found there are served without executing
    (``cached`` outcomes, materialised into the journal), and every
    executed result is written back, checksummed and atomic.  ``None``
    inherits the process default set by the CLI's ``--store``.
    """
    if runner is None:
        runner = TrialRunner(
            jobs=jobs, journal=journal, trial_timeout_s=trial_timeout_s, store=store
        )
    specs = allreduce_trial_specs(
        scenario, proc_counts, n_calls, n_seeds, compute_between_us, base_seed
    )
    outcomes = iter(runner.run(specs))

    means = np.empty(len(proc_counts))
    run_stds = np.empty(len(proc_counts))
    call_stds = np.empty(len(proc_counts))
    failed: list[str] = []
    taxonomy: dict[str, int] = {}
    for i, n in enumerate(proc_counts):
        per_seed = []
        per_std = []
        for _s in range(n_seeds):
            outcome = next(outcomes)
            if outcome.ok:
                per_seed.append(outcome.record["mean_us"])
                per_std.append(outcome.record["std_us"])
            else:
                failed.append(outcome.key)
                kind = outcome.taxonomy or "exception"
                taxonomy[kind] = taxonomy.get(kind, 0) + 1
        # A count whose every seed failed stays in the sweep as an
        # explicit NaN hole — downstream fits mask it, plots show a gap.
        means[i] = float(np.mean(per_seed)) if per_seed else float("nan")
        run_stds[i] = float(np.std(per_seed)) if per_seed else float("nan")
        call_stds[i] = float(np.mean(per_std)) if per_std else float("nan")
    return SweepResult(
        scenario.name,
        np.asarray(proc_counts, dtype=int),
        means,
        run_stds,
        call_stds,
        n_seeds,
        n_calls,
        failed_points=failed,
        failure_taxonomy=dict(sorted(taxonomy.items())),
    )
