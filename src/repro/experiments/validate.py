"""Self-validation: quick checks that the calibrated system still
reproduces its anchors (EXPERIMENTS.md "Calibration provenance").

`repro-experiments validate` runs in under a minute and reports PASS/FAIL
per anchor — the thing to run after touching the daemon catalog, the
scheduler, or the network parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.analytic.fits import compare_fits
from repro.analytic.model import AllreduceSeriesModel
from repro.config import KernelConfig, MpiConfig, NoiseConfig
from repro.daemons.catalog import standard_noise
from repro.experiments.common import PROTO16, VANILLA16, allreduce_sweep, make_config
from repro.experiments.reporting import text_table
from repro.experiments.runner import TrialRunner, TrialSpec

__all__ = ["ValidationCheck", "run_validation", "format_validation"]


@dataclass
class ValidationCheck:
    name: str
    passed: bool
    detail: str


def _check_noise_budget(_runner: Optional[TrialRunner] = None) -> ValidationCheck:
    """Anchor 1: total system overhead 0.2%-1.1% of each CPU."""
    frac = standard_noise(include_cron=False).total_cpu_fraction(16)
    tick = KernelConfig().tick_cost_us / KernelConfig().tick_period_us
    total = frac + tick
    return ValidationCheck(
        "noise budget in paper envelope",
        0.002 <= total <= 0.011,
        f"daemons {100 * frac:.3f}% + ticks {100 * tick:.3f}% per CPU",
    )


def _check_base_latency(_runner: Optional[TrialRunner] = None) -> ValidationCheck:
    """Anchor 2: zero-noise Allreduce near the paper's ~350 us model."""
    cfg = make_config(VANILLA16, 944, seed=0).replace(
        noise=NoiseConfig(), mpi=MpiConfig.with_long_polling()
    )
    mean = AllreduceSeriesModel(cfg, 944, 16, seed=0).run_series(20).mean_us
    return ValidationCheck(
        "zero-noise base near paper model",
        150.0 <= mean <= 600.0,
        f"{mean:.0f} us at 944 ranks (paper model: ~350 us)",
    )


def _check_vanilla_slope(runner: Optional[TrialRunner] = None) -> ValidationCheck:
    """Anchor 3: vanilla Figure-3 slope near the paper's 0.70 us/CPU."""
    runner = runner or TrialRunner()
    sweep = allreduce_sweep(
        VANILLA16,
        proc_counts=(128, 512, 944, 1360, 1728),
        n_calls=200,
        n_seeds=2,
        runner=runner,
    )
    lin, _log, winner = compare_fits(sweep.proc_counts, sweep.mean_us)
    ok = winner == "linear" and 0.4 <= lin.slope <= 1.1
    return ValidationCheck(
        "vanilla scaling linear, slope near 0.70",
        ok,
        f"{lin} (best fit: {winner})",
    )


def _check_prototype_factor(runner: Optional[TrialRunner] = None) -> ValidationCheck:
    """Anchor 4: prototype beats vanilla by roughly the paper's factor."""
    runner = runner or TrialRunner()
    specs = [
        TrialSpec(
            key=f"validate-factor-{scenario.name}-s{k}",
            fn="repro.experiments.common:_allreduce_trial",
            params=dict(
                scenario=scenario,
                n_ranks=944,
                seed=50 + k,
                model_seed=60 + k,
                n_calls=200,
                compute_between_us=200.0,
            ),
        )
        for scenario in (VANILLA16, PROTO16)
        for k in range(2)
    ]
    by_key = {o.key: o for o in runner.run(specs)}
    means = {
        scenario.name: float(
            np.mean(
                [
                    by_key[f"validate-factor-{scenario.name}-s{k}"].require()["mean_us"]
                    for k in range(2)
                ]
            )
        )
        for scenario in (VANILLA16, PROTO16)
    }
    ratio = means["vanilla16"] / means["proto16"]
    return ValidationCheck(
        "prototype factor at 944 CPUs",
        1.7 <= ratio <= 5.0,
        f"{ratio:.2f}x (paper: ~3x)",
    )


def _check_des_model_agreement(_runner: Optional[TrialRunner] = None) -> ValidationCheck:
    """Anchor 5: DES and vectorised model agree on a quiet base case."""
    from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
    from repro.config import ClusterConfig, MachineConfig
    from repro.system import System

    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=2, cpus_per_node=8),
        mpi=MpiConfig(progress_threads_enabled=False),
        noise=NoiseConfig(),
        seed=1,
    )
    des = run_aggregate_trace(
        System(cfg), 16, 8, AggregateTraceConfig(calls_per_loop=64, compute_between_us=0.0)
    ).median_us
    model = AllreduceSeriesModel(cfg, 16, 8, seed=1).run_series(64).median_us
    ratio = des / model
    return ValidationCheck(
        "DES vs model base-latency agreement",
        0.6 <= ratio <= 1.6,
        f"DES {des:.0f} us vs model {model:.0f} us (ratio {ratio:.2f})",
    )


CHECKS: tuple[Callable[[Optional[TrialRunner]], ValidationCheck], ...] = (
    _check_noise_budget,
    _check_base_latency,
    _check_vanilla_slope,
    _check_prototype_factor,
    _check_des_model_agreement,
)


def run_validation(jobs: int = 1) -> list[ValidationCheck]:
    """Run every calibration anchor check; heavy anchors fan their trials
    out over *jobs* worker processes."""
    runner = TrialRunner(jobs=jobs)
    return [check(runner) for check in CHECKS]


def format_validation(checks: list[ValidationCheck]) -> str:
    """Render the PASS/FAIL table with a verdict line."""
    rows = [
        ("PASS" if c.passed else "FAIL", c.name, c.detail) for c in checks
    ]
    table = text_table(["status", "anchor", "detail"], rows, title="Calibration validation")
    n_fail = sum(1 for c in checks if not c.passed)
    verdict = "all anchors hold" if n_fail == 0 else f"{n_fail} anchor(s) FAILED"
    return table + verdict + "\n"
