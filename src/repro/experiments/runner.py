"""Declarative trial execution: :class:`TrialSpec` + :class:`TrialRunner`.

Every campaign in this repository — the figure sweeps, the ablation, the
speedup comparison, the resilience scenarios, the validation anchors —
reduces to the same shape: a list of *independent, deterministic* trials
whose results are averaged or tabulated afterwards.  This module owns
that shape once:

* :class:`TrialSpec` is the pure-data description of one trial — a
  journal key, a ``"module:function"`` reference to a top-level trial
  function, and a picklable ``params`` dict.  Specs carry no behaviour,
  so they cross process boundaries and land in journals unchanged.
* :class:`TrialRunner` owns execution policy: serial in-process, or
  fanned out over a ``ProcessPoolExecutor`` (``jobs`` workers), with the
  per-trial wall-clock watchdog and crash-safe journaling from
  :mod:`repro.checkpoint.harness` applied uniformly either way.

**The determinism-under-parallelism contract.**  Each trial is a pure
function of its params (all randomness comes from seeds inside them), so
execution order cannot change any trial's result.  The runner returns
outcomes in *spec order* regardless of completion order, journal entries
are keyed (one atomically-written file per trial, workers writing to
per-process shards merged on read), and failure records are formatted
identically on both paths.  Hence ``--jobs N`` and a serial run produce
bit-identical results and byte-identical journals — the property
``tests/test_runner.py`` pins.

Worker processes prefer the ``fork`` start method where the platform
offers it (cheap, and test-time monkeypatching propagates); elsewhere the
default context is used, which is why trial functions must be importable
top-level names and params must pickle.

**Backends.**  ``jobs > 1`` selects a parallel backend:

* ``"supervised"`` (the default) — the fault-tolerant worker pool in
  :mod:`repro.experiments.supervisor`: long-lived heartbeating workers,
  crash/hang detection, bounded retry with deterministic backoff,
  quarantine of poison specs, and graceful SIGINT/SIGTERM drain.
* ``"pool"`` — the legacy raw ``ProcessPoolExecutor`` path, kept as a
  comparison baseline; a dead worker breaks the whole pool.

Both backends honour the determinism contract above.  The CLI selects a
backend and supervisor policy once per process via
:func:`set_execution_defaults`; campaigns that build their own
``TrialRunner`` inherit it.
"""

from __future__ import annotations

import contextlib
import importlib
import multiprocessing
import os
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.checkpoint import harness as _harness
from repro.checkpoint.harness import (
    SweepJournal,
    TrialFailure,
    TrialTimeout,
    trial_watchdog,
)

__all__ = [
    "TrialSpec",
    "TrialOutcome",
    "TrialRunner",
    "resolve_trial_fn",
    "format_trial_traceback",
    "set_execution_defaults",
    "BACKENDS",
]

#: Parallel backends selectable for ``jobs > 1``.
BACKENDS = ("supervised", "pool")

#: Process-wide execution policy, set once by the CLI (or tests) via
#: :func:`set_execution_defaults`; ``TrialRunner`` instances that are
#: not given an explicit ``backend``/``supervisor``/``store`` inherit
#: these.
_DEFAULT_BACKEND = "supervised"
_DEFAULT_SUPERVISOR = None
_DEFAULT_STORE = None
_DEFAULT_USE_CACHE = True


def set_execution_defaults(
    backend=None, supervisor=None, store=None, use_cache=None
) -> tuple:
    """Set the process-wide default backend, supervisor policy, and
    result store.

    Returns the previous ``(backend, supervisor, store, use_cache)``
    tuple so callers (the CLI, tests) can restore it.  Campaigns
    construct their own runners deep inside ``run_fig*``-style entry
    points; this is how one ``--backend``/``--harness-chaos``/``--store``
    choice reaches all of them.  ``supervisor`` and ``store`` are set
    unconditionally (``None`` clears them); ``use_cache=False`` makes
    runners ignore the store for *reads* while still writing results
    into it (the ``--no-cache`` refresh semantics).
    """
    global _DEFAULT_BACKEND, _DEFAULT_SUPERVISOR, _DEFAULT_STORE, _DEFAULT_USE_CACHE
    previous = (_DEFAULT_BACKEND, _DEFAULT_SUPERVISOR, _DEFAULT_STORE, _DEFAULT_USE_CACHE)
    if backend is not None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; pick from {BACKENDS}")
        _DEFAULT_BACKEND = backend
    _DEFAULT_SUPERVISOR = supervisor
    _DEFAULT_STORE = store
    if use_cache is not None:
        _DEFAULT_USE_CACHE = bool(use_cache)
    return previous


@dataclass(frozen=True)
class TrialSpec:
    """Pure-data description of one trial.

    ``key`` must be unique within a campaign — it names the journal entry
    and the outcome.  ``fn`` is a ``"package.module:function"`` reference
    resolved in the executing process (never a live callable, so a spec
    survives pickling and journaling).  ``params`` is passed to the trial
    function as its only argument; the function returns a JSON-able dict.
    """

    key: str
    fn: str
    params: dict = field(default_factory=dict)


def resolve_trial_fn(path: str) -> Callable[[dict], dict]:
    """Resolve a ``"package.module:function"`` trial-function reference."""
    mod_name, sep, fn_name = path.partition(":")
    if not sep or not mod_name or not fn_name:
        raise ValueError(f"trial fn must look like 'pkg.mod:fn', got {path!r}")
    return getattr(importlib.import_module(mod_name), fn_name)


#: Frames belonging to the execution machinery itself, stripped from
#: captured trial tracebacks: the serial path raises through ``_run_one``
#: and the pool path through ``_execute_trial`` (plus contextmanager
#: plumbing), so keeping those frames would make otherwise-identical
#: failures journal differently — breaking the byte-identical
#: serial-vs-parallel contract.
_HARNESS_FILES = frozenset({__file__, _harness.__file__, contextlib.__file__})


def format_trial_traceback(exc: BaseException) -> Optional[str]:
    """Deterministic formatted traceback of a failed trial, or ``None``.

    Keeps only the frames below the runner/watchdog machinery — the trial
    function on down — so the string is identical whether the exception
    was raised in-process or in a pool worker.  Timeouts return ``None``:
    ``SIGALRM`` lands at an arbitrary bytecode boundary, so their
    tracebacks are wall-clock noise, not diagnosis.
    """
    if isinstance(exc, TrialTimeout):
        return None
    frames = [
        f
        for f in _traceback.extract_tb(exc.__traceback__)
        if f.filename not in _HARNESS_FILES
    ]
    if not frames:
        return None
    return "".join(
        _traceback.format_list(frames) + _traceback.format_exception_only(exc)
    )


@dataclass
class TrialOutcome:
    """Result of one trial: its record, or a failure reason."""

    key: str
    record: Optional[dict]
    error: Optional[str] = None
    #: Full formatted traceback of the failure, when one was captured
    #: (harness frames stripped; ``None`` for timeouts and worker deaths).
    traceback: Optional[str] = None
    #: Served from the journal instead of recomputed (resume telemetry).
    cached: bool = False
    #: Failure classification when the trial failed — one of
    #: ``crash | hang | exception | timeout | quarantined`` (see
    #: :mod:`repro.experiments.supervisor`); ``None`` on success.
    taxonomy: Optional[str] = None
    #: Crash/hang re-dispatches this trial survived under the supervised
    #: backend (telemetry only; never part of saved results).
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.record is not None

    def require(self) -> dict:
        """The record, or :class:`TrialFailure` for experiments that have
        no hole semantics (ablation, speedup, validation)."""
        if self.record is None:
            raise TrialFailure(f"trial {self.key!r} failed: {self.error}")
        return self.record


def _execute_trial(
    spec: TrialSpec, timeout_s: Optional[float], journal_root: Optional[Any]
):
    """Run one trial in a worker process; journal into a per-worker shard.

    Must stay a top-level function (pickled by reference into the pool).
    Returns ``(key, record_or_None, error_or_None)``; exceptions are
    converted to failure outcomes so one bad trial never kills the pool.
    """
    journal = (
        SweepJournal(journal_root, shard=f"w{os.getpid()}")
        if journal_root is not None
        else None
    )
    try:
        with trial_watchdog(timeout_s):
            record = resolve_trial_fn(spec.fn)(spec.params)
    except Exception as exc:
        reason = f"{type(exc).__name__}: {exc}"
        tb = format_trial_traceback(exc)
        taxonomy = "timeout" if isinstance(exc, TrialTimeout) else "exception"
        if journal is not None:
            journal.record_failure(spec.key, reason, traceback=tb, taxonomy=taxonomy)
        return spec.key, None, reason, tb, taxonomy
    if journal is not None:
        journal.record(spec.key, record)
    return spec.key, record, None, None, None


class TrialRunner:
    """Executes :class:`TrialSpec` lists under one policy.

    ``jobs=1`` (the default) runs trials in-process, in order.  ``jobs>1``
    fans pending trials out over worker processes — supervised by default
    (crash/hang recovery, retries, quarantine; see
    :mod:`repro.experiments.supervisor`), or the legacy raw pool with
    ``backend="pool"``.  Either way:

    * trials already journaled (``status: "ok"``) are served from the
      journal without executing — crash/resume semantics;
    * each executed trial runs under :func:`trial_watchdog` when
      ``trial_timeout_s`` is set (``SIGALRM`` works in pool workers too:
      the trial runs on the worker process's main thread);
    * a trial that raises becomes a failed :class:`TrialOutcome` (and a
      ``status: "failed"`` journal entry) instead of aborting the campaign;
    * :meth:`run` returns outcomes in spec order, so assembly code is
      oblivious to completion order — the deterministic merge.

    After a supervised run, :attr:`stats` holds the
    :class:`~repro.experiments.supervisor.SupervisorStats` (retry counts,
    backoff sequences, worker-fault totals) for that batch.
    """

    def __init__(
        self,
        jobs: int = 1,
        journal: Optional[SweepJournal] = None,
        trial_timeout_s: Optional[float] = None,
        backend: Optional[str] = None,
        supervisor=None,
        store=None,
        use_cache: Optional[bool] = None,
    ) -> None:
        if backend is not None and backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; pick from {BACKENDS}")
        self.jobs = max(1, int(jobs))
        self.journal = journal
        self.trial_timeout_s = trial_timeout_s
        self.backend = backend or _DEFAULT_BACKEND
        #: Explicit :class:`~repro.experiments.supervisor.SupervisorConfig`
        #: override; ``None`` inherits the process default (or env).
        self.supervisor = supervisor
        #: Cross-run memo store (:class:`repro.store.ResultStore`) or
        #: ``None``; inherits the process default set by the CLI's
        #: ``--store``.  Probed after the journal, before dispatch; every
        #: executed result is written back, and a journal hit backfills
        #: the store so old campaigns migrate in passing.
        self.store = store if store is not None else _DEFAULT_STORE
        #: When ``False`` the store is write-only for this runner
        #: (``--no-cache``): results are recomputed and re-put — which
        #: makes the put path a determinism check against prior runs.
        self.use_cache = _DEFAULT_USE_CACHE if use_cache is None else bool(use_cache)
        #: SupervisorStats of the last supervised batch, else ``None``.
        self.stats = None

    def _supervisor_config(self):
        from repro.experiments.supervisor import SupervisorConfig

        cfg = self.supervisor if self.supervisor is not None else _DEFAULT_SUPERVISOR
        return cfg if cfg is not None else SupervisorConfig.from_env()

    def run(self, specs: Sequence[TrialSpec]) -> list[TrialOutcome]:
        """Execute *specs*; return their outcomes in the given order."""
        specs = list(specs)
        seen: set[str] = set()
        for spec in specs:
            if spec.key in seen:
                raise ValueError(f"duplicate trial key {spec.key!r}")
            seen.add(spec.key)

        # Fingerprint once per spec when a store is attached; the store
        # is probed *after* the journal (same-campaign resume wins) and
        # serves verified records as cached outcomes, materialised into
        # the journal so warm and cold runs leave byte-identical
        # journals.  Lazy import: repro.store pulls in repro.results,
        # which this module must not import at module scope.
        fingerprints: dict[str, str] = {}
        if self.store is not None:
            from repro.store.fingerprint import spec_fingerprint

            fingerprints = {spec.key: spec_fingerprint(spec) for spec in specs}

        outcomes: dict[str, TrialOutcome] = {}
        pending: list[TrialSpec] = []
        for spec in specs:
            done = self.journal.lookup(spec.key) if self.journal is not None else None
            if done is not None:
                outcomes[spec.key] = TrialOutcome(spec.key, done, cached=True)
                if self.store is not None:
                    # Backfill: a journaled campaign migrates into the
                    # store in passing (and a mismatched prior store
                    # record trips the determinism oracle loudly).
                    self.store.put(fingerprints[spec.key], spec.key, done)
                continue
            if self.store is not None and self.use_cache:
                hit = self.store.get(fingerprints[spec.key])
                if hit is not None:
                    outcomes[spec.key] = TrialOutcome(spec.key, hit, cached=True)
                    if self.journal is not None:
                        self.journal.record(spec.key, hit)
                    continue
            pending.append(spec)

        supervised = self.jobs > 1 and self.backend == "supervised"
        chaos_active = supervised and self._supervisor_config().chaos_seed is not None
        # A single pending trial gains nothing from a pool; run it inline
        # (same code path, same journal bytes) — unless harness chaos is
        # armed, where only the supervised path can retry injected kills.
        if self.jobs == 1 or (len(pending) <= 1 and not chaos_active):
            for spec in pending:
                outcomes[spec.key] = self._run_one(spec)
        elif supervised:
            self._run_supervised(pending, outcomes, fingerprints)
        else:
            self._run_pool(pending, outcomes)
        if self.store is not None:
            # Persist every executed result.  The supervised backend
            # already streamed puts as trials completed; re-putting here
            # is a cheap byte-compare no-op that also covers the serial
            # and raw-pool paths.
            for spec in pending:
                done = outcomes.get(spec.key)
                if done is not None and done.ok:
                    self.store.put(fingerprints[spec.key], spec.key, done.record)
        return [outcomes[spec.key] for spec in specs]

    # ------------------------------------------------------------------
    def _run_one(self, spec: TrialSpec) -> TrialOutcome:
        try:
            with trial_watchdog(self.trial_timeout_s):
                record = resolve_trial_fn(spec.fn)(spec.params)
        except Exception as exc:  # KeyboardInterrupt still aborts.
            reason = f"{type(exc).__name__}: {exc}"
            tb = format_trial_traceback(exc)
            taxonomy = "timeout" if isinstance(exc, TrialTimeout) else "exception"
            if self.journal is not None:
                self.journal.record_failure(
                    spec.key, reason, traceback=tb, taxonomy=taxonomy
                )
            return TrialOutcome(
                spec.key, None, error=reason, traceback=tb, taxonomy=taxonomy
            )
        if self.journal is not None:
            self.journal.record(spec.key, record)
        return TrialOutcome(spec.key, record)

    def _run_supervised(
        self,
        pending: list[TrialSpec],
        outcomes: dict[str, TrialOutcome],
        fingerprints: Optional[dict] = None,
    ) -> None:
        from repro.experiments.supervisor import Supervisor

        sup = Supervisor(
            jobs=self.jobs,
            journal=self.journal,
            trial_timeout_s=self.trial_timeout_s,
            config=self._supervisor_config(),
            store=self.store,
            fingerprints=fingerprints,
        )
        try:
            outcomes.update(sup.run(pending))
        finally:
            self.stats = sup.stats

    def _run_pool(
        self, pending: list[TrialSpec], outcomes: dict[str, TrialOutcome]
    ) -> None:
        journal_root = self.journal.root if self.journal is not None else None
        ctx = None
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)), mp_context=ctx
        ) as pool:
            futures = [
                (spec, pool.submit(_execute_trial, spec, self.trial_timeout_s, journal_root))
                for spec in pending
            ]
            for spec, future in futures:
                try:
                    key, record, error, tb, taxonomy = future.result()
                except Exception as exc:
                    # The worker process itself died (BrokenProcessPool);
                    # the trial never journaled, so record it here.  The
                    # raw pool cannot retry — that is the supervised
                    # backend's job.
                    key, record, error, tb, taxonomy = (
                        spec.key, None, f"{type(exc).__name__}: {exc}", None, "crash",
                    )
                    if self.journal is not None:
                        self.journal.record_failure(key, error, taxonomy=taxonomy)
                outcomes[key] = TrialOutcome(
                    key, record, error=error, traceback=tb, taxonomy=taxonomy
                )
        if self.journal is not None:
            self.journal.merge_shards()
