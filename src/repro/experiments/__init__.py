"""Experiment runners: one per paper table/figure (see DESIGN.md §3).

Each runner is a pure function from (parameters, seed) to a result
dataclass with the series the paper plots, plus a ``format_*`` helper that
renders the same rows as an aligned text table (no plotting libraries in
this environment).  The CLI (``repro-experiments``) and the benchmark
suite both call these runners.

Execution goes through :mod:`repro.experiments.runner`: campaigns build
declarative :class:`TrialSpec` lists and a :class:`TrialRunner` executes
them — serially or across ``--jobs N`` worker processes — with journal
resume and per-trial watchdogs applied uniformly.  Parallel and serial
runs are bit-identical by construction.

Scale note: sweeps at paper processor counts (128–1728 CPUs) run on the
vectorised :mod:`repro.analytic` model; mechanism-level experiments
(Fig 4 attribution, ALE3D I/O, timer threads, Fig 1 overlap) run on the
discrete-event simulator at reduced scale, stating any time compression
they apply.
"""

from repro.experiments.runner import TrialOutcome, TrialRunner, TrialSpec
from repro.experiments.common import (
    PROTO16,
    Scenario,
    SweepResult,
    VANILLA15,
    VANILLA16,
    allreduce_sweep,
    allreduce_trial_specs,
    make_config,
)
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig6 import Fig6Result, run_fig3, run_fig5, run_fig6, run_tpn15
from repro.experiments.speedup import SpeedupResult, run_speedup154
from repro.experiments.timer_threads import TimerThreadsResult, run_timer_threads
from repro.experiments.ale3d_io import Ale3dIoResult, run_ale3d_io
from repro.experiments.ablation import AblationResult, run_ablation
from repro.experiments.resilience import ResilienceResult, run_resilience
from repro.experiments.policyzoo import PolicyZooResult, run_policyzoo
from repro.experiments.e14_meanfield import E14Result, run_e14
from repro.experiments.pdes import PdesResult, run_pdes

__all__ = [
    "Scenario",
    "SweepResult",
    "TrialOutcome",
    "TrialRunner",
    "TrialSpec",
    "allreduce_trial_specs",
    "VANILLA16",
    "VANILLA15",
    "PROTO16",
    "make_config",
    "allreduce_sweep",
    "Fig1Result",
    "run_fig1",
    "Fig4Result",
    "run_fig4",
    "Fig6Result",
    "run_fig3",
    "run_fig5",
    "run_fig6",
    "run_tpn15",
    "SpeedupResult",
    "run_speedup154",
    "TimerThreadsResult",
    "run_timer_threads",
    "Ale3dIoResult",
    "run_ale3d_io",
    "AblationResult",
    "run_ablation",
    "ResilienceResult",
    "run_resilience",
    "PolicyZooResult",
    "run_policyzoo",
    "E14Result",
    "run_e14",
    "PdesResult",
    "run_pdes",
]
