"""Command-line entry point: regenerate any paper figure/table.

::

    repro-experiments fig1 fig3 fig4 fig5 fig6 tpn15 speedup timers ale3d ablation
    repro-experiments extensions          # E1-E6
    repro-experiments all --quick
    repro-experiments fig6 --jobs 4       # trials across 4 worker processes
    repro-experiments fig3 fig6 --csv results/   # also dump CSV series
    repro-experiments fig6 --results results/run1         # JSON + journal
    repro-experiments fig6 --results results/run1 --resume  # skip done trials
    repro-experiments e9 --quick          # crash/restart round-trip check
    repro-experiments chaos --quick --seeds 8 --jobs 2   # fault fuzzing
    repro-experiments chaos --quick --policy quantum     # pin the campaign
    repro-experiments chaos --quick --seeds 4 --shards 2 # sharded-vs-serial digests
    repro-experiments chaos --quick --shards 2 --harness-chaos 7  # + worker kills
    repro-experiments resilience --shards 2              # E8 under parallel DES
    repro-experiments policy --quick --jobs 4            # E13 policy ablation
    repro-experiments policy --policy aix --policy fair  # subset of the zoo

Parallelism: ``--jobs N`` fans the independent (scenario, count, seed)
trials of every campaign out over N worker processes via
:class:`repro.experiments.runner.TrialRunner`.  Results and journals are
bit-identical to a serial run — trials are pure functions of their specs
and outcomes merge in spec order — so ``--jobs`` is purely a wall-clock
lever.

Crash safety: with ``--results DIR`` every sweep journals each finished
(count, seed) trial under ``DIR/journal/`` (worker processes write
per-process shards, merged on read); after a crash (or kill -9),
re-running with ``--resume`` skips completed trials and recomputes only
the rest — bit-identically.  Without ``--resume`` the journal is cleared
for fresh-run semantics.  ``--trial-timeout`` bounds each trial's
wall-clock time; wedged trials are recorded as explicit holes and the
campaign continues.

Fault tolerance: ``--jobs N`` runs on the *supervised* backend
(:mod:`repro.experiments.supervisor`) — heartbeating workers, crash/hang
detection, ``--max-retries`` re-dispatches with ``--backoff``
exponential delay, quarantine of poison trials, and graceful
SIGINT/SIGTERM drain (in-flight trials finish, journal shards merge, no
orphaned workers; exit code 130 with a resumable journal).
``--harness-chaos SEED`` deliberately kills/hangs workers on a
deterministic schedule to prove all of that: the run must still converge
to results byte-identical to a clean serial run.  ``--backend pool``
selects the legacy unsupervised pool for comparison.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time

from repro.experiments import (
    run_ablation,
    run_ale3d_io,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_speedup154,
    run_timer_threads,
    run_tpn15,
)
from repro.experiments.ablation import format_ablation
from repro.experiments.ale3d_io import format_ale3d_io
from repro.experiments.extensions import (
    format_fine_grain,
    format_hw_collectives,
    format_misalignment,
    format_multijob,
    run_fine_grain,
    run_hw_collectives,
    run_misalignment,
    run_multijob,
)
from repro.experiments.resilience import format_resilience, run_resilience
from repro.experiments.workloads import (
    format_granularity,
    format_sensitivity,
    format_waitmode,
    run_granularity,
    run_sensitivity,
    run_waitmode,
)
from repro.experiments.fig1 import format_fig1
from repro.experiments.fig4 import format_fig4
from repro.experiments.fig6 import format_fig6, format_sweep
from repro.experiments.speedup import format_speedup
from repro.experiments.timer_threads import format_timer_threads

__all__ = ["main"]


def _quick_kwargs(quick: bool) -> dict:
    if not quick:
        return {}
    return {"n_calls": 150, "n_seeds": 2, "proc_counts": (128, 512, 944, 1728)}


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the requested experiments, print reports."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "store":
        # Store operations (fsck/gc/stats/chaos) live in their own CLI;
        # delegate so one entry point both fills and maintains the store.
        from repro.store.cli import main as store_main

        return store_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and text results (see DESIGN.md).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[
            "fig1", "fig3", "fig4", "fig5", "fig6",
            "tpn15", "speedup", "timers", "ale3d", "ablation",
            "multijob", "hw", "finegrain", "misalign", "resilience",
            "waitmode", "sensitivity", "granularity", "validate", "e9",
            "chaos", "policy", "e14", "pdes", "all", "extensions",
        ],
    )
    parser.add_argument("--quick", action="store_true", help="smaller sweeps for a fast pass")
    parser.add_argument("--csv", metavar="DIR", help="also write CSV series to DIR")
    parser.add_argument(
        "--results", metavar="DIR",
        help="results directory: JSON result files plus the per-trial journal",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --results: skip trials already journaled (crash recovery)",
    )
    parser.add_argument(
        "--trial-timeout", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget per sweep trial; timed-out trials become "
             "recorded holes instead of hanging the campaign",
    )
    parser.add_argument(
        "--jobs", type=int, metavar="N", default=1,
        help="run independent trials across N worker processes "
             "(default: 1, serial); results are bit-identical either way",
    )
    store_group = parser.add_argument_group("result store (cross-run memoization)")
    store_group.add_argument(
        "--store", metavar="DIR", default=None,
        help="content-addressed result store: trials whose (spec, code "
             "version) fingerprint is already stored are served from it "
             "without executing, and every executed result is written "
             "back (checksummed, atomic); a fully warm rerun executes "
             "zero trials and is byte-identical. "
             "See also the 'store fsck|gc|stats|chaos' subcommands.",
    )
    store_group.add_argument(
        "--no-cache", action="store_true",
        help="with --store: recompute every trial instead of reading the "
             "store, but still write results back — re-putting a result "
             "that disagrees with a stored one fails loudly "
             "(cross-run determinism check)",
    )
    sup_group = parser.add_argument_group("supervised backend (--jobs N)")
    sup_group.add_argument(
        "--backend", choices=("supervised", "pool"), default="supervised",
        help="parallel backend: 'supervised' (fault-tolerant worker pool "
             "with heartbeats/retries/quarantine, the default) or 'pool' "
             "(legacy raw ProcessPoolExecutor)",
    )
    sup_group.add_argument(
        "--max-retries", type=int, metavar="N", default=3,
        help="re-dispatches allowed per trial after a worker crash/hang "
             "before the trial is quarantined (default: 3)",
    )
    sup_group.add_argument(
        "--backoff", type=float, metavar="SECONDS", default=0.1,
        help="base of the deterministic exponential backoff between "
             "re-dispatches: BACKOFF * 2^attempt, capped at 5 s "
             "(default: 0.1)",
    )
    _env_chaos = os.environ.get("REPRO_HARNESS_CHAOS", "").strip()
    sup_group.add_argument(
        "--harness-chaos", type=int, metavar="SEED",
        default=int(_env_chaos) if _env_chaos else None,
        help="inject deterministic worker kills/hangs drawn from SEED "
             "(env: REPRO_HARNESS_CHAOS); the campaign must still "
             "converge byte-identically to a clean serial run",
    )
    chaos_group = parser.add_argument_group("chaos campaign (E10)")
    chaos_group.add_argument(
        "--seeds", type=int, metavar="N", default=32,
        help="chaos: number of random fault schedules to judge (default: 32)",
    )
    chaos_group.add_argument(
        "--seed-base", type=int, metavar="S", default=0,
        help="chaos: first schedule seed (campaign covers S .. S+N-1)",
    )
    chaos_group.add_argument(
        "--no-shrink", action="store_true",
        help="chaos: report failures without ddmin-minimizing them",
    )
    chaos_group.add_argument(
        "--shrink-budget", type=int, metavar="N", default=60,
        help="chaos: max oracle evaluations per shrink (default: 60)",
    )
    chaos_group.add_argument(
        "--corpus-out", metavar="DIR",
        help="chaos: write minimized failing schedules to DIR as corpus JSON",
    )
    pdes_group = parser.add_argument_group("parallel DES (pdes / chaos / resilience)")
    pdes_group.add_argument(
        "--shards", type=int, metavar="N", default=None,
        help="partition the cluster's nodes across N shard processes "
             "synchronized by conservative null-message windows "
             "(default: serial); the result digest is shard-count "
             "invariant by construction.  'pdes': run sharded; 'chaos': "
             "judge every seed by sharded-vs-serial digest equality; "
             "'resilience': run the whole E8 suite under parallelism",
    )
    pdes_group.add_argument(
        "--meanfield", type=int, metavar="B", default=0,
        help="pdes: batch B daemon activations per wakeup on untraced "
             "nodes (0/1: exact); accuracy cost is published by 'e14'",
    )
    pdes_group.add_argument(
        "--digest-out", metavar="PATH",
        help="pdes: write the run's result digest to PATH (one hex line; "
             "CI byte-compares these across shard counts)",
    )
    policy_group = parser.add_argument_group("dispatch policy (E13 / chaos)")
    policy_group.add_argument(
        "--policy", metavar="NAME", action="append", default=None,
        help="dispatch policy from the repro.kernel.policy zoo (repeatable)."
             " 'policy': restrict the ablation grid to these;"
             " 'chaos': pin every schedule to the (single) given policy"
             " instead of letting the chaos.policy axis draw one",
    )
    args = parser.parse_args(argv)
    if args.policy:
        from repro.kernel.policy import policy_names

        known = policy_names()
        for name in args.policy:
            if name not in known:
                parser.error(f"--policy {name!r}: not registered; known: {known}")
        if "chaos" in args.experiments and len(args.policy) > 1:
            parser.error("chaos accepts a single --policy to pin the campaign to")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.meanfield < 0:
        parser.error("--meanfield must be >= 0")
    if args.no_cache and not args.store:
        parser.error("--no-cache requires --store DIR (there is no cache to skip)")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.backoff < 0:
        parser.error("--backoff must be >= 0")
    if args.harness_chaos is not None and (
        args.jobs < 2 or args.backend != "supervised"
    ) and not (
        args.shards is not None
        and args.shards >= 1
        and any(e in ("chaos", "pdes") for e in args.experiments)
    ):
        parser.error(
            "--harness-chaos needs --jobs >= 2 on the supervised backend "
            "(only it can retry killed workers), or --shards with the "
            "chaos/pdes experiments (where it SIGKILLs shard workers and "
            "the parallel-DES supervisor must recover them)"
        )

    journal = None
    if args.results:
        from repro.checkpoint import SweepJournal

        journal = SweepJournal(args.results)
        if not args.resume:
            journal.clear()
    elif args.resume:
        parser.error("--resume requires --results DIR (the journal to resume from)")

    def csv_out(name: str, headers, rows) -> None:
        if not args.csv:
            return
        from repro.experiments.reporting import write_csv

        os.makedirs(args.csv, exist_ok=True)
        path = os.path.join(args.csv, f"{name}.csv")
        write_csv(path, headers, rows)
        print(f"[csv: {path}]")

    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = ["fig1", "fig3", "fig4", "fig5", "fig6", "tpn15",
                  "speedup", "timers", "ale3d", "ablation",
                  "multijob", "hw", "finegrain", "misalign", "resilience",
                  "waitmode", "sensitivity", "granularity", "e9"]
    elif "extensions" in wanted:
        wanted = ["multijob", "hw", "finegrain", "misalign", "resilience",
                  "waitmode", "sensitivity", "granularity"]

    def save_json(name: str, result) -> None:
        """Archive one experiment's result dataclass (atomic write)."""
        if not args.results:
            return
        from repro.results import save_result

        os.makedirs(args.results, exist_ok=True)
        path = os.path.join(args.results, f"{name}.json")
        save_result(path, result)
        print(f"[json: {path}]")

    qa = _quick_kwargs(args.quick)
    harness = {
        "journal": journal,
        "trial_timeout_s": args.trial_timeout,
        "jobs": args.jobs,
    }

    # Route supervisor policy (backend, retry budget, backoff, harness
    # chaos) to every campaign's internally-built TrialRunner, and make
    # journal-merge warnings / supervisor summaries visible on stderr.
    from repro.experiments.runner import set_execution_defaults
    from repro.experiments.supervisor import SupervisorConfig

    logging.basicConfig(
        level=logging.INFO, format="[%(name)s] %(message)s", stream=sys.stderr
    )
    store = None
    if args.store:
        from repro.store import ResultStore

        store = ResultStore(args.store)

    previous_defaults = set_execution_defaults(
        backend=args.backend,
        supervisor=SupervisorConfig(
            max_retries=args.max_retries,
            backoff_base_s=args.backoff,
            chaos_seed=args.harness_chaos,
        ),
        store=store,
        use_cache=not args.no_cache,
    )
    try:
        rc = _run_selected(wanted, args, qa, harness, csv_out, save_json)
        if store is not None:
            print(
                f"[store: hits={store.hits} misses={store.misses} puts={store.puts}]"
            )
        return rc
    except KeyboardInterrupt:
        print(
            "\ninterrupted: workers drained and terminated, journal flushed"
            + (
                f" — resume with --results {args.results} --resume"
                if args.results
                else " (pass --results DIR next time for a resumable journal)"
            )
        )
        return 130
    finally:
        set_execution_defaults(
            backend=previous_defaults[0],
            supervisor=previous_defaults[1],
            store=previous_defaults[2],
            use_cache=previous_defaults[3],
        )


def _run_selected(wanted, args, qa, harness, csv_out, save_json) -> int:
    """Run the selected experiments in order (the body of :func:`main`)."""
    for name in wanted:
        t0 = time.time()
        print(f"=== {name} " + "=" * (60 - len(name)))
        sweep_headers = ("procs", "mean_us", "run_std_us", "call_std_us")
        if name == "fig1":
            print(format_fig1(run_fig1()))
        elif name == "fig3":
            res = run_fig3(**qa, **harness)
            print(format_sweep(res, "Figure 3: vanilla kernel, 16 tasks/node"))
            csv_out("fig3", sweep_headers, res.rows())
            save_json("fig3", res)
        elif name == "fig4":
            res = run_fig4()
            print(format_fig4(res))
            csv_out(
                "fig4",
                ("index", "sorted_allreduce_us"),
                enumerate(res.sorted_durations_us),
            )
        elif name == "fig5":
            res = run_fig5(**qa, **harness)
            print(format_sweep(res, "Figure 5: prototype kernel + co-scheduler"))
            csv_out("fig5", sweep_headers, res.rows())
            save_json("fig5", res)
        elif name == "fig6":
            res = run_fig6(**qa, **harness)
            print(format_fig6(res))
            csv_out(
                "fig6",
                ("procs", "vanilla_us", "prototype_us"),
                zip(res.vanilla.proc_counts, res.vanilla.mean_us, res.prototype.mean_us),
            )
            save_json("fig6_vanilla", res.vanilla)
            save_json("fig6_prototype", res.prototype)
        elif name == "tpn15":
            res = run_tpn15(**qa, **harness)
            print(format_sweep(res, "T1: vanilla kernel, 15 tasks/node"))
            csv_out("tpn15", sweep_headers, res.rows())
            save_json("tpn15", res)
        elif name == "speedup":
            print(format_speedup(run_speedup154(**harness)))
        elif name == "timers":
            print(format_timer_threads(run_timer_threads()))
        elif name == "ale3d":
            print(format_ale3d_io(run_ale3d_io()))
        elif name == "ablation":
            print(format_ablation(run_ablation(**harness)))
        elif name == "multijob":
            print(format_multijob(run_multijob()))
        elif name == "hw":
            print(format_hw_collectives(run_hw_collectives()))
        elif name == "finegrain":
            print(format_fine_grain(run_fine_grain()))
        elif name == "misalign":
            print(format_misalignment(run_misalignment()))
        elif name == "resilience":
            rqa = {"n_ranks": 16, "calls": 1000} if args.quick else {}
            if args.shards is not None:
                rqa["shards"] = args.shards
            res = run_resilience(**rqa, **harness)
            print(format_resilience(res))
            save_json("resilience", res)
        elif name == "e9":
            from repro.experiments.e9_resume import format_e9, run_e9

            res = run_e9(
                quick=args.quick,
                workdir=os.path.join(args.results, "e9") if args.results else None,
            )
            print(format_e9(res))
            save_json("e9", res)
            if not (res.fingerprint_match and res.journal_match):
                return 1
        elif name == "waitmode":
            print(format_waitmode(run_waitmode()))
        elif name == "sensitivity":
            print(format_sensitivity(run_sensitivity()))
        elif name == "granularity":
            res = run_granularity()
            print(format_granularity(res))
            csv_out(
                "granularity",
                ("compute_us", "vanilla_eff", "prototype_eff"),
                zip(res.compute_us, res.vanilla_efficiency, res.prototype_efficiency),
            )
        elif name == "chaos":
            from repro.chaos import format_chaos, run_chaos

            res = run_chaos(
                seeds=args.seeds,
                seed_base=args.seed_base,
                quick=args.quick,
                shrink=not args.no_shrink,
                shrink_budget=args.shrink_budget,
                corpus_out=args.corpus_out,
                policy=args.policy[0] if args.policy else None,
                shards=args.shards,
                shard_chaos=(
                    args.harness_chaos if args.shards is not None else None
                ),
                **harness,
            )
            print(format_chaos(res))
            if res.failures:
                return 1
        elif name == "policy":
            from repro.experiments.policyzoo import format_policyzoo, run_policyzoo

            res = run_policyzoo(
                policies=args.policy, quick=args.quick, **harness
            )
            print(format_policyzoo(res))
            csv_out(
                "policyzoo",
                ("policy", "n_ranks", "mean_us", "median_us", "max_us", "slowdown"),
                [
                    (p, n, res.mean_us[p][i], res.median_us[p][i],
                     res.max_us[p][i], res.mean_us[p][i] / res.reference_us[i])
                    for p in res.policies
                    for i, n in enumerate(res.sizes)
                ],
            )
            save_json("policyzoo", res)
            if not all(all(v) for v in res.values_ok.values()):
                return 1
        elif name == "e14":
            from repro.experiments.e14_meanfield import format_e14, run_e14

            res = run_e14(quick=args.quick)
            print(format_e14(res))
            csv_out(
                "e14",
                ("batch", "events", "event_reduction", "wall_speedup",
                 "elapsed_dev_pct", "mean_dev_pct",
                 "curve_err_p50_pct", "curve_err_p90_pct", "curve_err_max_abs_us"),
                [
                    (res.batches[i], res.events[i], res.event_reduction[i],
                     res.wall_speedup[i], res.elapsed_dev_pct[i],
                     res.mean_dev_pct[i], res.curve_err_p50_pct[i],
                     res.curve_err_p90_pct[i], res.curve_err_max_abs_us[i])
                    for i in range(len(res.batches))
                ],
            )
            save_json("e14", res)
            if not res.oracle_ok:
                return 1
        elif name == "pdes":
            from repro.experiments.pdes import format_pdes, run_pdes

            res = run_pdes(
                shards=args.shards or 1,
                quick=args.quick,
                meanfield_batch=args.meanfield,
                shard_chaos_seed=(
                    args.harness_chaos if args.shards is not None else None
                ),
            )
            print(format_pdes(res))
            save_json("pdes", res)
            if args.digest_out:
                d = os.path.dirname(args.digest_out)
                if d:
                    os.makedirs(d, exist_ok=True)
                with open(args.digest_out, "w", encoding="utf-8") as fh:
                    fh.write(res.digest + "\n")
                print(f"[digest: {args.digest_out}]")
            if not res.ok:
                return 1
        elif name == "validate":
            from repro.experiments.validate import format_validation, run_validation

            checks = run_validation(jobs=args.jobs)
            print(format_validation(checks))
            if any(not c.passed for c in checks):
                return 1
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
