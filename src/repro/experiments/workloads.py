"""Workload-shape experiments: E5 wait-mode tradeoff, E6 noise sensitivity.

* **E5 waitmode** — MP_WAIT_MODE poll vs block.  Polling holds the CPU
  (fast completion, exposed to preemption by daemons); blocking frees it
  (daemons execute in the gaps for free) but pays syscall + interrupt +
  wakeup on *every* message.  Quiet machines favour poll; heavily noisy,
  fully-populated nodes can favour block — the tradeoff behind IBM's
  default and the paper's co-scheduling being worth building at all.
* **E6 sensitivity** — Allreduce-dominated vs wavefront-pipelined
  workloads under identical noise.  The collective-heavy code amplifies
  interference (one laggard blocks everyone at every call); the wavefront
  absorbs part of it in pipeline slack — so parallel-aware scheduling
  buys most where the paper's applications live.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.apps.sweep import SweepConfig, run_sweep
from repro.config import (
    ClusterConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NoiseConfig,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.reporting import text_table
from repro.system import System
from repro.units import s


def _config(n_ranks: int, tpn: int, noise, mpi: MpiConfig, seed: int) -> ClusterConfig:
    return ClusterConfig(
        machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
        kernel=KernelConfig(),
        mpi=mpi,
        noise=noise if noise is not None else NoiseConfig(),
        seed=seed,
    )

__all__ = [
    "WaitModeResult",
    "run_waitmode",
    "format_waitmode",
    "SensitivityResult",
    "run_sensitivity",
    "format_sensitivity",
    "GranularityResult",
    "run_granularity",
    "format_granularity",
]


# ======================================================================
# E5: MP_WAIT_MODE poll vs block
# ======================================================================
@dataclass
class WaitModeResult:
    quiet_poll_us: float
    quiet_block_us: float
    noisy_poll_us: float
    noisy_block_us: float
    n_ranks: int
    time_compression: float

    @property
    def quiet_poll_advantage(self) -> float:
        return self.quiet_block_us / self.quiet_poll_us

    @property
    def noisy_block_advantage(self) -> float:
        return self.noisy_poll_us / self.noisy_block_us


def run_waitmode(
    n_ranks: int = 32,
    tpn: int = 16,
    calls: int = 300,
    seed: int = 31,
    time_compression: float = 60.0,
) -> WaitModeResult:
    """Run the 2x2 poll/block x quiet/noisy comparison."""
    noisy = scale_noise(standard_noise(include_cron=False), time_compression)
    results = {}
    for noise_label, noise in (("quiet", None), ("noisy", noisy)):
        for mode in ("poll", "block"):
            cfg = _config(
                n_ranks, tpn, noise,
                MpiConfig(progress_threads_enabled=False, wait_mode=mode),
                seed,
            )
            system = System(cfg)
            res = run_aggregate_trace(
                system, n_ranks, tpn,
                AggregateTraceConfig(calls_per_loop=calls, compute_between_us=200.0),
            )
            results[(noise_label, mode)] = res.mean_us
    return WaitModeResult(
        quiet_poll_us=results[("quiet", "poll")],
        quiet_block_us=results[("quiet", "block")],
        noisy_poll_us=results[("noisy", "poll")],
        noisy_block_us=results[("noisy", "block")],
        n_ranks=n_ranks,
        time_compression=time_compression,
    )


def format_waitmode(res: WaitModeResult) -> str:
    """Render the E5 table and advantage lines."""
    rows = [
        ("quiet machine", res.quiet_poll_us, res.quiet_block_us),
        (f"noisy machine ({res.time_compression:.0f}x compressed)",
         res.noisy_poll_us, res.noisy_block_us),
    ]
    table = text_table(
        ["environment", "poll_us", "block_us"],
        rows,
        title=f"E5: MP_WAIT_MODE on {res.n_ranks} fully-populated ranks",
    )
    return table + (
        f"poll advantage when quiet : {res.quiet_poll_advantage:.2f}x\n"
        f"block advantage when noisy: {res.noisy_block_advantage:.2f}x\n"
    )


# ======================================================================
# E6: workload noise sensitivity
# ======================================================================
@dataclass
class SensitivityResult:
    collective_quiet_us: float
    collective_noisy_us: float
    wavefront_quiet_us: float
    wavefront_noisy_us: float
    n_ranks: int
    time_compression: float

    @property
    def collective_slowdown(self) -> float:
        return self.collective_noisy_us / self.collective_quiet_us

    @property
    def wavefront_slowdown(self) -> float:
        return self.wavefront_noisy_us / self.wavefront_quiet_us


def run_sensitivity(
    n_ranks: int = 32,
    tpn: int = 16,
    seed: int = 37,
    time_compression: float = 60.0,
) -> SensitivityResult:
    """Run collective-heavy vs wavefront workloads under identical noise."""
    noisy = scale_noise(standard_noise(include_cron=False), time_compression)

    def build(noise):
        return System(
            _config(n_ranks, tpn, noise, MpiConfig(progress_threads_enabled=False), seed)
        )

    atc = AggregateTraceConfig(calls_per_loop=400, compute_between_us=200.0)
    swc = SweepConfig(sweeps=12, planes=12)

    coll_q = run_aggregate_trace(build(NoiseConfig()), n_ranks, tpn, atc).elapsed_us
    coll_n = run_aggregate_trace(build(noisy), n_ranks, tpn, atc).elapsed_us
    wave_q = run_sweep(build(NoiseConfig()), n_ranks, tpn, swc).elapsed_us
    wave_n = run_sweep(build(noisy), n_ranks, tpn, swc).elapsed_us
    return SensitivityResult(coll_q, coll_n, wave_q, wave_n, n_ranks, time_compression)


# ======================================================================
# E7: granularity — how cycle length gates the damage (paper §2)
# ======================================================================
@dataclass
class GranularityResult:
    """Bulk-synchronous efficiency vs computation-phase length.

    Paper §2: "The importance of these collective synchronizing operations
    is dependent on the duration of computation and communication periods.
    Typical cycles last anywhere from a few milliseconds to many seconds."
    Short cycles synchronise constantly and feel every interruption; long
    cycles amortise them.
    """

    compute_us: np.ndarray
    vanilla_efficiency: np.ndarray
    prototype_efficiency: np.ndarray
    n_ranks: int


def run_granularity(
    n_ranks: int = 944,
    compute_grid=(500.0, 2_000.0, 8_000.0, 32_000.0, 128_000.0),
    n_calls: int = 200,
    seed: int = 41,
) -> GranularityResult:
    """Model one Allreduce per cycle of varying compute length; efficiency
    is ideal cycle time over measured cycle time."""
    from repro.analytic.model import AllreduceSeriesModel
    from repro.config import NoiseConfig
    from repro.experiments.common import PROTO16, VANILLA16, make_config

    # Zero-noise baseline for the ideal collective cost.
    quiet = make_config(VANILLA16, n_ranks, seed=seed).replace(
        noise=NoiseConfig(), mpi=MpiConfig.with_long_polling()
    )
    base = AllreduceSeriesModel(quiet, n_ranks, 16, seed=seed).run_series(30).mean_us

    out = {}
    for scenario in (VANILLA16, PROTO16):
        effs = []
        for g in compute_grid:
            cfg = make_config(scenario, n_ranks, seed=seed)
            model = AllreduceSeriesModel(cfg, n_ranks, scenario.tasks_per_node, seed=seed + int(g))
            measured = model.run_series(n_calls, compute_between_us=g).mean_us
            effs.append((g + base) / (g + measured))
        out[scenario.name] = np.asarray(effs)
    return GranularityResult(
        np.asarray(compute_grid), out["vanilla16"], out["proto16"], n_ranks
    )


def format_granularity(res: GranularityResult) -> str:
    """Render the E7 efficiency table."""
    rows = [
        (f"{g / 1e3:.1f}", float(v), float(p))
        for g, v, p in zip(res.compute_us, res.vanilla_efficiency, res.prototype_efficiency)
    ]
    table = text_table(
        ["cycle compute (ms)", "vanilla eff.", "prototype eff."],
        rows,
        title=f"E7: BSP efficiency vs granularity at {res.n_ranks} ranks (1 Allreduce/cycle)",
        floatfmt="{:.3f}",
    )
    return table + (
        "Fine-grain cycles feel every interruption; co-scheduling recovers\n"
        "most of the loss exactly where the paper's applications live.\n"
    )


def format_sensitivity(res: SensitivityResult) -> str:
    """Render the E6 table."""
    rows = [
        ("allreduce-dominated (aggregate)", res.collective_quiet_us / 1e3,
         res.collective_noisy_us / 1e3, res.collective_slowdown),
        ("wavefront-pipelined (sweep)", res.wavefront_quiet_us / 1e3,
         res.wavefront_noisy_us / 1e3, res.wavefront_slowdown),
    ]
    table = text_table(
        ["workload", "quiet_ms", "noisy_ms", "slowdown"],
        rows,
        title=(
            f"E6: noise sensitivity by communication shape, {res.n_ranks} ranks "
            f"(noise compressed {res.time_compression:.0f}x)"
        ),
        floatfmt="{:.2f}",
    )
    return table + (
        "Synchronising collectives amplify interference; pipelined\n"
        "wavefronts absorb part of it — the paper's co-scheduling matters\n"
        "most at the collective-heavy end.\n"
    )
