"""Extension experiments: beyond the paper's tables (DESIGN.md §4, paper §7).

* **E1 multijob** — two fine-grain jobs co-located on one machine:
  uncoordinated timesharing vs gang scheduling (the related-work baseline
  of §6, category 1).  Shows why dedicated-usage centers care about
  coordination at *some* granularity, and why the paper still needed
  finer-than-gang treatment for the single-job case.
* **E2 hw_collectives** — the paper's §7 "hardware assisted collectives"
  future-work item: switch-combined Allreduce vs the software tree under
  the same noise, at paper scale.
* **E3 fine_grain** — §7's "mechanism for parallel applications to
  establish when they are entering and exiting fine-grain regions":
  region-scoped boosting avoids the ALE3D I/O starvation *without* the
  per-daemon priority tuning of T4.
* **E4 misalignment** — why the switch-clock synchronisation matters (and
  why "NTP must be turned off"): the same co-scheduler with unsynchronised
  node clocks loses most of its benefit because the favored windows no
  longer coincide across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytic.model import AllreduceSeriesModel
from repro.apps.aggregate_trace import AggregateTraceConfig, aggregate_trace_body
from repro.apps.ale3d import Ale3dConfig, run_ale3d
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
)
from repro.cosched.gang import GangConfig, GangScheduler
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import PROTO16, VANILLA16, make_config
from repro.experiments.reporting import text_table
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.system import System
from repro.units import ms, s

__all__ = [
    "MultijobResult",
    "run_multijob",
    "format_multijob",
    "HwCollectivesResult",
    "run_hw_collectives",
    "format_hw_collectives",
    "FineGrainResult",
    "run_fine_grain",
    "format_fine_grain",
    "MisalignmentResult",
    "run_misalignment",
    "format_misalignment",
]


# ======================================================================
# E1: multi-job — uncoordinated timesharing vs gang scheduling
# ======================================================================
@dataclass
class MultijobResult:
    """Three coordination regimes over the same co-located job pair:
    none, demand-based (message-driven boosting, the NOW lineage), and
    gang (slotted, the dedicated-center lineage)."""

    uncoordinated_allreduce_us: float
    demand_allreduce_us: float
    gang_allreduce_us: float
    uncoordinated_makespan_us: float
    demand_makespan_us: float
    gang_makespan_us: float
    #: Gap between the two jobs' finish times — the fairness axis on which
    #: the regimes differ (demand-based boosting converges to de-facto
    #: serial batching: superb per-op latency, worst-case turnaround for
    #: whoever loses the race; gang slots share the machine evenly).
    uncoordinated_finish_spread_us: float
    demand_finish_spread_us: float
    gang_finish_spread_us: float
    n_ranks_per_job: int
    slot_us: float

    @property
    def per_op_improvement(self) -> float:
        return self.uncoordinated_allreduce_us / self.gang_allreduce_us

    @property
    def demand_improvement(self) -> float:
        return self.uncoordinated_allreduce_us / self.demand_allreduce_us


def _run_pair(cluster: Cluster, n_ranks: int, tpn: int, calls: int, mode: str, slot_us: float):
    """Launch two identical Allreduce jobs sharing the same CPUs under the
    given coordination regime ('none' | 'demand' | 'gang')."""
    from repro.cosched.demand import DemandConfig, DemandCoscheduler

    sinks = []
    jobs = []
    placement = cluster.place(n_ranks, tpn)
    for j in range(2):
        sink: dict = {}
        sinks.append(sink)
        body = aggregate_trace_body(
            AggregateTraceConfig(calls_per_loop=calls, compute_between_us=200.0),
            sink,
            node0_ranks=set(),
        )
        jobs.append(
            MpiJob(cluster, placement, body, config=cluster.config.mpi, name=f"job{j}")
        )
    if mode == "gang":
        GangScheduler(cluster, jobs, GangConfig(slot_us=slot_us))
    elif mode == "demand":
        for job in jobs:
            DemandCoscheduler(cluster, job, DemandConfig())
    horizon = s(600)
    sim = cluster.sim
    while not all(job.done for job in jobs) and sim.now < horizon:
        sim.run_until(min(horizon, sim.now + s(1)))
    if not all(job.done for job in jobs):
        raise RuntimeError("co-located jobs did not finish")
    means = [float(np.mean(sink[0][0])) for sink in sinks]
    finishes = [job.finish_time for job in jobs]
    return float(np.mean(means)), max(finishes), max(finishes) - min(finishes)


def run_multijob(
    n_ranks: int = 16,
    tpn: int = 8,
    calls: int = 200,
    slot_us: float = ms(200),
    seed: int = 17,
) -> MultijobResult:
    """Run the co-located pair under none / demand / gang coordination."""
    def fresh_cluster():
        return Cluster(
            ClusterConfig(
                machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
                mpi=MpiConfig(progress_threads_enabled=False),
                kernel=KernelConfig(),
                seed=seed,
            )
        )

    un_mean, un_makespan, un_spread = _run_pair(fresh_cluster(), n_ranks, tpn, calls, "none", slot_us)
    d_mean, d_makespan, d_spread = _run_pair(fresh_cluster(), n_ranks, tpn, calls, "demand", slot_us)
    g_mean, g_makespan, g_spread = _run_pair(fresh_cluster(), n_ranks, tpn, calls, "gang", slot_us)
    return MultijobResult(
        un_mean, d_mean, g_mean,
        un_makespan, d_makespan, g_makespan,
        un_spread, d_spread, g_spread,
        n_ranks, slot_us,
    )


def format_multijob(res: MultijobResult) -> str:
    """Render the E1 three-regime table."""
    rows = [
        ("uncoordinated timeshare", res.uncoordinated_allreduce_us,
         res.uncoordinated_makespan_us / 1e6, res.uncoordinated_finish_spread_us / 1e6),
        ("demand-based cosched [Sobalvarro97]", res.demand_allreduce_us,
         res.demand_makespan_us / 1e6, res.demand_finish_spread_us / 1e6),
        (f"gang scheduled ({res.slot_us/1e3:.0f} ms slots)", res.gang_allreduce_us,
         res.gang_makespan_us / 1e6, res.gang_finish_spread_us / 1e6),
    ]
    table = text_table(
        ["two co-located jobs", "mean allreduce_us", "makespan_s", "finish_spread_s"],
        rows,
        title=f"E1: 2 x {res.n_ranks_per_job}-rank fine-grain jobs sharing the CPUs",
        floatfmt="{:.3f}",
    )
    return table + (
        f"demand-based improvement: {res.demand_improvement:.1f}x;  "
        f"gang improvement: {res.per_op_improvement:.1f}x\n"
        "Demand boosting self-organises into serial batching: superb per-op\n"
        "latency but one job waits out the other (finish spread) — the\n"
        "throughput-vs-turnaround tension behind the paper's category split.\n"
    )


# ======================================================================
# E2: hardware-assisted collectives (paper §7)
# ======================================================================
@dataclass
class HwCollectivesResult:
    proc_counts: np.ndarray
    software_us: np.ndarray
    hardware_us: np.ndarray

    def ratio_at_max(self) -> float:
        """software/hardware latency ratio at the largest processor count."""
        return float(self.software_us[-1] / self.hardware_us[-1])


def run_hw_collectives(
    proc_counts=(128, 512, 944, 1728), n_calls: int = 300, seed: int = 19
) -> HwCollectivesResult:
    """Sweep software vs hardware Allreduce at paper scales."""
    sw, hw = [], []
    for n in proc_counts:
        base = make_config(VANILLA16, n, seed=seed)
        m_sw = AllreduceSeriesModel(base, n, 16, seed=seed + n)
        sw.append(m_sw.run_series(n_calls, 200.0).mean_us)
        hw_cfg = base.replace(mpi=MpiConfig(algorithm="hardware"))
        m_hw = AllreduceSeriesModel(hw_cfg, n, 16, seed=seed + n)
        hw.append(m_hw.run_series(n_calls, 200.0).mean_us)
    return HwCollectivesResult(
        np.asarray(proc_counts), np.asarray(sw), np.asarray(hw)
    )


def format_hw_collectives(res: HwCollectivesResult) -> str:
    """Render the E2 table."""
    rows = [
        (int(n), float(s_), float(h), float(s_ / h))
        for n, s_, h in zip(res.proc_counts, res.software_us, res.hardware_us)
    ]
    table = text_table(
        ["procs", "software_us", "hardware_us", "ratio"],
        rows,
        title="E2: software tree vs switch-combined Allreduce (vanilla noise)",
    )
    return table + (
        "Hardware collectives remove the log-depth cascade but keep the\n"
        "slowest-deposit sensitivity — they complement, not replace,\n"
        "co-scheduling (as the paper's future work anticipates).\n"
    )


# ======================================================================
# E3: fine-grain region hints (paper §7)
# ======================================================================
@dataclass
class FineGrainResult:
    vanilla_us: float
    always_on_us: float
    fine_grain_us: float
    vanilla_io_us: float
    always_on_io_us: float
    fine_grain_io_us: float
    n_ranks: int
    time_compression: float

    @property
    def fine_grain_gain_percent(self) -> float:
        return 100.0 * (1.0 - self.fine_grain_us / self.vanilla_us)


def run_fine_grain(
    n_ranks: int = 32,
    seed: int = 23,
    time_compression: float = 25.0,
    timesteps: int = 40,
) -> FineGrainResult:
    """ALE3D with an *untuned* favored priority (30, better than the I/O
    daemons): always-on co-scheduling starves I/O (T4's fiasco); region
    hints confine the boost to the collective sections, so I/O drains
    behind compute at normal priority — no per-daemon tuning needed."""
    noise = scale_noise(standard_noise(include_cron=False), time_compression)
    period = s(5) / time_compression
    big_tick = max(1, int(round(25 / time_compression)))

    def run(cosched: CoschedConfig | None, hints: bool):
        scenario = PROTO16 if cosched else VANILLA16
        cfg = make_config(scenario, n_ranks, seed=seed, noise=noise).replace(
            cosched=cosched if cosched else CoschedConfig(enabled=False)
        )
        if cfg.kernel.big_tick_multiplier > 1:
            cfg = cfg.replace(kernel=cfg.kernel.with_options(big_tick_multiplier=big_tick))
        system = System(cfg, with_io=True, io_priority=40)
        app = Ale3dConfig(timesteps=timesteps, use_fine_grain_hints=hints)
        res = run_ale3d(system, n_ranks, 16, app, horizon_us=s(600))
        return res.elapsed_us, res.io_time_us

    vanilla, vanilla_io = run(None, hints=False)
    naive = CoschedConfig(enabled=True, period_us=period, duty_cycle=0.90,
                          favored_priority=30, unfavored_priority=100)
    always, always_io = run(naive, hints=False)
    fg = CoschedConfig(enabled=True, period_us=period, duty_cycle=0.90,
                       favored_priority=30, unfavored_priority=100,
                       fine_grain_only=True)
    fine, fine_io = run(fg, hints=True)
    return FineGrainResult(
        vanilla, always, fine, vanilla_io, always_io, fine_io, n_ranks, time_compression
    )


def format_fine_grain(res: FineGrainResult) -> str:
    """Render the E3 table."""
    rows = [
        ("vanilla (no cosched)", res.vanilla_us / 1e6, res.vanilla_io_us / 1e6),
        ("cosched always-on (fav 30)", res.always_on_us / 1e6, res.always_on_io_us / 1e6),
        ("cosched fine-grain-only (fav 30)", res.fine_grain_us / 1e6, res.fine_grain_io_us / 1e6),
    ]
    table = text_table(
        ["configuration", "elapsed_s", "io_s"],
        rows,
        title=(
            f"E3: ALE3D with fine-grain region hints, {res.n_ranks} ranks "
            f"(compressed {res.time_compression:.0f}x)"
        ),
        floatfmt="{:.3f}",
    )
    return table + (
        f"fine-grain hints vs vanilla: {res.fine_grain_gain_percent:.0f}% gain, "
        f"with the untuned favored priority that starves I/O when always-on\n"
    )


# ======================================================================
# E4: clock misalignment (why the switch clock + NTP-off matter)
# ======================================================================
@dataclass
class MisalignmentResult:
    synced_us: float
    unsynced_us: float
    n_ranks: int
    time_compression: float

    @property
    def degradation(self) -> float:
        return self.unsynced_us / self.synced_us


def run_misalignment(
    n_ranks: int = 32,
    tpn: int = 8,
    calls: int = 1500,
    seed: int = 29,
    n_seeds: int = 2,
    time_compression: float = 50.0,
) -> MisalignmentResult:
    """Runs must span several co-scheduler periods, or the comparison just
    samples where one window happened to land; with the compression below,
    each run covers ~5 periods and results are averaged over seeds."""
    from repro.apps.aggregate_trace import run_aggregate_trace

    noise = scale_noise(standard_noise(include_cron=False), time_compression)
    period = s(5) / time_compression
    big_tick = max(1, int(round(25 / time_compression)))

    def run(sync: bool) -> float:
        means = []
        for k in range(n_seeds):
            cos = CoschedConfig(
                enabled=True, period_us=period, duty_cycle=0.90, sync_clock=sync
            )
            kernel = KernelConfig.prototype(big_tick=big_tick)
            if not sync:
                # Without synchronised clocks, cluster-wide tick alignment
                # is fictional too.
                kernel = kernel.with_options(align_ticks_to_global_time=False)
            cfg = ClusterConfig(
                machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
                kernel=kernel,
                cosched=cos,
                mpi=MpiConfig.with_long_polling(progress_threads_enabled=False),
                noise=noise,
                seed=seed + k,
            )
            system = System(cfg)
            res = run_aggregate_trace(
                system, n_ranks, tpn,
                AggregateTraceConfig(calls_per_loop=calls, compute_between_us=200.0),
            )
            means.append(res.mean_us)
        return float(np.mean(means))

    return MisalignmentResult(run(True), run(False), n_ranks, time_compression)


def format_misalignment(res: MisalignmentResult) -> str:
    """Render the E4 table."""
    rows = [
        ("switch-clock synced", res.synced_us),
        ("unsynced (NTP drift)", res.unsynced_us),
    ]
    table = text_table(
        ["co-scheduler clocks", "mean allreduce_us"],
        rows,
        title=(
            f"E4: window alignment, {res.n_ranks} ranks "
            f"(compressed {res.time_compression:.0f}x)"
        ),
    )
    return table + (
        f"misaligned windows cost {res.degradation:.2f}x — the paper's §4 "
        f"synchronisation (and NTP-off rule) is load-bearing\n"
    )
