"""T4: the ALE3D I/O starvation episode and its priority-placement fix.

Paper §5.3: "The first tests of ALE3D were very disappointing: the
co-scheduler actually slowed it down.  Profiling revealed that slower I/O
was the cause … limiting I/O daemons to just 10 % of a 5 second window
starved them.  To fix this problem we adjusted the favored priority to
just above that of key I/O daemons."  With the fix, the full treatment
cut the run time 24 % (1315 s → 1152 s at 944 processors).

Three DES runs of the ALE3D proxy (reduced scale; co-scheduler period and
noise compressed by a stated factor so several windows fit in the run):

1. **vanilla** — standard kernel, no co-scheduler;
2. **naive cosched** — favored priority 30, *better* than the I/O worker
   (40): I/O phases starve in the favored window → slower than vanilla;
3. **tuned cosched** — favored priority 41, just *worse* than the I/O
   worker: I/O daemons preempt the app when needed → fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.ale3d import Ale3dConfig, run_ale3d
from repro.config import CoschedConfig
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import PROTO16, VANILLA16, make_config
from repro.experiments.reporting import text_table
from repro.system import System
from repro.units import ms, s

__all__ = ["Ale3dIoResult", "run_ale3d_io", "format_ale3d_io"]

#: I/O worker (mmfsd service path) priority — between the naive and tuned
#: favored values, which is the whole story.
IO_PRIORITY = 40


@dataclass
class Ale3dIoResult:
    vanilla_us: float
    naive_cosched_us: float
    tuned_cosched_us: float
    vanilla_io_us: float
    naive_io_us: float
    tuned_io_us: float
    n_ranks: int
    time_compression: float

    @property
    def naive_slowdown(self) -> float:
        """Naive co-scheduling vs vanilla (>1 = slower, the paper's fiasco)."""
        return self.naive_cosched_us / self.vanilla_us

    @property
    def tuned_improvement_percent(self) -> float:
        """Run-time reduction of the tuned setup vs vanilla (paper: 24%)."""
        return 100.0 * (1.0 - self.tuned_cosched_us / self.vanilla_us)


def run_ale3d_io(
    n_ranks: int = 32,
    seed: int = 9,
    time_compression: float = 25.0,
    timesteps: int = 40,
) -> Ale3dIoResult:
    """Run the three ALE3D configurations (vanilla / naive / tuned)."""
    noise = scale_noise(standard_noise(include_cron=False), time_compression)
    app = Ale3dConfig(timesteps=timesteps)
    period = s(5) / time_compression
    # The co-scheduler's window flips are tick-quantised; with the period
    # compressed below the prototype's 250 ms big tick, compress the tick
    # multiplier alongside so the configured duty cycle stays meaningful.
    big_tick = max(1, int(round(25 / time_compression)))

    def run(kernel_scenario, cosched: CoschedConfig):
        cfg = make_config(kernel_scenario, n_ranks, seed=seed, noise=noise).replace(
            cosched=cosched
        )
        if cfg.kernel.big_tick_multiplier > 1:
            cfg = cfg.replace(kernel=cfg.kernel.with_options(big_tick_multiplier=big_tick))
        system = System(cfg, with_io=True, io_priority=IO_PRIORITY)
        res = run_ale3d(system, n_ranks, 16, app, horizon_us=s(600))
        return res.elapsed_us, res.io_time_us

    vanilla_us, vanilla_io = run(VANILLA16, CoschedConfig(enabled=False))
    naive = CoschedConfig(
        enabled=True, period_us=period, duty_cycle=0.90,
        favored_priority=30, unfavored_priority=100,
    )
    naive_us, naive_io = run(PROTO16, naive)
    tuned = CoschedConfig(
        enabled=True, period_us=period, duty_cycle=0.90,
        favored_priority=IO_PRIORITY + 1, unfavored_priority=100,
    )
    tuned_us, tuned_io = run(PROTO16, tuned)
    return Ale3dIoResult(
        vanilla_us, naive_us, tuned_us,
        vanilla_io, naive_io, tuned_io,
        n_ranks, time_compression,
    )


def format_ale3d_io(res: Ale3dIoResult) -> str:
    """Render the T4 table and the paper comparison lines."""
    rows = [
        ("vanilla (no cosched)", res.vanilla_us / 1e6, res.vanilla_io_us / 1e6, 1.0),
        ("naive cosched (fav 30 < io 40)", res.naive_cosched_us / 1e6,
         res.naive_io_us / 1e6, res.naive_cosched_us / res.vanilla_us),
        ("tuned cosched (fav 41 > io 40)", res.tuned_cosched_us / 1e6,
         res.tuned_io_us / 1e6, res.tuned_cosched_us / res.vanilla_us),
    ]
    table = text_table(
        ["configuration", "elapsed_s", "io_s", "vs vanilla"],
        rows,
        title=(
            f"T4: ALE3D proxy, {res.n_ranks} ranks "
            f"(noise/schedule time-compressed {res.time_compression:.0f}x)"
        ),
        floatfmt="{:.3f}",
    )
    return table + (
        f"naive co-scheduling slowdown : {res.naive_slowdown:.2f}x (paper: slower than vanilla)\n"
        f"tuned co-scheduling gain     : {res.tuned_improvement_percent:.0f}% "
        f"(paper: 24% — 1315 s -> 1152 s)\n"
    )
