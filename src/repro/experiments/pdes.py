"""``pdes`` CLI command: one sharded fig4-style run with a printable digest.

This is the operational face of :mod:`repro.sim.parallel`: run the
aggregate-trace workload under conservative parallel DES with ``--shards
N``, print the run's result digest, and optionally write the digest to a
file.  The digest covers exactly the rank-visible outcome (per-call
durations of the recorded ranks, reduction integrity, makespan), which
the engine guarantees is shard-count invariant — so CI runs this twice
(``--shards 1`` and ``--shards 2``) and byte-compares the digest files.
A human debugging a determinism regression does the same by hand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import VANILLA16, make_config
from repro.results import register_result
from repro.sim.meanfield import MeanFieldConfig
from repro.sim.parallel import run_parallel
from repro.units import s

__all__ = ["PdesResult", "run_pdes", "format_pdes"]

APP = "repro.apps.aggregate_trace:sharded_app"
TIME_COMPRESSION = 50.0


@register_result
@dataclass
class PdesResult:
    """One sharded run's digest and superstep/transport accounting."""

    n_ranks: int
    n_nodes: int
    shards: int
    meanfield_batch: int
    calls: int
    digest: str
    events_per_shard: list
    messages_crossed: int
    supersteps: int
    lookahead_us: float
    elapsed_us: float
    ok: bool
    wall_s: float
    #: Shard-worker crash/hang recoveries (respawn + replay); an
    #: execution-substrate fact, excluded from the digest.
    recoveries: int = 0


def run_pdes(
    shards: int = 1,
    quick: bool = False,
    meanfield_batch: int = 0,
    seed: int = 1234,
    use_processes: bool | None = None,
    shard_chaos_seed: int | None = None,
) -> PdesResult:
    """Run the fig4-style workload under *shards*-way parallel DES.

    *shard_chaos_seed* arms the ``harness.shard.kill`` axis: shard
    workers are SIGKILLed on their deterministic plans and recovered by
    respawn + replay — the printed digest must still match a clean run's
    (the CI ``shard-chaos-smoke`` recovery check).  Forces forked
    workers, since in-process shards have nothing to kill.
    """
    if shard_chaos_seed is not None and use_processes is None:
        use_processes = True
    if quick:
        n_ranks, calls = 64, 8
    else:
        n_ranks, calls = 256, 48
    noise = scale_noise(standard_noise(include_cron=False), TIME_COMPRESSION)
    config = make_config(VANILLA16, n_ranks=n_ranks, noise=noise, seed=seed)
    params = dict(
        loops=1,
        calls_per_loop=calls,
        trace_block=64,
        compute_between_us=20000.0,
        payload_bytes=8,
        record_nodes=(0,),
    )
    meanfield = (
        MeanFieldConfig(batch=meanfield_batch, exempt_nodes=(0,))
        if meanfield_batch > 1
        else None
    )
    t0 = time.perf_counter()
    r = run_parallel(
        config,
        n_ranks=n_ranks,
        tasks_per_node=16,
        app=APP,
        app_params=params,
        shards=shards,
        horizon_us=s(600),
        meanfield=meanfield,
        use_processes=use_processes,
        shard_chaos_seed=shard_chaos_seed,
        respawn_backoff_s=0.01 if shard_chaos_seed is not None else 0.05,
    )
    wall = time.perf_counter() - t0
    return PdesResult(
        n_ranks=n_ranks,
        n_nodes=config.machine.n_nodes,
        shards=shards,
        meanfield_batch=meanfield_batch,
        calls=calls,
        digest=r.digest,
        events_per_shard=list(r.events_per_shard),
        messages_crossed=r.messages_crossed,
        supersteps=r.supersteps,
        lookahead_us=r.lookahead_us,
        elapsed_us=r.elapsed_us,
        ok=r.ok,
        wall_s=wall,
        recoveries=r.recoveries,
    )


def format_pdes(res: PdesResult) -> str:
    """Human-readable run summary; the digest line is the tripwire."""
    return (
        f"pdes: {res.n_ranks} ranks on {res.n_nodes} nodes across "
        f"{res.shards} shard(s), {res.calls} Allreduce calls"
        + (f", mean-field batch {res.meanfield_batch}" if res.meanfield_batch > 1 else "")
        + "\n"
        f"  events/shard : {res.events_per_shard}\n"
        f"  supersteps   : {res.supersteps} "
        f"(lookahead {res.lookahead_us:g} us, "
        f"{res.messages_crossed} cross-shard messages)\n"
        + (
            f"  recoveries   : {res.recoveries} shard-worker respawns\n"
            if res.recoveries
            else ""
        )
        + f"  sim elapsed  : {res.elapsed_us / 1e3:.1f} ms   "
        f"wall {res.wall_s:.1f} s   values {'OK' if res.ok else 'BAD'}\n"
        f"  digest       : {res.digest}"
    )
