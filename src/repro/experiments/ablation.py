"""A1: which modification buys what.

Cumulative build-up from vanilla to the full prototype at a fixed
processor count, mirroring the order the paper introduces the pieces:

1. vanilla (16/node, stock everything)
2. + MP_POLLING_INTERVAL fix (silence the MPI timer threads, §5.3)
3. + big ticks (×25, §3.1.1)
4. + simultaneous cluster-aligned ticks (§3.2.1/§4)
5. + co-scheduler (priority cycling, §4) — still without the RT fixes,
   so priority flips are noticed at tick boundaries
6. + real-time scheduling with reverse-preemption and multi-IPI fixes
   (§3) = the full prototype

Also reports the collective-algorithm ablation (recursive doubling vs
binomial reduce+broadcast) from DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analytic.model import AllreduceSeriesModel
from repro.config import CoschedConfig, KernelConfig, MpiConfig
from repro.experiments.common import make_config, VANILLA16
from repro.experiments.reporting import text_table
from repro.experiments.runner import TrialRunner, TrialSpec

__all__ = ["AblationResult", "run_ablation", "format_ablation"]


@dataclass
class AblationResult:
    n_ranks: int
    #: (step label, mean Allreduce µs, improvement vs vanilla)
    steps: list


def _step_configs():
    """(label, kernel, mpi, cosched) per cumulative step."""
    vanilla_k = KernelConfig.vanilla()
    mpi_fix = MpiConfig.with_long_polling()
    steps = [
        ("1 vanilla", vanilla_k, MpiConfig(), CoschedConfig(enabled=False)),
        ("2 +polling fix", vanilla_k, mpi_fix, CoschedConfig(enabled=False)),
        (
            "3 +big ticks",
            vanilla_k.with_options(big_tick_multiplier=25),
            mpi_fix,
            CoschedConfig(enabled=False),
        ),
        (
            "4 +aligned ticks",
            vanilla_k.with_options(
                big_tick_multiplier=25,
                tick_phase="aligned",
                align_ticks_to_global_time=True,
            ),
            mpi_fix,
            CoschedConfig(enabled=False),
        ),
        (
            "5 +cosched (no RT fixes)",
            vanilla_k.with_options(
                big_tick_multiplier=25,
                tick_phase="aligned",
                align_ticks_to_global_time=True,
                daemons_global_queue=True,
            ),
            mpi_fix,
            CoschedConfig(enabled=True),
        ),
        (
            "6 +RT sched fixes (= prototype)",
            KernelConfig.prototype(),
            mpi_fix,
            CoschedConfig(enabled=True),
        ),
    ]
    return steps


def _ablation_trial(params: dict) -> dict:
    """One (cumulative step, seed) trial; the step index is pure data and
    the configs rebuild identically in any process (see
    :mod:`repro.experiments.runner`)."""
    _label, kernel, mpi, cosched = _step_configs()[params["step"]]
    n_ranks = params["n_ranks"]
    cfg = make_config(VANILLA16, n_ranks, seed=params["seed"]).replace(
        kernel=kernel, mpi=mpi, cosched=cosched
    )
    model = AllreduceSeriesModel(cfg, n_ranks, 16, seed=params["model_seed"])
    series = model.run_series(params["n_calls"], compute_between_us=200.0)
    return {"mean_us": series.mean_us}


def run_ablation(
    n_ranks: int = 944,
    n_calls: int = 400,
    seed: int = 21,
    n_seeds: int = 3,
    journal=None,
    trial_timeout_s: Optional[float] = None,
    jobs: int = 1,
) -> AblationResult:
    """Run the cumulative ablation at *n_ranks*, averaging seeds.

    The 6 steps × *n_seeds* trials are independent and run through
    :class:`~repro.experiments.runner.TrialRunner` (``jobs`` workers,
    journal resume, per-trial watchdog).
    """
    runner = TrialRunner(jobs=jobs, journal=journal, trial_timeout_s=trial_timeout_s)
    steps = _step_configs()
    specs = [
        TrialSpec(
            key=f"ablation-n{n_ranks}-step{i}-s{k}",
            fn="repro.experiments.ablation:_ablation_trial",
            params=dict(
                step=i,
                n_ranks=n_ranks,
                seed=seed + k,
                model_seed=seed + 31 * k,
                n_calls=n_calls,
            ),
        )
        for i in range(len(steps))
        for k in range(n_seeds)
    ]
    by_key = {o.key: o for o in runner.run(specs)}
    rows = []
    baseline = None
    for i, (label, *_cfgs) in enumerate(steps):
        means = [
            by_key[f"ablation-n{n_ranks}-step{i}-s{k}"].require()["mean_us"]
            for k in range(n_seeds)
        ]
        mean = float(np.mean(means))
        if baseline is None:
            baseline = mean
        rows.append((label, mean, baseline / mean))
    return AblationResult(n_ranks, rows)


def format_ablation(res: AblationResult) -> str:
    """Render the ablation table."""
    return text_table(
        ["step", "allreduce_us", "vs vanilla"],
        [(l, m, f"{r:.2f}x") for l, m, r in res.steps],
        title=f"A1: cumulative ablation at {res.n_ranks} ranks",
    )
