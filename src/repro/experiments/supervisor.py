"""Supervised worker pool: the fault-tolerant execution backend.

The raw ``ProcessPoolExecutor`` path treats its workers as infallible: a
segfaulted or OOM-killed worker breaks the whole pool
(``BrokenProcessPool``), a silently wedged worker is only caught if the
in-worker ``SIGALRM`` still fires, and a *poison* trial — one that kills
every worker it touches — sinks the campaign.  This module replaces that
path with the heartbeat/retry/quarantine discipline batch schedulers
apply to cluster nodes, applied to our own worker fleet:

* **Long-lived workers** pull :class:`~repro.experiments.runner.TrialSpec`
  dispatches over a duplex pipe, journal into per-process shards, and
  emit heartbeats from a side thread while a trial runs.
* **The supervisor** (parent) multiplexes every worker pipe and process
  sentinel through :func:`multiprocessing.connection.wait`.  A dead
  process is a **crash**; a live-but-silent one (no heartbeat inside
  ``heartbeat_timeout_s``, or a parent-side deadline when
  ``trial_timeout_s`` is set) is a **hang** — either way the worker is
  SIGKILLed, reaped, and replaced.
* **Bounded retry with deterministic backoff**: the interrupted trial is
  re-dispatched after ``backoff_base_s * 2**attempt`` (capped), a pure
  function of the attempt number so retry schedules are identical across
  runs and worker counts.
* **Quarantine**: a spec whose attempts keep killing workers is allowed
  ``max_retries`` re-dispatches; one more failure records it as a
  structured ``status: "failed"`` journal entry with taxonomy
  ``quarantined`` and the campaign moves on.
* **Graceful shutdown**: SIGINT/SIGTERM stops dispatching, drains
  in-flight trials (bounded by ``drain_timeout_s``; a second signal
  aborts immediately), terminates every worker, merges journal shards,
  and re-raises ``KeyboardInterrupt`` — the journal on disk is resumable
  and no child process survives.

**Failure taxonomy** — every failed trial is classified exactly one of:

========== =========================================================
``exception``  the trial function raised (deterministic; not retried)
``timeout``    the in-worker ``SIGALRM`` watchdog fired (not retried)
``crash``      the worker process died mid-trial (retried)
``hang``       the worker went silent mid-trial (retried)
``quarantined`` crash/hang persisted past ``max_retries`` (poison)
========== =========================================================

**Determinism contract.**  Trials are pure functions of their specs, and
in-trial failures are journaled byte-identically to the serial path, so
a supervised campaign's results and journals are byte-identical to a
serial run's — *including* campaigns where workers are deliberately
killed: the harness-chaos mode (:mod:`repro.chaos.harness_faults`,
``--harness-chaos SEED``) injects worker kills/hangs as a pure function
of ``(seed, trial key, attempt)``, every injected kill is transient
under the default retry budget, and a retried trial re-executes from its
spec to the same record.  ``tests/test_supervisor.py`` pins serial ==
``--jobs 2`` == ``--jobs 4`` under injected kills, journals included.
"""

from __future__ import annotations

import heapq
import itertools
import json
import logging
import multiprocessing
import multiprocessing.connection as _mpc
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.checkpoint.harness import SweepJournal, TrialTimeout, trial_watchdog
from repro.experiments import runner as _runner
from repro.experiments.runner import (
    TrialOutcome,
    TrialSpec,
    format_trial_traceback,
    resolve_trial_fn,
)

__all__ = ["SupervisorConfig", "SupervisorStats", "Supervisor"]

_log = logging.getLogger("repro.harness")

#: Trial tracebacks must not vary with which execution path raised them;
#: this module's frames are harness machinery like the runner's own.
_runner._HARNESS_FILES = frozenset(_runner._HARNESS_FILES | {__file__})

#: Exit code a chaos-crashed worker dies with (mimics an abrupt kill).
_CHAOS_EXIT = 139

#: How often the supervisor loop wakes to health-check even when no
#: worker message arrives (seconds).
_POLL_S = 0.05


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for the supervised backend.

    ``chaos_seed`` arms harness-chaos injection (worker kills/hangs as a
    pure function of the seed and each trial key); ``None`` runs clean.
    """

    #: Re-dispatches allowed per trial after crash/hang; one failure
    #: beyond this quarantines the spec.
    max_retries: int = 3
    #: Base of the deterministic exponential backoff between
    #: re-dispatches: ``backoff_base_s * 2**attempt``, capped below.
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0
    #: Worker-side heartbeat period while a trial runs.
    heartbeat_interval_s: float = 0.25
    #: Missed-heartbeat window after which a busy worker is declared hung.
    heartbeat_timeout_s: float = 10.0
    #: How long a signal-triggered drain waits for in-flight trials
    #: before killing the remaining workers.
    drain_timeout_s: float = 60.0
    #: Harness-chaos seed (``--harness-chaos``), or ``None`` for clean.
    chaos_seed: Optional[int] = None
    #: Install SIGINT/SIGTERM drain handlers for the duration of a run
    #: (skipped automatically off the main thread).
    handle_signals: bool = True

    @staticmethod
    def from_env() -> "SupervisorConfig":
        """Defaults, with the chaos seed picked up from the environment
        (``REPRO_HARNESS_CHAOS``) when set."""
        from repro.chaos.harness_faults import ENV_VAR

        raw = os.environ.get(ENV_VAR, "").strip()
        return SupervisorConfig(chaos_seed=int(raw) if raw else None)

    def backoff_s(self, attempt: int) -> float:
        """Deterministic backoff before re-dispatching attempt+1."""
        return min(self.backoff_base_s * (2.0 ** attempt), self.backoff_cap_s)


@dataclass
class SupervisorStats:
    """What the supervisor observed and did, per campaign.

    Deliberately *not* part of saved results: a chaos campaign with
    transient kills must produce result files byte-identical to a clean
    serial run, so retry telemetry lives here (and in the log line
    :meth:`summary` feeds), never in :class:`SweepResult`.
    """

    trials: int = 0
    #: Crash/hang re-dispatches per trial key (only keys that retried).
    retries: dict = field(default_factory=dict)
    #: Backoff delays applied per retried key, in attempt order.
    backoffs: dict = field(default_factory=dict)
    #: Worker-fault events by kind: {"crash": n, "hang": m}.
    fault_counts: dict = field(default_factory=dict)
    #: Keys quarantined after exhausting the retry budget.
    quarantined: list = field(default_factory=list)
    #: Worker processes spawned over the campaign (initial + respawns).
    spawned: int = 0

    def note_fault(self, key: str, kind: str) -> None:
        """Count one crash/hang event against *key* and the fault totals."""
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        self.retries[key] = self.retries.get(key, 0) + 1

    def canonical(self) -> dict:
        """Scheduling-order-independent view, for comparison across runs
        and worker counts (dict insertion order varies; sorted here)."""
        return {
            "trials": self.trials,
            "retries": dict(sorted(self.retries.items())),
            "backoffs": dict(sorted(self.backoffs.items())),
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "quarantined": sorted(self.quarantined),
        }

    def summary(self) -> str:
        """One log line of what supervision cost this campaign."""
        faults = ", ".join(
            f"{k}={v}" for k, v in sorted(self.fault_counts.items())
        ) or "none"
        return (
            f"{self.trials} trials, {sum(self.retries.values())} retries "
            f"(worker faults: {faults}), {len(self.quarantined)} quarantined, "
            f"{self.spawned} workers spawned"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _chaos_injection(chaos_seed, key: str, attempt: int):
    if chaos_seed is None:
        return None
    from repro.chaos.harness_faults import injection_for

    return injection_for(chaos_seed, key, attempt)


def _write_torn_entry(journal: SweepJournal, key: str, record: dict) -> None:
    """Chaos ``crash/mid``: leave a half-written shard entry behind.

    Bypasses the atomic temp+replace discipline on purpose — this is the
    torn-write case (non-atomic writer, hostile filesystem) the journal
    merge hardening exists for.
    """
    payload = json.dumps({"status": "ok", "record": record}, indent=1, sort_keys=True)
    with open(journal._path(key), "w", encoding="utf-8") as fh:
        fh.write(payload[: max(1, len(payload) // 2)])
        fh.flush()
        os.fsync(fh.fileno())


def _worker_main(
    wid: int,
    conn,
    journal_root,
    trial_timeout_s: Optional[float],
    heartbeat_interval_s: float,
    chaos_seed: Optional[int],
) -> None:
    """Worker loop: recv dispatch → heartbeat + run trial → send result.

    Top-level so it imports under any multiprocessing start method.
    SIGINT is ignored — on a terminal Ctrl+C the *parent* coordinates the
    drain; workers must stay alive to finish (and journal) their trial.
    """
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    journal = (
        SweepJournal(journal_root, shard=f"w{os.getpid()}")
        if journal_root is not None
        else None
    )
    send_lock = threading.Lock()

    def send(msg) -> None:
        # The heartbeat thread and the main thread share the pipe.
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                os._exit(0)  # parent is gone; nothing left to report to

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "exit":
            break
        _, spec, attempt = msg
        send(("start", spec.key, attempt))

        fault = _chaos_injection(chaos_seed, spec.key, attempt)
        if fault is not None and fault[0] == "hang":
            # Go silent: no heartbeats, no exit.  Only the supervisor's
            # missed-heartbeat deadline can clear this worker.
            while True:
                time.sleep(60.0)
        if fault == ("crash", "pre"):
            os._exit(_CHAOS_EXIT)

        stop = threading.Event()

        def beat(key=spec.key):
            while not stop.wait(heartbeat_interval_s):
                send(("hb", key))

        hb_thread = threading.Thread(target=beat, daemon=True)
        hb_thread.start()
        try:
            try:
                with trial_watchdog(trial_timeout_s):
                    record = resolve_trial_fn(spec.fn)(spec.params)
            except Exception as exc:
                # Identical handling to TrialRunner._run_one — in-trial
                # failures must journal the same bytes on every path.
                reason = f"{type(exc).__name__}: {exc}"
                tb = format_trial_traceback(exc)
                taxonomy = "timeout" if isinstance(exc, TrialTimeout) else "exception"
                if journal is not None:
                    journal.record_failure(
                        spec.key, reason, traceback=tb, taxonomy=taxonomy
                    )
                result = ("done", spec.key, None, reason, tb, taxonomy)
            else:
                if fault == ("crash", "mid"):
                    if journal is not None:
                        _write_torn_entry(journal, spec.key, record)
                    os._exit(_CHAOS_EXIT)
                if journal is not None:
                    journal.record(spec.key, record)
                result = ("done", spec.key, record, None, None, None)
        finally:
            stop.set()
        hb_thread.join()
        send(result)
    conn.close()


# ----------------------------------------------------------------------
# Supervisor (parent) side
# ----------------------------------------------------------------------


class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("wid", "proc", "conn", "busy", "last_hb", "started_at")

    def __init__(self, wid, proc, conn):
        self.wid = wid
        self.proc = proc
        self.conn = conn
        #: ``(spec, attempt)`` while a trial is dispatched, else None.
        self.busy = None
        self.last_hb = 0.0
        self.started_at = 0.0


def _mp_context():
    """Prefer fork (cheap; test monkeypatching propagates), like the
    legacy pool path."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class Supervisor:
    """Runs one batch of pending specs under supervision.

    One-shot: construct, :meth:`run`, read :attr:`stats`.  The journal
    (if any) is the parent's canonical journal — workers shard under it,
    and shards are merged before :meth:`run` returns, on every path
    including signal-triggered drains.
    """

    def __init__(
        self,
        jobs: int,
        journal: Optional[SweepJournal] = None,
        trial_timeout_s: Optional[float] = None,
        config: Optional[SupervisorConfig] = None,
        store=None,
        fingerprints: Optional[dict] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.journal = journal
        self.trial_timeout_s = trial_timeout_s
        #: Optional :class:`repro.store.ResultStore` plus a key ->
        #: fingerprint map for this batch's specs: successful trials are
        #: streamed into the store *as they complete*, so a crash (or
        #: SIGINT drain) mid-campaign still leaves every finished trial
        #: durable and cross-run reusable — and a result that disagrees
        #: with a prior run's record trips the determinism oracle at the
        #: moment of completion, not hours later at campaign end.
        self.store = store
        self.fingerprints = fingerprints or {}
        self.config = config if config is not None else SupervisorConfig.from_env()
        self.stats = SupervisorStats()
        self._ctx = _mp_context()
        self._workers: dict[int, _Worker] = {}
        self._wid_counter = itertools.count()
        self._seq = itertools.count()  # heap tiebreaker
        self._queue: deque = deque()
        self._delayed: list = []  # (ready_at, seq, spec, attempt)
        self._outcomes: dict[str, TrialOutcome] = {}
        self._signals = 0
        self._drain = False
        self._drain_started: Optional[float] = None
        self._abort = False

    # -- public -------------------------------------------------------

    def run(self, specs) -> dict[str, TrialOutcome]:
        """Execute *specs*; return outcomes keyed by trial key.

        Raises :class:`KeyboardInterrupt` after a clean drain when a
        SIGINT/SIGTERM arrived mid-campaign (journal merged first).
        """
        specs = list(specs)
        self.stats.trials = len(specs)
        self._queue.extend((spec, 0) for spec in specs)
        previous_handlers = self._install_signal_handlers()
        try:
            self._loop()
        finally:
            self._shutdown_workers()
            self._restore_signal_handlers(previous_handlers)
            if self.journal is not None:
                self.journal.merge_shards()
        if self.stats.retries or self.stats.quarantined:
            _log.info("supervisor: %s", self.stats.summary())
        if self._signals:
            raise KeyboardInterrupt
        return self._outcomes

    # -- signals ------------------------------------------------------

    def _install_signal_handlers(self):
        if (
            not self.config.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            return None

        def on_signal(signum, frame):
            self._signals += 1
            self._drain = True
            if self._signals >= 2:
                self._abort = True

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, on_signal)
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        if previous:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    # -- main loop ----------------------------------------------------

    def _outstanding(self) -> int:
        busy = sum(1 for w in self._workers.values() if w.busy is not None)
        return len(self._queue) + len(self._delayed) + busy

    def _loop(self) -> None:
        while True:
            now = time.monotonic()
            if self._drain and self._drain_started is None:
                self._drain_started = now
            if self._abort or (
                self._drain_started is not None
                and now - self._drain_started > self.config.drain_timeout_s
            ):
                return  # shutdown path kills whatever is still busy
            self._promote_delayed(now)
            if not self._drain:
                self._dispatch(now)
            busy = any(w.busy is not None for w in self._workers.values())
            if not busy and (self._drain or self._outstanding() == 0):
                return
            self._poll(self._wait_timeout(now))
            self._check_health(time.monotonic())

    def _wait_timeout(self, now: float) -> float:
        timeout = _POLL_S
        if self._delayed:
            timeout = min(timeout, max(self._delayed[0][0] - now, 0.0))
        return timeout

    def _promote_delayed(self, now: float) -> None:
        while self._delayed and self._delayed[0][0] <= now:
            _ready_at, _seq, spec, attempt = heapq.heappop(self._delayed)
            self._queue.append((spec, attempt))

    # -- workers ------------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        wid = next(self._wid_counter)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                child_conn,
                self.journal.root if self.journal is not None else None,
                self.trial_timeout_s,
                self.config.heartbeat_interval_s,
                self.config.chaos_seed,
            ),
            daemon=True,
            name=f"trial-worker-{wid}",
        )
        proc.start()
        child_conn.close()
        worker = _Worker(wid, proc, parent_conn)
        self._workers[wid] = worker
        self.stats.spawned += 1
        return worker

    def _remove_worker(self, worker: _Worker, kill: bool = False) -> None:
        if kill and worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=10.0)
        if worker.proc.is_alive():  # pragma: no cover - last resort
            worker.proc.terminate()
            worker.proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.close()
        self._workers.pop(worker.wid, None)

    def _dispatch(self, now: float) -> None:
        while self._queue:
            worker = next(
                (w for w in self._workers.values() if w.busy is None), None
            )
            if worker is None:
                if len(self._workers) >= self.jobs:
                    return
                worker = self._spawn_worker()
            spec, attempt = self._queue.popleft()
            worker.busy = (spec, attempt)
            worker.started_at = worker.last_hb = now
            try:
                worker.conn.send(("run", spec, attempt))
            except (BrokenPipeError, OSError):
                # Died between trials; re-dispatch elsewhere.
                worker.busy = None
                self._queue.appendleft((spec, attempt))
                self._remove_worker(worker, kill=True)

    # -- event handling -----------------------------------------------

    def _poll(self, timeout: float) -> None:
        objs = []
        by_obj = {}
        for w in self._workers.values():
            objs.append(w.conn)
            by_obj[w.conn] = w
            objs.append(w.proc.sentinel)
            by_obj[w.proc.sentinel] = w
        if not objs:
            time.sleep(timeout)
            return
        for obj in _mpc.wait(objs, timeout):
            worker = by_obj[obj]
            if obj is worker.conn:
                self._drain_conn(worker)
            # Sentinel readiness (process death) is handled by the
            # health check right after, once the conn is drained.

    def _drain_conn(self, worker: _Worker) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                return  # dead worker; the health check reaps it
            kind = msg[0]
            if kind in ("hb", "start"):
                worker.last_hb = time.monotonic()
            elif kind == "done":
                _, key, record, error, tb, taxonomy = msg
                attempt = worker.busy[1] if worker.busy else 0
                self._outcomes[key] = TrialOutcome(
                    key,
                    record,
                    error=error,
                    traceback=tb,
                    taxonomy=taxonomy,
                    retries=attempt,
                )
                worker.busy = None
                if record is not None and self.store is not None:
                    fp = self.fingerprints.get(key)
                    if fp is not None:
                        self.store.put(fp, key, record)

    def _check_health(self, now: float) -> None:
        for worker in list(self._workers.values()):
            if worker.proc.exitcode is not None:
                # Crashed (or chaos-killed itself).  Drain first: a
                # worker that finished its trial and *then* died has a
                # buffered "done" that must win over the crash verdict.
                self._drain_conn(worker)
                interrupted = worker.busy
                self._remove_worker(worker)
                if interrupted is not None:
                    self._on_worker_failure(*interrupted, kind="crash")
                continue
            if worker.busy is None:
                continue
            hung = now - worker.last_hb > self.config.heartbeat_timeout_s
            if not hung and self.trial_timeout_s:
                # Backstop for a wedged trial whose SIGALRM never fired
                # (e.g. stuck in a C extension) but whose heartbeat
                # thread still beats.
                deadline = self.trial_timeout_s + self.config.heartbeat_timeout_s
                hung = now - worker.started_at > deadline
            if hung:
                interrupted = worker.busy
                self._remove_worker(worker, kill=True)
                self._on_worker_failure(*interrupted, kind="hang")

    # -- retry / quarantine -------------------------------------------

    def _on_worker_failure(self, spec: TrialSpec, attempt: int, kind: str) -> None:
        self.stats.note_fault(spec.key, kind)
        if attempt >= self.config.max_retries:
            reason = (
                f"worker {kind} on attempt {attempt + 1}; quarantined after "
                f"{self.config.max_retries} retries"
            )
            if self.journal is not None:
                self.journal.record_failure(
                    spec.key, reason, taxonomy="quarantined"
                )
            self._outcomes[spec.key] = TrialOutcome(
                spec.key,
                None,
                error=reason,
                taxonomy="quarantined",
                retries=attempt,
            )
            self.stats.quarantined.append(spec.key)
            _log.warning("supervisor: quarantined %s (%s)", spec.key, reason)
            return
        delay = self.config.backoff_s(attempt)
        self.stats.backoffs.setdefault(spec.key, []).append(delay)
        heapq.heappush(
            self._delayed,
            (time.monotonic() + delay, next(self._seq), spec, attempt + 1),
        )

    # -- shutdown -----------------------------------------------------

    def _shutdown_workers(self) -> None:
        for worker in list(self._workers.values()):
            if worker.busy is None and worker.proc.is_alive():
                try:
                    worker.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
                worker.proc.join(timeout=5.0)
            self._remove_worker(worker, kill=True)
