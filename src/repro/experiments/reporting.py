"""Aligned text tables, ASCII charts and CSV output for experiment results.

No plotting library is available in this environment, so figure-style
results render as monospace scatter charts: good enough to see linear vs
logarithmic scaling and the vanilla/prototype gap at a glance in any
terminal or CI log.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

__all__ = ["text_table", "write_csv", "ascii_chart", "format_taxonomy"]


def format_taxonomy(counts: Mapping[str, int]) -> str:
    """Render failure-taxonomy counts (``crash=1, hang=2``) for campaign
    summaries; empty counts render as ``"none"``."""
    if not counts:
        return "none"
    return ", ".join(f"{kind}={n}" for kind, n in sorted(counts.items()))


def text_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    floatfmt: str = "{:.1f}",
) -> str:
    """Render rows as an aligned monospace table."""
    def cell(v: object) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    srows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in srows:
        out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def write_csv(path, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Dump rows as CSV (plain text, no quoting needs expected)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join(headers) + "\n")
        for row in rows:
            fh.write(",".join(str(v) for v in row) + "\n")


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y-series against shared x as a monospace scatter.

    Each series gets a marker (``*``, ``o``, ``+``, ``x`` …); overlapping
    points show the later series' marker.  Axes are annotated with the
    data ranges, and a legend maps markers to series names.
    """
    markers = "*o+x#@%&"
    xs = [float(v) for v in x]
    if not xs:
        raise ValueError("empty x")
    all_y = [float(v) for ys in series.values() for v in ys]
    if not all_y:
        raise ValueError("no series data")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
        mark = markers[si % len(markers)]
        for xv, yv in zip(xs, ys):
            col = int(round((float(xv) - x_lo) / x_span * (width - 1)))
            row = int(round((float(yv) - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = mark

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    y_hi_s, y_lo_s = f"{y_hi:.6g}", f"{y_lo:.6g}"
    margin = max(len(y_hi_s), len(y_lo_s), len(y_label)) + 1
    for r, line in enumerate(grid):
        if r == 0:
            label = y_hi_s
        elif r == height - 1:
            label = y_lo_s
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        out.write(label.rjust(margin) + " |" + "".join(line) + "\n")
    out.write(" " * margin + " +" + "-" * width + "\n")
    x_axis = f"{x_lo:.6g}".ljust(width - len(f"{x_hi:.6g}")) + f"{x_hi:.6g}"
    out.write(" " * margin + "  " + x_axis + (f"  {x_label}" if x_label else "") + "\n")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    out.write(" " * margin + "  " + legend + "\n")
    return out.getvalue()
