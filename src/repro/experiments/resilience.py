"""E8: resilience — graceful degradation under injected faults.

The paper's coordination argument read backwards: the co-scheduler's
benefit exists only while its inputs (timesync, the control pipe, the
daemon itself) stay healthy.  This experiment injects the failure modes
and checks that the resilience layer (:mod:`repro.faults`) keeps the
system inside the envelope the paper itself measured:

* **timesync loss** — the switch clock register dies mid-run, node clocks
  jump apart and free-drift, the daemons detect the loss and degrade to
  free-running windows.  The run must land *between* the healthy
  co-scheduled run and the uncoordinated (unsynced-windows) baseline —
  the paper's own pathology, reached gracefully instead of hung.
* **message loss** — a lossy fabric under the retransmit layer: the run
  completes (no collective deadlock, the acceptance criterion) at a
  latency premium paid in retransmits.
* **daemon death** — the co-scheduler is killed on every job node; the
  watchdog restarts it and re-registers the tasks, so coordination
  resumes instead of silently decaying to the baseline.

Scale note: runs on the DES at reduced scale with the same time
compression machinery as E4 (misalignment); each run spans several
co-scheduler periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    CoschedFaultSpec,
    FaultConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
)
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.reporting import text_table
from repro.experiments.runner import TrialRunner, TrialSpec
from repro.system import System
from repro.units import ms, s

__all__ = ["ResilienceResult", "run_resilience", "format_resilience"]

#: Message-drop probability of the lossy-fabric scenario.
DROP_PROB = 0.01


@dataclass
class ResilienceResult:
    """Mean Allreduce latency per scenario plus resilience counters."""

    healthy_us: float
    degraded_us: float
    uncoordinated_us: float
    drop_us: float
    death_us: float
    drop_prob: float
    #: Retransmit-layer counters from the message-loss run.
    drop_retransmits: int
    drop_forced: int
    drop_duplicates_dropped: int
    drop_net_drops: int
    #: Watchdog restarts and daemons degraded to free-running.
    death_restarts: int
    degradation_events: int
    n_ranks: int
    time_compression: float

    @property
    def degradation_ratio(self) -> float:
        """Timesync-loss run vs healthy (≥ ~1: coordination was lost)."""
        return self.degraded_us / self.healthy_us

    @property
    def vs_baseline_ratio(self) -> float:
        """Timesync-loss run vs the uncoordinated baseline (≈ 1 is the
        graceful-degradation target; ≫ 1 would mean the fault handling
        itself made things worse than never coordinating at all)."""
        return self.degraded_us / self.uncoordinated_us


def _resilience_trial(params: dict) -> dict:
    """Run one named resilience scenario on its own identically seeded
    system and return the mean latency plus that scenario's resilience
    counters (extracted here: live ``System`` objects never cross the
    process boundary, their counters do).

    Top-level so :class:`~repro.experiments.runner.TrialRunner` workers
    can resolve it by name; the five scenarios are independent DES runs,
    so they parallelise like any other trial list.
    """
    scenario = params["scenario"]
    n_ranks = params["n_ranks"]
    tpn = params["tpn"]
    calls = params["calls"]
    seed = params["seed"]
    time_compression = params["time_compression"]
    #: >1 routes the scenario through conservative parallel DES — same
    #: model, sharded execution; means and counters must not move.
    shards = params.get("shards", 1)

    noise = scale_noise(standard_noise(include_cron=False), time_compression)
    period = s(5) / time_compression
    big_tick = max(1, int(round(25 / time_compression)))
    # Watchdog cadence scaled to the compressed co-scheduler period.
    wd_interval = period / 2.0

    def make_cfg(sync: bool, faults: FaultConfig) -> ClusterConfig:
        cos = CoschedConfig(enabled=True, period_us=period, duty_cycle=0.90, sync_clock=sync)
        kernel = KernelConfig.prototype(big_tick=big_tick)
        if not sync:
            # Without synchronised clocks, cluster-wide tick alignment is
            # fictional too (same rule as E4).
            kernel = kernel.with_options(align_ticks_to_global_time=False)
        return ClusterConfig(
            machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=tpn),
            kernel=kernel,
            cosched=cos,
            mpi=MpiConfig.with_long_polling(progress_threads_enabled=False),
            noise=noise,
            faults=faults,
            seed=seed,
        )

    def build(sync: bool, faults: FaultConfig) -> System:
        return System(make_cfg(sync, faults))

    def run(system: System, n_calls: int = calls) -> float:
        res = run_aggregate_trace(
            system,
            n_ranks,
            tpn,
            AggregateTraceConfig(calls_per_loop=n_calls, compute_between_us=200.0),
        )
        return res.mean_us

    def run_sharded(cfg: ClusterConfig, n_calls: int = calls):
        """Same scenario through run_parallel; returns (mean_us, counters).

        The mean is rank 0's per-call mean — exactly what the serial
        path's ``mean_us`` is — and the counters are the summed per-shard
        fault/resilience counters, both shard-count invariant."""
        import multiprocessing

        import numpy as np

        from repro.sim.parallel import run_parallel

        res = run_parallel(
            cfg,
            n_ranks=n_ranks,
            tasks_per_node=tpn,
            app="repro.apps.aggregate_trace:sharded_app",
            app_params=dict(
                loops=1, calls_per_loop=n_calls, trace_block=32,
                compute_between_us=200.0, payload_bytes=8, record_nodes=(0,),
            ),
            shards=shards,
            # Inside a daemonic trial worker, drive shards in-process
            # (identical event semantics; forking is a wall-clock lever).
            use_processes=(
                False if multiprocessing.current_process().daemon else None
            ),
            job_name="resilience",
        )
        if not res.ok:
            raise RuntimeError(f"sharded {scenario!r} run produced bad values")
        return float(np.mean(res.ranks["0"])), res.counters

    if scenario == "healthy":
        # Healthy co-scheduled run (no faults installed at all).
        if shards > 1:
            return {"mean_us": run_sharded(make_cfg(True, FaultConfig()))[0]}
        return {"mean_us": run(build(sync=True, faults=FaultConfig()))}

    if scenario == "uncoordinated":
        # Uncoordinated baseline: windows never aligned (E4's pathology).
        if shards > 1:
            return {"mean_us": run_sharded(make_cfg(False, FaultConfig()))[0]}
        return {"mean_us": run(build(sync=False, faults=FaultConfig()))}

    if scenario == "degraded":
        # Timesync loss mid-run: clocks jump up to a full period apart and
        # free-drift.  Injected inside the first favored window, so each
        # daemon computes exactly one boundary from the broken grid (the
        # scatter) before detecting the loss at its next cycle start and
        # locking into free-running windows at its scattered phase.
        faults = FaultConfig(
            enabled=True,
            timesync_loss_at_us=1.25 * period,
            clock_jump_us=period,
            clock_drift_rate=1e-4,
            watchdog_interval_us=wd_interval,
        )
        if shards > 1:
            mean, counters = run_sharded(make_cfg(True, faults))
            return {
                "mean_us": mean,
                "degradation_events": counters["degradation_events"],
            }
        system = build(sync=True, faults=faults)
        mean = run(system)
        degradations = sum(
            1 for ev in system.injector.events if ev.kind == "timesync_degraded"
        )
        return {"mean_us": mean, "degradation_events": degradations}

    if scenario == "drop":
        # Message loss with retransmit: must complete (no deadlock).
        faults = FaultConfig(
            enabled=True,
            msg_drop_prob=DROP_PROB,
            retransmit_timeout_us=ms(2),
            retransmit_max_timeout_us=ms(16),
            watchdog_interval_us=wd_interval,
        )
        if shards > 1:
            mean, counters = run_sharded(
                make_cfg(True, faults), n_calls=max(100, calls // 3)
            )
            return {
                "mean_us": mean,
                "retransmits": counters["retransmits"],
                "forced": counters["forced"],
                "duplicates_dropped": counters["duplicates_dropped"],
                "net_drops": counters["net_drops"],
            }
        system = build(sync=True, faults=faults)
        mean = run(system, n_calls=max(100, calls // 3))
        transport = system.coscheds[0].job.world.reliability
        return {
            "mean_us": mean,
            "retransmits": transport.retransmits,
            "forced": transport.forced,
            "duplicates_dropped": transport.duplicates_dropped,
            "net_drops": system.injector.net_plane.drops,
        }

    if scenario == "death":
        # Daemon death on every job node, timed just after the unfavor
        # flip — the worst case: tasks stuck at the unfavored priority
        # until the watchdog restarts the daemon.
        faults = FaultConfig(
            enabled=True,
            cosched_faults=tuple(
                CoschedFaultSpec(node=n, at_us=1.95 * period, kind="die")
                for n in range(-(-n_ranks // tpn))
            ),
            watchdog_interval_us=wd_interval,
        )
        if shards > 1:
            mean, counters = run_sharded(make_cfg(True, faults))
            return {"mean_us": mean, "restarts": counters["watchdog_restarts"]}
        system = build(sync=True, faults=faults)
        mean = run(system)
        restarts = sum(wd.restarts for wd in system.injector.watchdogs)
        return {"mean_us": mean, "restarts": restarts}

    raise ValueError(f"unknown resilience scenario {scenario!r}")


#: Scenario order of the E8 report.
_SCENARIOS = ("healthy", "uncoordinated", "degraded", "drop", "death")


def run_resilience(
    n_ranks: int = 32,
    tpn: int = 8,
    calls: int = 1500,
    seed: int = 31,
    time_compression: float = 50.0,
    journal=None,
    trial_timeout_s: Optional[float] = None,
    jobs: int = 1,
    shards: int = 1,
) -> ResilienceResult:
    """Run the five scenarios (healthy, timesync loss, uncoordinated
    baseline, message loss, daemon death) on identically seeded systems.

    Scale matches E4 (misalignment): each run must span several
    co-scheduler periods, or the co-scheduler never engages and the
    comparison measures tick-phase artifacts instead of coordination.
    Each scenario is one :class:`~repro.experiments.runner.TrialSpec`, so
    ``jobs=5`` runs them concurrently with identical results.

    ``shards > 1`` runs every scenario under conservative parallel DES —
    the whole E8 fault/resilience suite with one flag.  Sharding is an
    execution strategy, not a model change, so the table must not move;
    journal keys carry ``-sh<N>`` so serial and sharded records coexist.
    """
    runner = TrialRunner(jobs=jobs, journal=journal, trial_timeout_s=trial_timeout_s)
    specs = [
        TrialSpec(
            key=f"resilience-{name}-n{n_ranks}-s{seed}"
            + (f"-sh{shards}" if shards > 1 else ""),
            fn="repro.experiments.resilience:_resilience_trial",
            params=dict(
                scenario=name,
                n_ranks=n_ranks,
                tpn=tpn,
                calls=calls,
                seed=seed,
                time_compression=time_compression,
                **({"shards": shards} if shards > 1 else {}),
            ),
        )
        for name in _SCENARIOS
    ]
    records = {
        spec.params["scenario"]: outcome.require()
        for spec, outcome in zip(specs, runner.run(specs))
    }
    return ResilienceResult(
        healthy_us=records["healthy"]["mean_us"],
        degraded_us=records["degraded"]["mean_us"],
        uncoordinated_us=records["uncoordinated"]["mean_us"],
        drop_us=records["drop"]["mean_us"],
        death_us=records["death"]["mean_us"],
        drop_prob=DROP_PROB,
        drop_retransmits=records["drop"]["retransmits"],
        drop_forced=records["drop"]["forced"],
        drop_duplicates_dropped=records["drop"]["duplicates_dropped"],
        drop_net_drops=records["drop"]["net_drops"],
        death_restarts=records["death"]["restarts"],
        degradation_events=records["degraded"]["degradation_events"],
        n_ranks=n_ranks,
        time_compression=time_compression,
    )


def format_resilience(res: ResilienceResult) -> str:
    """Render the E5 table."""
    rows = [
        ("healthy cosched", res.healthy_us, ""),
        ("timesync lost mid-run", res.degraded_us,
         f"{res.degradation_events} daemons degraded"),
        ("uncoordinated baseline", res.uncoordinated_us, ""),
        (f"{res.drop_prob:.0%} message drop + retransmit", res.drop_us,
         f"{res.drop_net_drops} drops, {res.drop_retransmits} retx, "
         f"{res.drop_forced} forced"),
        ("daemon killed on every node", res.death_us,
         f"{res.death_restarts} watchdog restarts"),
    ]
    table = text_table(
        ["scenario", "mean allreduce_us", "resilience activity"],
        rows,
        title=(
            f"E8: fault injection & resilience, {res.n_ranks} ranks "
            f"(compressed {res.time_compression:.0f}x)"
        ),
        floatfmt="{:.1f}",
    )
    return table + (
        f"timesync loss costs {res.degradation_ratio:.2f}x vs healthy, landing at "
        f"{res.vs_baseline_ratio:.2f}x the uncoordinated baseline —\n"
        "coordination degrades to the paper's no-cosched pathology instead of "
        "hanging; lossy runs complete (no collective deadlock);\n"
        "dead daemons are restarted and re-registered by the watchdog.\n"
    )
