"""Figure 4: the sorted Allreduce-time curve and its outlier attribution.

The paper plots 448 sorted Allreduce times sampled from one node of a
944-processor run on the standard kernel and reads off: the fastest calls
within ~10 % of the 350 µs model, the median another ~25 % higher, a mean
of ~2240 µs (≈6× expected), and the slowest call — caused by the
15-minute administrative cron job — accounting for more than half the
total time.  The attribution came from AIX traces naming the interfering
daemons.

Two coordinated runs reproduce both halves:

* **Paper-scale numbers** — the vectorised model at 944 ranks, 448 calls,
  with the cron activation pinned inside the window.
* **Mechanism/attribution** — a DES run (reduced scale, stated) with the
  trace recorder on one node and the cron pinned mid-run;
  :func:`repro.trace.analysis.explain_outliers` then names the culprits
  exactly as §5.3 does (T5 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytic.model import AllreduceSeriesModel
from repro.apps.aggregate_trace import AggregateTraceConfig, run_aggregate_trace
from repro.daemons.catalog import scale_noise, standard_noise
from repro.experiments.common import VANILLA16, make_config
from repro.experiments.reporting import text_table
from repro.system import System
from repro.trace.analysis import explain_outliers
from repro.trace.recorder import TraceRecorder
from repro.units import ms, s

__all__ = ["Fig4Result", "run_fig4", "format_fig4"]


@dataclass
class Fig4Result:
    #: Sorted per-call durations at paper scale (µs).
    sorted_durations_us: np.ndarray
    n_ranks: int
    model_prediction_us: float
    #: DES attribution: (call index, duration, [(daemon, cpu_us), ...]).
    outlier_attribution: list
    #: Daemon named for the single slowest DES outlier.
    slowest_culprit: str
    des_n_ranks: int
    des_time_compression: float

    @property
    def min_us(self) -> float:
        return float(self.sorted_durations_us[0])

    @property
    def median_us(self) -> float:
        return float(np.median(self.sorted_durations_us))

    @property
    def mean_us(self) -> float:
        return float(np.mean(self.sorted_durations_us))

    @property
    def max_us(self) -> float:
        return float(self.sorted_durations_us[-1])

    @property
    def slowest_share(self) -> float:
        """Fraction of total time consumed by the slowest call."""
        return float(self.sorted_durations_us[-1] / self.sorted_durations_us.sum())


def run_fig4(
    n_ranks: int = 944,
    n_calls: int = 448,
    seed: int = 4,
    des_ranks: int = 32,
    des_calls: int = 448,
    des_time_compression: float = 40.0,
) -> Fig4Result:
    """Run the paper-scale sorted-times model plus the DES attribution."""
    # ---- paper-scale numbers (vectorised model, cron pinned) ----------
    noise = standard_noise(include_cron=True, cron_phase_us=ms(150))
    cfg = make_config(VANILLA16, n_ranks, seed=seed, noise=noise)
    model = AllreduceSeriesModel(cfg, n_ranks, 16, seed=seed)
    series = model.run_series(n_calls, compute_between_us=200.0)
    sorted_durs = np.sort(series.durations_us)

    # Zero-noise model prediction (the paper's ~350 µs yardstick).
    from repro.config import MpiConfig, NoiseConfig

    quiet = cfg.replace(noise=NoiseConfig(), mpi=MpiConfig.with_long_polling())
    qmodel = AllreduceSeriesModel(quiet, n_ranks, 16, seed=seed)
    prediction = qmodel.run_series(32, compute_between_us=0.0).median_us

    # ---- DES attribution run ------------------------------------------
    des_noise = scale_noise(
        standard_noise(include_cron=False), des_time_compression
    )
    # Pin one cron hit mid-run (its true period exceeds the DES window).
    from repro.daemons.catalog import cron_health_check

    # The cron's service is compressed less than its period so it remains
    # the dominant outlier, as on the real machine (620 ms against ms-scale
    # daemons; here 120 ms against the compressed ecology's ~10 ms tails).
    des_noise = des_noise.__class__(
        daemons=des_noise.daemons + (cron_health_check(phase_us=ms(60), service_us=ms(120)),)
    )
    trace = TraceRecorder(enabled=True, nodes=[0])
    des_cfg = make_config(VANILLA16, des_ranks, seed=seed, noise=des_noise)
    system = System(des_cfg, trace=trace)
    result = run_aggregate_trace(
        system,
        des_ranks,
        16,
        AggregateTraceConfig(calls_per_loop=des_calls, compute_between_us=150.0),
        horizon_us=s(120),
    )
    # Windows = per-call intervals of rank 0 (node 0): reconstruct from the
    # recorded durations and the trace marks.
    durs = result.node0_durations_us[0]
    # Build windows by replaying rank-0 call start/end from durations and
    # the known inter-call compute: approximate via cumulative sum anchored
    # at job start.  Exact bracketing uses the marks written every block.
    windows = []
    t = 0.0
    for d in durs:
        windows.append((t, t + d))
        t += d + 150.0
    threshold = float(np.median(durs) * 4.0)
    attribution = explain_outliers(trace, windows, node=0, threshold_us=threshold)
    slowest = attribution[0][2][0][0] if attribution and attribution[0][2] else "(none)"

    return Fig4Result(
        sorted_durations_us=sorted_durs,
        n_ranks=n_ranks,
        model_prediction_us=prediction,
        outlier_attribution=attribution[:10],
        slowest_culprit=slowest,
        des_n_ranks=des_ranks,
        des_time_compression=des_time_compression,
    )


def format_fig4(res: Fig4Result) -> str:
    """Render the Figure 4 quantile table and attribution list."""
    d = res.sorted_durations_us
    deciles = [d[int(q * (len(d) - 1))] for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)]
    table = text_table(
        ["quantile", "allreduce_us"],
        list(zip(("min", "p25", "median", "p75", "p90", "p99", "max"), deciles)),
        title=f"Figure 4 analogue: sorted Allreduce times, {res.n_ranks} ranks",
    )
    lines = [
        table,
        f"model prediction      : {res.model_prediction_us:.0f} us",
        f"fastest vs prediction : {res.min_us / res.model_prediction_us:.2f}x",
        f"median vs fastest     : {res.median_us / res.min_us:.2f}x",
        f"mean vs prediction    : {res.mean_us / res.model_prediction_us:.2f}x",
        f"slowest call share    : {100 * res.slowest_share:.1f}% of total",
        "",
        f"DES attribution ({res.des_n_ranks} ranks, noise time-compressed "
        f"{res.des_time_compression:.0f}x):",
    ]
    for idx, dur, top in res.outlier_attribution[:5]:
        culprits = ", ".join(f"{name} ({cpu_us:.0f}us)" for name, cpu_us in top)
        lines.append(f"  call {idx:4d}: {dur:8.0f} us  <- {culprits or 'unattributed'}")
    lines.append(f"slowest outlier culprit: {res.slowest_culprit}")
    return "\n".join(lines) + "\n"
