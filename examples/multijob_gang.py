#!/usr/bin/env python
"""Co-located parallel jobs: why coordination granularity matters.

The paper situates its dedicated-job co-scheduler against *gang
schedulers* (§6, category 1) — systems that multi-program several parallel
jobs by rotating whole-machine time slots.  This example shows both sides
of that story:

1. two fine-grain Allreduce jobs timesharing the same CPUs with no
   coordination: every collective waits for straggler ranks that happen
   to be descheduled, and per-operation latency explodes;
2. the same pair under gang scheduling: clean collectives inside each
   slot;
3. the limit the paper pushes past: even a gang-scheduled (or dedicated)
   job still suffers the *intra-slot* interference of daemons and ticks —
   which is what the prototype kernel + co-scheduler attack.

Run:  python examples/multijob_gang.py
"""

import numpy as np

from repro import ClusterConfig, KernelConfig, MachineConfig, MpiConfig
from repro.apps.aggregate_trace import AggregateTraceConfig, aggregate_trace_body
from repro.cosched.gang import GangConfig, GangScheduler
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import format_time, ms, s

N_RANKS, TPN, CALLS = 16, 8, 200


def run_pair(label: str, gang: GangConfig | None) -> None:
    cluster = Cluster(
        ClusterConfig(
            machine=MachineConfig(n_nodes=2, cpus_per_node=8),
            mpi=MpiConfig(progress_threads_enabled=False),
            kernel=KernelConfig(),
            seed=17,
        )
    )
    placement = cluster.place(N_RANKS, TPN)
    sinks, jobs = [], []
    for j in range(2):
        sink: dict = {}
        sinks.append(sink)
        body = aggregate_trace_body(
            AggregateTraceConfig(calls_per_loop=CALLS, compute_between_us=200.0),
            sink,
            node0_ranks=set(),
        )
        jobs.append(MpiJob(cluster, placement, body, config=cluster.config.mpi, name=f"job{j}"))
    if gang is not None:
        GangScheduler(cluster, jobs, gang)
    sim = cluster.sim
    while not all(job.done for job in jobs) and sim.now < s(300):
        sim.run_until(sim.now + s(1))
    per_op = float(np.mean([np.mean(sink[0][0]) for sink in sinks]))
    makespan = max(job.finish_time for job in jobs)
    print(
        f"{label:<32} mean allreduce {format_time(per_op):>10}   "
        f"makespan {format_time(makespan):>10}"
    )


def main() -> None:
    print(f"Two {N_RANKS}-rank Allreduce jobs sharing the same 16 CPUs\n")
    run_pair("uncoordinated timeshare", None)
    run_pair("gang scheduled (200 ms slots)", GangConfig(slot_us=ms(200)))
    print(
        "\nGang slots fix *inter-job* interference; the paper's co-scheduler"
        "\ntargets what remains inside a slot — daemons and ticks against a"
        "\nsingle dedicated job (see examples/quickstart.py)."
    )


if __name__ == "__main__":
    main()
