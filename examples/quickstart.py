#!/usr/bin/env python
"""Quickstart: build a noisy cluster, run an MPI job, co-schedule it.

This walks the whole public API in one sitting:

1. configure a 4-node × 8-CPU machine with the calibrated AIX daemon
   ecology (time-compressed so effects show in a seconds-long run);
2. run a loop of Allreduces on the stock ("vanilla") kernel and watch the
   interference tail;
3. run the same job under the paper's prototype kernel + co-scheduler and
   watch the tail collapse.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AggregateTraceConfig,
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    System,
    run_aggregate_trace,
    scale_noise,
    standard_noise,
)
from repro.units import format_time, s

# Discrete-event runs last simulated seconds, so compress the daemon
# timescale (periods / TIME_SCALE); see repro.daemons.catalog.scale_noise.
TIME_SCALE = 30.0
N_RANKS, TASKS_PER_NODE = 32, 8
CALLS = 400


def run(label: str, kernel: KernelConfig, cosched: CoschedConfig) -> None:
    config = ClusterConfig(
        machine=MachineConfig(n_nodes=4, cpus_per_node=8),
        kernel=kernel,
        cosched=cosched,
        noise=scale_noise(standard_noise(include_cron=False), TIME_SCALE),
        seed=42,
    )
    system = System(config)
    result = run_aggregate_trace(
        system,
        N_RANKS,
        TASKS_PER_NODE,
        AggregateTraceConfig(calls_per_loop=CALLS, compute_between_us=200.0),
    )
    d = result.durations_us
    print(
        f"{label:<22} mean {format_time(result.mean_us):>9}   "
        f"median {format_time(result.median_us):>9}   "
        f"p99 {format_time(float(np.percentile(d, 99))):>9}   "
        f"max {format_time(result.max_us):>9}   "
        f"values_ok={result.values_ok}"
    )


def main() -> None:
    print(f"Allreduce x{CALLS} on {N_RANKS} ranks, noise compressed {TIME_SCALE:.0f}x\n")

    # 1. Stock AIX semantics: staggered 10 ms ticks, per-CPU daemon
    #    queues, preemption noticed at tick boundaries.
    run("vanilla kernel", KernelConfig.vanilla(), CoschedConfig(enabled=False))

    # 2. The paper's full treatment: big ticks, simultaneous cluster-
    #    aligned ticks, global daemon queue, real-time scheduling fixes,
    #    plus the priority-cycling co-scheduler (period compressed with
    #    the noise; big tick compressed so flips stay on the grid).
    run(
        "prototype + cosched",
        KernelConfig.prototype(big_tick=2),
        CoschedConfig(enabled=True, period_us=s(5) / TIME_SCALE, duty_cycle=0.90),
    )

    print("\nThe prototype trims the mean and collapses the interference tail —")
    print("the paper's Figure 6 effect, at discrete-event scale.")


if __name__ == "__main__":
    main()
