#!/usr/bin/env python
"""Co-scheduling a real application: the ALE3D I/O tuning story.

Walks the paper's §5.3 production episode end to end, including the
administrative machinery:

1. parse an ``/etc/poe.priority`` file with two priority classes — the
   naive benchmark settings (favored 30) and the tuned ones the ALE3D
   runs ended up with (favored 41, just above GPFS's mmfsd at 40);
2. run the ALE3D proxy (timesteps of neighbour exchange + reductions,
   I/O phases through the node I/O service) under no co-scheduling, the
   naive class, and the tuned class;
3. show that the naive class *slows the application down* by starving
   the I/O daemons inside the favored window, while the tuned class
   delivers the paper's ~24% improvement.

Run:  python examples/ale3d_io_tuning.py
"""

from repro import (
    Ale3dConfig,
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    PoePriorityFile,
    System,
    run_ale3d,
    scale_noise,
    standard_noise,
)
from repro.units import s

TIME_SCALE = 25.0
IO_PRIORITY = 40  # mmfsd service path

POE_PRIORITY = """
# class     user   favored unfavored period(s) duty(%)
benchmark   jones  30      100       5         90
production  jones  41      100       5         90   # favored just above mmfsd(40)
"""


def run(label: str, cosched: CoschedConfig | None) -> tuple[float, float]:
    config = ClusterConfig(
        machine=MachineConfig(n_nodes=2, cpus_per_node=16),
        kernel=KernelConfig.prototype(big_tick=1) if cosched else KernelConfig(),
        cosched=cosched if cosched else CoschedConfig(enabled=False),
        noise=scale_noise(standard_noise(include_cron=False), TIME_SCALE),
        seed=9,
    )
    system = System(config, with_io=True, io_priority=IO_PRIORITY)
    result = run_ale3d(system, 32, 16, Ale3dConfig(timesteps=40), horizon_us=s(600))
    print(
        f"{label:<34} elapsed {result.elapsed_us / 1e6:7.3f} s   "
        f"of which I/O {result.io_time_us / 1e6:6.3f} s"
    )
    return result.elapsed_us, result.io_time_us


def main() -> None:
    admin = PoePriorityFile.parse(POE_PRIORITY)
    # MP_PRIORITY=benchmark / MP_PRIORITY=production, as a user would set.
    naive_rec = admin.match("benchmark", "jones")
    tuned_rec = admin.match("production", "jones")
    compressed = dict(period_us=s(5) / TIME_SCALE)

    print(f"ALE3D proxy, 32 ranks, noise/schedule compressed {TIME_SCALE:.0f}x\n")
    vanilla, _ = run("vanilla (no co-scheduling)", None)
    naive, _ = run(
        f"MP_PRIORITY=benchmark (fav {naive_rec.favored})",
        naive_rec.to_config(**compressed),
    )
    tuned, _ = run(
        f"MP_PRIORITY=production (fav {tuned_rec.favored})",
        tuned_rec.to_config(**compressed),
    )

    print()
    print(f"naive co-scheduling vs vanilla : {naive / vanilla:.2f}x "
          f"(paper: 'the co-scheduler actually slowed it down')")
    print(f"tuned co-scheduling gain       : {100 * (1 - tuned / vanilla):.0f}% "
          f"(paper: 24%, 1315 s -> 1152 s)")


if __name__ == "__main__":
    main()
