#!/usr/bin/env python
"""Noise anatomy: trace a node, find slow collectives, name the culprits.

Reproduces the paper's §5.3 investigation workflow (their Figure 4) on the
discrete-event simulator:

1. run ``aggregate_trace`` on a vanilla-kernel cluster with the full daemon
   ecology plus a pinned administrative cron hit;
2. record every dispatch interval on node 0 with the trace recorder (the
   AIX ``trace`` facility analogue);
3. sort the per-call Allreduce times, pick the outliers, and attribute the
   CPU time inside each slow window to the daemons that consumed it.

Run:  python examples/noise_anatomy.py
"""

import numpy as np

from repro import (
    AggregateTraceConfig,
    ClusterConfig,
    MachineConfig,
    System,
    TraceRecorder,
    run_aggregate_trace,
    scale_noise,
    standard_noise,
)
from repro.daemons.catalog import cron_health_check
from repro.config import NoiseConfig
from repro.trace import explain_outliers
from repro.units import format_time, ms

TIME_SCALE = 40.0
N_RANKS, TASKS_PER_NODE, CALLS = 32, 16, 448


def main() -> None:
    # Full ecology, compressed; pin one cron burst mid-run (its real
    # 15-minute period would never land inside a seconds-long window).
    noise = scale_noise(standard_noise(include_cron=False), TIME_SCALE)
    noise = NoiseConfig(
        daemons=noise.daemons + (cron_health_check(phase_us=ms(60), service_us=ms(120)),)
    )
    trace = TraceRecorder(enabled=True, nodes=[0])
    config = ClusterConfig(
        machine=MachineConfig(n_nodes=2, cpus_per_node=16), noise=noise, seed=7
    )
    system = System(config, trace=trace)
    result = run_aggregate_trace(
        system,
        N_RANKS,
        TASKS_PER_NODE,
        AggregateTraceConfig(calls_per_loop=CALLS, compute_between_us=150.0),
    )

    durs = result.node0_durations_us[0]
    ordered = np.sort(durs)
    print(f"{CALLS} Allreduce calls on rank 0 (node 0), {N_RANKS} ranks, vanilla kernel")
    for q, v in zip(
        ("min", "p25", "median", "p75", "p90", "p99", "max"),
        np.percentile(ordered, [0, 25, 50, 75, 90, 99, 100]),
    ):
        print(f"  {q:>6}: {format_time(float(v)):>10}")
    print(
        f"  slowest call = {100 * ordered[-1] / ordered.sum():.1f}% of total "
        f"(paper: the cron outlier alone exceeded half)"
    )

    # Rebuild rank-0's call windows and attribute the slow ones.
    windows, t = [], 0.0
    for d in durs:
        windows.append((t, t + d))
        t += d + 150.0
    threshold = float(np.median(durs)) * 4.0
    print(f"\nOutliers (> {format_time(threshold)}) and the CPU thieves inside them:")
    for idx, dur, top in explain_outliers(trace, windows, node=0, threshold_us=threshold)[:8]:
        culprits = ", ".join(f"{name} ({format_time(cpu)})" for name, cpu in top)
        print(f"  call {idx:4d}  {format_time(dur):>10}  <- {culprits}")


if __name__ == "__main__":
    main()
