#!/usr/bin/env python
"""Paper-scale scaling study: Figures 3, 5 and 6 in one run.

Sweeps Allreduce latency over 128–1728 processors for the three machine
configurations the paper contrasts — vanilla 16 tasks/node, the 15/node
workaround, and the prototype kernel + co-scheduler — on the vectorised
large-scale model, then fits the scaling lines exactly as Figure 6 does.

Run:  python examples/scaling_study.py          (~1 minute)
"""

from repro.analytic.fits import compare_fits
from repro.experiments.common import (
    PROTO16,
    VANILLA15,
    VANILLA16,
    allreduce_sweep,
)
from repro.experiments.reporting import text_table


def main() -> None:
    sweeps = {}
    for scenario in (VANILLA16, VANILLA15, PROTO16):
        counts = (128, 256, 512, 944, 1360, 1728)
        if scenario.tasks_per_node == 15:
            counts = tuple(15 * (-(-n // 16)) for n in counts)
        sweeps[scenario.name] = allreduce_sweep(
            scenario, proc_counts=counts, n_calls=300, n_seeds=3
        )

    rows = []
    v16, v15, p16 = sweeps["vanilla16"], sweeps["vanilla15"], sweeps["proto16"]
    for i in range(len(v16.proc_counts)):
        rows.append(
            (
                int(v16.proc_counts[i]),
                float(v16.mean_us[i]),
                float(v15.mean_us[i]),
                float(p16.mean_us[i]),
                float(v16.mean_us[i] / p16.mean_us[i]),
            )
        )
    print(
        text_table(
            ["procs(16/node)", "vanilla16_us", "vanilla15_us", "proto16_us", "v16/proto"],
            rows,
            title="Allreduce mean latency vs processor count (3 seeds each)",
        )
    )

    print("Fitted lines (paper: vanilla 0.70x+166, prototype 0.22x+210):")
    for name, sweep in sweeps.items():
        lin, log, winner = compare_fits(sweep.proc_counts, sweep.mean_us)
        print(f"  {name:<10} {lin}   best fit: {winner}")
    ratio = (
        compare_fits(v16.proc_counts, v16.mean_us)[0].slope
        / compare_fits(p16.proc_counts, p16.mean_us)[0].slope
    )
    print(f"\nslope ratio vanilla/prototype: {ratio:.1f}x (paper: ~3.2x, 'over 300% speedup')")


if __name__ == "__main__":
    main()
