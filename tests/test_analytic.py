"""The vectorised model: schedule structure, noise injection, fits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.fits import compare_fits, fit_linear, fit_log
from repro.analytic.model import AllreduceSeriesModel
from repro.analytic.noise import NoiseInjector, SPARE_ABSORPTION
from repro.config import (
    ClusterConfig,
    CoschedConfig,
    KernelConfig,
    MachineConfig,
    MpiConfig,
    NoiseConfig,
)
from repro.daemons.catalog import standard_noise
from repro.experiments.common import PROTO16, VANILLA16, make_config


def quiet_config(n_ranks, tpn=16, **kw):
    base = dict(
        machine=MachineConfig(n_nodes=-(-n_ranks // tpn), cpus_per_node=16),
        mpi=MpiConfig.with_long_polling(),
        noise=NoiseConfig(),
        kernel=KernelConfig(tick_cost_us=0.0),
    )
    base.update(kw)
    return ClusterConfig(**base)


class TestScheduleStructure:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 13, 16, 100])
    def test_round_count_is_log2_pof2(self, n):
        m = AllreduceSeriesModel(quiet_config(n), n, 16)
        pof2 = 1 << (n.bit_length() - 1)
        assert m.pof2 == pof2
        assert len(m.rounds) == pof2.bit_length() - 1
        assert m.rem == n - pof2

    def test_partner_arrays_are_involutions(self):
        m = AllreduceSeriesModel(quiet_config(13), 13, 16)
        for partner in m.rounds:
            for i in range(13):
                p = partner[i]
                if p >= 0:
                    assert partner[p] == i  # symmetric exchange

    def test_folded_evens_idle_in_rd_rounds(self):
        m = AllreduceSeriesModel(quiet_config(13), 13, 16)
        # rem = 5: ranks 0,2,4,6,8 fold out.
        for partner in m.rounds:
            for r in (0, 2, 4, 6, 8):
                assert partner[r] == -1

    def test_requires_two_ranks(self):
        with pytest.raises(ValueError):
            AllreduceSeriesModel(quiet_config(2), 1, 16)


class TestZeroNoiseBaseline:
    def test_latency_is_logarithmic(self):
        """Without noise, mean time grows with log2(N), not N."""
        means = []
        ns = [64, 256, 1024]
        for n in ns:
            m = AllreduceSeriesModel(quiet_config(n), n, 16, seed=1)
            means.append(m.run_series(50).mean_us)
        lin, log, winner = compare_fits(ns, means)
        assert winner == "log"

    def test_zero_noise_is_deterministic_shape(self):
        cfg = quiet_config(64)
        a = AllreduceSeriesModel(cfg, 64, 16, seed=1).run_series(20)
        b = AllreduceSeriesModel(cfg, 64, 16, seed=2).run_series(20)
        assert a.mean_us == pytest.approx(b.mean_us, rel=1e-9)
        assert a.std_us == pytest.approx(0.0, abs=1e-6)

    def test_magnitude_near_paper_model(self):
        """~10 rounds x ~35 us ≈ 350 us at 944 ranks (paper's yardstick)."""
        cfg = quiet_config(944)
        res = AllreduceSeriesModel(cfg, 944, 16, seed=0).run_series(10)
        assert 150 <= res.mean_us <= 600


class TestNoiseInjector:
    def test_spare_cpu_thins_daemon_rate(self):
        cfg = make_config(VANILLA16, 64, seed=0)
        inj16 = NoiseInjector(cfg, 64, 16, np.random.default_rng(0))
        inj15 = NoiseInjector(cfg, 60, 15, np.random.default_rng(0))
        d16 = {s.name: s for s in inj16.sources}
        d15 = {s.name: s for s in inj15.sources}
        assert not d16["mld"].absorbed_by_spare
        assert d15["mld"].absorbed_by_spare
        assert 0.0 < SPARE_ABSORPTION < 1.0

    def test_timer_thread_source_present_unless_long_polling(self):
        cfg = make_config(VANILLA16, 64, seed=0)
        inj = NoiseInjector(cfg, 64, 16, np.random.default_rng(0))
        names = {s.name for s in inj.sources}
        assert "mpi_timer" in names
        cfg2 = cfg.replace(mpi=MpiConfig.with_long_polling())
        inj2 = NoiseInjector(cfg2, 64, 16, np.random.default_rng(0))
        timer = [s for s in inj2.sources if s.name == "mpi_timer"][0]
        assert timer.rate_per_us < 1e-7  # 400 s period

    def test_favored_window_silences_deferrable(self):
        cfg = make_config(PROTO16, 64, seed=0)
        inj = NoiseInjector(cfg, 64, 16, np.random.default_rng(0))
        inj.force_window = "favored"
        totals = sum(inj.sample_round(0.0, 1e6).sum() for _ in range(5))
        inj.force_window = "unfavored"
        totals_unf = sum(inj.sample_round(0.0, 1e6).sum() for _ in range(5))
        assert totals < totals_unf

    def test_interrupts_hit_even_in_favored_window(self):
        cfg = make_config(PROTO16, 64, seed=0)
        inj = NoiseInjector(cfg, 64, 16, np.random.default_rng(1))
        inj.force_window = "favored"
        total = sum(inj.sample_round(0.0, 1e6).sum() for _ in range(10))
        assert total > 0.0  # caddpin/phxentdd are undeferrable

    def test_window_stall_includes_notice_latency(self):
        proto = make_config(PROTO16, 64, seed=0)
        inj = NoiseInjector(proto, 64, 16, np.random.default_rng(0))
        assert np.all(inj.window_stall >= proto.kernel.ipi_latency_us)
        # Without the RT fixes the notice penalty is half a tick.
        novo = proto.replace(
            kernel=proto.kernel.with_options(fix_reverse_preemption=False)
        )
        inj2 = NoiseInjector(novo, 64, 16, np.random.default_rng(0))
        assert inj2.window_stall.min() > inj.window_stall.min()

    def test_cron_hits_land_on_grid(self):
        from repro.daemons.catalog import cron_health_check

        noise = NoiseConfig(daemons=(cron_health_check(period_us=1e6, phase_us=5e5),))
        cfg = make_config(VANILLA16, 32, seed=0, noise=noise)
        inj = NoiseInjector(cfg, 32, 16, np.random.default_rng(0))
        assert inj.cron_hits(0.0, 4e5).sum() == 0.0
        hit = inj.cron_hits(4e5, 6e5)
        assert hit.sum() > 0
        # One victim per node.
        assert (hit > 0).sum() == 2


class TestNoisyScaling:
    def test_noise_turns_scaling_linear(self):
        from repro.experiments.common import allreduce_sweep

        sweep = allreduce_sweep(
            VANILLA16, proc_counts=(128, 256, 512, 944, 1360, 1728),
            n_calls=200, n_seeds=2,
        )
        lin, log, winner = compare_fits(sweep.proc_counts, sweep.mean_us)
        assert winner == "linear"
        assert lin.slope > 0.2

    def test_prototype_beats_vanilla_at_scale(self):
        n = 944
        v = AllreduceSeriesModel(make_config(VANILLA16, n, seed=3), n, 16, seed=1)
        p = AllreduceSeriesModel(make_config(PROTO16, n, seed=3), n, 16, seed=1)
        vm = v.run_series(200, 200.0).mean_us
        pm = p.run_series(200, 200.0).mean_us
        assert vm / pm > 1.8  # paper: ~3x

    def test_15tpn_beats_16tpn_vanilla(self):
        from repro.experiments.common import VANILLA15

        v16 = AllreduceSeriesModel(make_config(VANILLA16, 944, seed=3), 944, 16, seed=1)
        v15 = AllreduceSeriesModel(make_config(VANILLA15, 945, seed=3), 945, 15, seed=1)
        assert v16.run_series(200, 200.0).mean_us > v15.run_series(200, 200.0).mean_us

    def test_series_reproducible(self):
        cfg = make_config(VANILLA16, 128, seed=5)
        a = AllreduceSeriesModel(cfg, 128, 16, seed=9).run_series(50, 100.0)
        b = AllreduceSeriesModel(cfg, 128, 16, seed=9).run_series(50, 100.0)
        assert np.array_equal(a.durations_us, b.durations_us)

    def test_stratified_split_counts(self):
        cfg = make_config(PROTO16, 64, seed=0)
        res = AllreduceSeriesModel(cfg, 64, 16, seed=0).run_series(100, 100.0)
        assert len(res.durations_us) == 100


class TestFits:
    def test_linear_fit_exact(self):
        x = np.array([1, 2, 3, 4.0])
        y = 2.0 * x + 5.0
        fit = fit_linear(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_log_fit_exact(self):
        x = np.array([2, 4, 8, 16.0])
        y = 3.0 * np.log2(x) + 1.0
        fit = fit_log(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.kind == "log"

    def test_predict(self):
        fit = fit_linear([1, 2, 3], [2, 4, 6])
        assert fit.predict([10])[0] == pytest.approx(20.0)

    def test_compare_picks_generator(self):
        x = np.array([2, 4, 8, 16, 32, 64.0])
        _, _, w1 = compare_fits(x, 0.7 * x + 166)
        assert w1 == "linear"
        _, _, w2 = compare_fits(x, 30 * np.log2(x) + 50)
        assert w2 == "log"

    def test_too_few_points_raise(self):
        with pytest.raises(ValueError):
            fit_linear([1], [2])

    def test_str_rendering(self):
        s = str(fit_linear([1, 2, 3], [2, 4, 6]))
        assert "R²" in s and "y =" in s

    @settings(max_examples=50)
    @given(
        slope=st.floats(min_value=-10, max_value=10, allow_nan=False),
        intercept=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_linear_fit_recovers_any_line(self, slope, intercept):
        x = np.array([1.0, 2.0, 5.0, 9.0, 17.0])
        fit = fit_linear(x, slope * x + intercept)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.intercept == pytest.approx(intercept, abs=1e-5)
