"""Kernel edge cases: self-renice preemption, zero sleeps, yields, spin races."""

import pytest

from repro.config import ClusterConfig, KernelConfig, MachineConfig, MpiConfig, NoiseConfig
from repro.kernel.thread import Block, Compute, SetPriority, Sleep, SleepUntil, SpinWait, ThreadState, YieldCpu
from repro.units import ms, s
from tests.conftest import make_harness


def kernel(**kw):
    base = dict(context_switch_us=0.0, tick_cost_us=0.0)
    base.update(kw)
    return KernelConfig(**base)


class TestSelfRenicePreemption:
    def test_lowering_own_priority_yields_to_waiter_mid_body(self):
        """A thread that renices itself below a waiter is preempted at the
        syscall boundary and its generator resumes later — the
        resume_advance continuation path."""
        h = make_harness(n_cpus=1, kernel=kernel())
        order = []

        def selfless():
            yield Compute(100.0)
            order.append("selfless-before")
            yield SetPriority(90)  # below the waiter: preempted right here
            order.append("selfless-after")
            yield Compute(50.0)
            order.append("selfless-done")

        def waiter():
            yield Compute(200.0)
            order.append("waiter-done")

        t = h.spawn(selfless(), priority=30, cpu=0)
        h.spawn(waiter(), priority=60, cpu=0, allow_steal=False)
        h.run(ms(50))
        assert order == ["selfless-before", "waiter-done", "selfless-after", "selfless-done"]
        assert t.priority == 90
        assert t.finished

    def test_raising_own_priority_keeps_cpu(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        order = []

        def riser():
            yield Compute(100.0)
            yield SetPriority(10)
            yield Compute(100.0)
            order.append("riser-done")

        def other():
            yield Compute(50.0)
            order.append("other-done")

        h.spawn(riser(), priority=60, cpu=0)
        h.spawn(other(), priority=60, cpu=0, allow_steal=False)
        h.run(ms(50))
        assert order == ["riser-done", "other-done"]


class TestDegenerateRequests:
    def test_zero_sleep_rounds_to_boundary(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        done = []

        def body():
            yield Sleep(0.0)
            done.append(h.sim.now)

        h.spawn(body(), tick_quantized=False)
        h.run(ms(1))
        assert done == [0.0]

    def test_sleep_until_now(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        done = []

        def body():
            yield Compute(10.0)
            yield SleepUntil(5.0)  # already past
            done.append(h.sim.now)

        h.spawn(body(), tick_quantized=False)
        h.run(ms(1))
        assert done == [10.0]

    def test_yield_with_empty_queue_continues(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        done = []

        def body():
            yield Compute(10.0)
            yield YieldCpu()
            yield Compute(10.0)
            done.append(h.sim.now)

        h.spawn(body())
        h.run(ms(1))
        assert done == [20.0]

    def test_repeated_yields_bounded_events(self):
        h = make_harness(n_cpus=1, kernel=kernel())

        def body():
            for _ in range(100):
                yield YieldCpu()
            yield Compute(1.0)

        h.spawn(body())
        h.run(ms(1))  # must not blow the event budget or recurse
        assert h.sim.events_processed < 2_000

    def test_empty_generator_finishes_immediately(self):
        h = make_harness(kernel=kernel())

        def body():
            if False:
                yield Compute(1.0)

        t = h.spawn(body())
        assert t.finished


class TestSpinRaces:
    def test_double_spinner_same_key_rejected(self):
        """The MPI layer guarantees one waiter per key; the guard raises."""
        from repro.machine import Cluster
        from repro.mpi.world import MpiWorld

        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=1, cpus_per_node=2),
            mpi=MpiConfig(progress_threads_enabled=False),
            noise=NoiseConfig(),
        )
        cluster = Cluster(cfg)
        from repro.machine.cluster import Placement

        world = MpiWorld(cluster, Placement(2, 2), cfg.mpi)
        reg = world._make_spin_register((0, 1, "t"))

        class FakeThread:
            pass

        assert reg(FakeThread()) is None
        with pytest.raises(RuntimeError, match="second spinner"):
            reg(FakeThread())

    def test_spin_deliver_on_non_spinner_raises(self, harness):
        t = harness.spawn(harness.worker("a", [1000.0]))
        with pytest.raises(RuntimeError):
            harness.sched.spin_deliver(t, 1)


class TestSelfMessaging:
    def test_rank_can_send_to_itself(self):
        from repro.machine import Cluster
        from repro.mpi.world import MpiJob

        cfg = ClusterConfig(
            machine=MachineConfig(n_nodes=1, cpus_per_node=2),
            mpi=MpiConfig(progress_threads_enabled=False),
            noise=NoiseConfig(),
        )
        cluster = Cluster(cfg)
        got = {}

        def body(rank, api):
            yield from api.send(rank, "self", rank * 7)
            got[rank] = yield from api.recv(rank, "self")

        job = MpiJob(cluster, cluster.place(2, 2), body, config=cfg.mpi)
        job.run(horizon_us=s(1))
        assert got == {0: 0, 1: 7}
