"""SpinWait semantics: poll-mode waiting, preemption of spinners,
equal-priority rotation against timer threads."""

import pytest

from repro.config import KernelConfig
from repro.kernel.thread import Block, Compute, Sleep, SpinWait, ThreadState
from repro.units import ms
from tests.conftest import make_harness


def kernel(**kw):
    base = dict(context_switch_us=0.0, tick_cost_us=0.0)
    base.update(kw)
    return KernelConfig(**base)


class SpinChannel:
    """Test double for the MPI mailbox: deliver(value) satisfies a spin."""

    def __init__(self, harness):
        self.h = harness
        self.value = None
        self.waiter = None

    def register(self, thread):
        if self.value is not None:
            v, self.value = self.value, None
            return v
        self.waiter = thread
        return None

    def deliver(self, value):
        if self.waiter is not None:
            w, self.waiter = self.waiter, None
            self.h.sched.spin_deliver(w, value)
        else:
            self.value = value


class TestSpinBasics:
    def test_spin_already_satisfied_short_circuits(self):
        h = make_harness(kernel=kernel())
        ch = SpinChannel(h)
        ch.deliver("x")

        def body():
            got = yield SpinWait(ch.register)
            h.mark(f"got:{got}")

        h.spawn(body())
        h.run(100.0)
        assert h.log == [(0.0, "got:x")]

    def test_spinner_occupies_cpu(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        ch = SpinChannel(h)

        def spinner():
            got = yield SpinWait(ch.register)
            h.mark(f"got:{got}")

        t = h.spawn(spinner())
        h.spawn(h.worker("other", [50.0]), cpu=0, allow_steal=False)
        h.run(ms(5))
        # The spinner holds the CPU; equal-priority work waits.
        assert t.state is ThreadState.RUNNING
        assert h.times("other") == []
        h.sim.schedule_at(ms(5), ch.deliver, "v")
        h.run(ms(6))
        assert h.log[0][1] == "got:v"
        assert h.times("other") == [pytest.approx(ms(5) + 50.0)]

    def test_spin_delivery_advances_immediately(self):
        h = make_harness(kernel=kernel())
        ch = SpinChannel(h)

        def body():
            got = yield SpinWait(ch.register)
            yield Compute(10.0)
            h.mark(f"done:{got}")

        h.spawn(body())
        h.sim.schedule_at(500.0, ch.deliver, 42)
        h.run(1000.0)
        assert h.log == [(510.0, "done:42")]

    def test_spin_time_counted_as_cpu_time(self):
        h = make_harness(kernel=kernel())
        ch = SpinChannel(h)

        def body():
            yield SpinWait(ch.register)

        t = h.spawn(body())
        h.sim.schedule_at(700.0, ch.deliver, 1)
        h.run(1000.0)
        assert t.stats.cpu_time_us == pytest.approx(700.0)


class TestSpinnerPreemption:
    def test_daemon_preempts_spinner(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        ch = SpinChannel(h)

        def spinner():
            got = yield SpinWait(ch.register)
            yield Compute(10.0)
            h.mark("spin-done")

        t = h.spawn(spinner(), priority=60)

        def daemon():
            yield Sleep(ms(15))
            yield Compute(200.0)
            h.mark("daemon-done")

        h.spawn(daemon(), priority=56, cpu=0, allow_steal=False)
        h.run(ms(60))
        # Daemon wakes at the 20ms boundary (quantised) and preempts the
        # spinner immediately (same-CPU tick context).
        assert h.times("daemon-done") == [pytest.approx(ms(20) + 200.0)]
        assert t.stats.preemptions == 1

    def test_message_arriving_while_preempted_is_kept(self):
        h = make_harness(n_cpus=1, kernel=kernel())
        ch = SpinChannel(h)

        def spinner():
            got = yield SpinWait(ch.register)
            yield Compute(10.0)
            h.mark(f"got:{got}")

        h.spawn(spinner(), priority=60)

        def daemon():
            yield Sleep(ms(15))
            yield Compute(ms(5))

        h.spawn(daemon(), priority=56, cpu=0, allow_steal=False)
        # Deliver while the spinner is preempted (daemon runs 20-25ms).
        h.sim.schedule_at(ms(22), ch.deliver, "late")
        h.run(ms(60))
        # Spinner resumes at 25ms, immediately consumes the value.
        assert h.log[-1][1] == "got:late"
        assert h.log[-1][0] == pytest.approx(ms(25) + 10.0)

    def test_equal_priority_timer_thread_rotation(self):
        """A timer thread at equal priority steals the CPU from a spinner
        at a tick boundary after a full timeslice — the MPI progress
        engine interference mechanism."""
        h = make_harness(n_cpus=1, kernel=kernel())
        ch = SpinChannel(h)

        def spinner():
            got = yield SpinWait(ch.register)
            h.mark("spin-done")

        spin_t = h.spawn(spinner(), priority=60)

        def timer():
            yield Sleep(ms(35))
            yield Compute(120.0)
            h.mark("timer-ran")

        h.spawn(timer(), priority=60, cpu=0, allow_steal=False)
        h.run(ms(100))
        # Timer wakes at the 40ms boundary; spinner held since t=0 -> rotate.
        assert h.times("timer-ran") == [pytest.approx(ms(40) + 120.0)]
        assert spin_t.stats.preemptions == 1


class TestBlockModeContrast:
    def test_blocking_wait_frees_cpu_for_daemon(self):
        """With blocking waits a daemon slips into the gap for free —
        why poll-mode waiting is essential to the pathology."""
        h = make_harness(n_cpus=1, kernel=kernel())

        def blocker():
            got = yield Block()
            yield Compute(10.0)
            h.mark("woke")

        t = h.spawn(blocker(), priority=60)

        def daemon():
            yield Sleep(ms(15))
            yield Compute(200.0)
            h.mark("daemon")

        h.spawn(daemon(), priority=56, cpu=0, allow_steal=False)
        h.sim.schedule_at(ms(30), h.sched.wake, t, "v")
        h.run(ms(60))
        assert h.times("daemon") == [pytest.approx(ms(20) + 200.0)]
        assert h.times("woke") == [pytest.approx(ms(30) + 10.0)]
