"""Indexed trace attribution vs the naive full-scan reference.

The interval index promises *exact* equivalence with the O(I)-per-window
scan — not approximate: candidates come back in insertion order, so float
accumulation order (and hence every sum) is bit-identical.  These tests
hold it to that with hypothesis-generated traces and ``==`` on the floats.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.analysis import (
    attribute_faults,
    attribute_faults_naive,
    attribute_window,
    attribute_window_naive,
    attribute_windows,
    overhead_report,
    window_breakdown,
)
from repro.trace.recorder import NodeIntervalIndex, RunInterval, TraceRecorder

_CATS = ["app", "daemon", "interrupt", "mpi_timer", "io"]
_NAMES = ["app.rank0", "syncd", "caddpin.c3", "mpi_timer.7", "biod"]


def _trace_from(rows) -> TraceRecorder:
    """rows: (node, cpu, t0, dur, kind) → a populated recorder."""
    tr = TraceRecorder(enabled=True)
    for i, (node, cpu, t0, dur, kind) in enumerate(rows):
        tr.intervals.append(
            RunInterval(node, cpu, i, _NAMES[kind], _CATS[kind], t0, t0 + dur)
        )
    return tr


_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # node
        st.integers(min_value=0, max_value=3),  # cpu
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),  # t0
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),  # dur
        st.integers(min_value=0, max_value=4),  # name/category kind
    ),
    min_size=0,
    max_size=60,
)

_window = st.tuples(
    st.floats(min_value=-50.0, max_value=1200.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
)


class TestIndexedWindowEquivalence:
    @given(_rows, _window, st.integers(min_value=0, max_value=2))
    @settings(max_examples=200)
    def test_property_attribute_window_matches_naive(self, rows, window, node):
        trace = _trace_from(rows)
        w0, dur = window
        indexed = attribute_window(trace, node, w0, w0 + dur)
        naive = attribute_window_naive(trace, node, w0, w0 + dur)
        # Exact dict equality: keys AND float sums must match to the bit.
        assert indexed.by_name == naive.by_name
        assert indexed.by_category == naive.by_category
        assert indexed.interference_us == naive.interference_us

    @given(_rows, st.lists(_window, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_property_batched_windows_match_naive_loop(self, rows, windows):
        trace = _trace_from(rows)
        ws = [(w0, w0 + dur) for w0, dur in windows]
        batched = attribute_windows(trace, 1, ws)
        for att, (t0, t1) in zip(batched, ws):
            ref = attribute_window_naive(trace, 1, t0, t1)
            assert att.by_name == ref.by_name
            assert att.by_category == ref.by_category

    @given(_rows, _window)
    @settings(max_examples=100)
    def test_property_ducktyped_stub_matches_recorder(self, rows, window):
        """A bare-``intervals`` stub takes the full-scan fallback; results
        must equal the indexed path on the same data."""
        trace = _trace_from(rows)
        stub = SimpleNamespace(intervals=trace.intervals)
        w0, dur = window
        via_index = attribute_window(trace, 0, w0, w0 + dur)
        via_stub = attribute_window(stub, 0, w0, w0 + dur)
        assert via_index.by_name == via_stub.by_name
        assert via_index.by_category == via_stub.by_category

    def test_overhead_report_matches_fullscan_stub(self):
        rows = [
            (0, i % 4, float(i) * 3.0, 5.0 + (i % 7), i % 5) for i in range(400)
        ]
        trace = _trace_from(rows)
        stub = SimpleNamespace(intervals=trace.intervals)
        rep = overhead_report(trace, 0, 100.0, 900.0, 4)
        ref = overhead_report(stub, 0, 100.0, 900.0, 4)
        assert rep.by_daemon == ref.by_daemon
        assert rep.per_cpu_fraction == ref.per_cpu_fraction
        # Interrupt per-CPU instances fold into the base name either way.
        assert "caddpin" in rep.by_daemon and "caddpin.c3" not in rep.by_daemon

    def test_window_breakdown_matches_fullscan_stub(self):
        rows = [(1, i % 4, float(i) * 2.0, 4.0, i % 5) for i in range(200)]
        trace = _trace_from(rows)
        stub = SimpleNamespace(intervals=trace.intervals)
        assert window_breakdown(trace, 1, 50.0, 300.0, 4) == window_breakdown(
            stub, 1, 50.0, 300.0, 4
        )


class TestIndexMaintenance:
    def test_index_invalidated_on_append(self):
        trace = _trace_from([(0, 0, 10.0, 5.0, 1)])
        before = attribute_window(trace, 0, 0.0, 100.0)
        assert before.by_name == {"syncd": 5.0}
        # Append after the index was built; the next query must see it.
        trace.intervals.append(RunInterval(0, 1, 99, "mmfsd", "daemon", 20.0, 28.0))
        after = attribute_window(trace, 0, 0.0, 100.0)
        assert after.by_name == {"syncd": 5.0, "mmfsd": 8.0}

    def test_index_unknown_node_is_empty(self):
        trace = _trace_from([(0, 0, 10.0, 5.0, 1)])
        assert trace.interval_index(7) is None
        assert attribute_window(trace, 7, 0.0, 100.0).by_name == {}

    def test_index_candidates_preserve_insertion_order(self):
        # Deliberately record out of time order: insertion order (pos), not
        # start-time order, is the accumulation contract.
        tr = TraceRecorder(enabled=True)
        tr.intervals.append(RunInterval(0, 0, 0, "b", "daemon", 50.0, 60.0))
        tr.intervals.append(RunInterval(0, 1, 1, "a", "daemon", 10.0, 55.0))
        idx = tr.interval_index(0)
        assert isinstance(idx, NodeIntervalIndex)
        assert [iv.name for iv in idx.overlapping(0.0, 100.0)] == ["b", "a"]

    @given(_rows, _window, st.integers(min_value=0, max_value=2))
    @settings(max_examples=100)
    def test_property_overlapping_equals_filter(self, rows, window, node):
        trace = _trace_from(rows)
        idx = trace.interval_index(node)
        w0, dur = window
        got = list(idx.overlapping(w0, w0 + dur)) if idx is not None else []
        want = [
            iv
            for iv in trace.intervals
            if iv.node == node and iv.t1 > w0 and iv.t0 < w0 + dur
        ]
        assert got == want


class TestFaultAttributionEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-1, max_value=2),  # node (-1 = cluster)
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            ),
            min_size=0,
            max_size=30,
        ),
        st.lists(_window, min_size=1, max_size=6),
        st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=150)
    def test_property_matches_naive(self, faults, windows, node, slack):
        tr = TraceRecorder(enabled=True)
        for i, (fnode, t) in enumerate(faults):
            tr.record_fault("node_crash" if i % 2 else "daemon_kill", fnode, t)
        ws = [(w0, w0 + dur) for w0, dur in windows]
        assert attribute_faults(tr, ws, node, slack) == attribute_faults_naive(
            tr, ws, node, slack
        )

    def test_fault_index_invalidated_on_record(self):
        tr = TraceRecorder(enabled=True)
        tr.record_fault("node_crash", 0, 100.0)
        assert len(tr.faults_in(0.0, 200.0)) == 1
        tr.record_fault("daemon_kill", 0, 150.0)
        assert [ev.kind for ev in tr.faults_in(0.0, 200.0)] == [
            "node_crash",
            "daemon_kill",
        ]
