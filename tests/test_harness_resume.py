"""Crash-safe experiment harness: journal resume, failure holes, the
wall-clock trial watchdog, and atomic result writes."""

import json
import logging
import os
import signal
import time

import numpy as np
import pytest

from repro.analytic.model import AllreduceSeriesModel
from repro.checkpoint.harness import SweepJournal, TrialTimeout, trial_watchdog
from repro.experiments.common import PROTO16, VANILLA16, allreduce_sweep
from repro.results import load_result, save_result

COUNTS = (128, 256)
SWEEP_KW = dict(proc_counts=COUNTS, n_calls=50, n_seeds=2)


class TestJournalResume:
    def test_resumed_sweep_is_bit_identical(self, tmp_path):
        """Kill the campaign after the first count; the resumed sweep
        serves finished trials from the journal and lands exactly equal
        to a sweep that never stopped."""
        allreduce_sweep(PROTO16, proc_counts=COUNTS[:1],
                        n_calls=50, n_seeds=2, journal=SweepJournal(tmp_path))

        resumed_journal = SweepJournal(tmp_path)
        resumed = allreduce_sweep(PROTO16, **SWEEP_KW, journal=resumed_journal)
        uninterrupted = allreduce_sweep(PROTO16, **SWEEP_KW)

        assert resumed_journal.hits == 2  # one count × two seeds skipped
        assert np.array_equal(resumed.mean_us, uninterrupted.mean_us)
        assert np.array_equal(resumed.run_std_us, uninterrupted.run_std_us)
        assert np.array_equal(resumed.call_std_us, uninterrupted.call_std_us)

    def test_full_journal_skips_everything(self, tmp_path):
        first = allreduce_sweep(PROTO16, **SWEEP_KW, journal=SweepJournal(tmp_path))
        j = SweepJournal(tmp_path)
        again = allreduce_sweep(PROTO16, **SWEEP_KW, journal=j)
        assert j.hits == len(COUNTS) * 2
        assert np.array_equal(first.mean_us, again.mean_us)

    def test_torn_journal_entry_is_recomputed(self, tmp_path):
        allreduce_sweep(PROTO16, **SWEEP_KW, journal=SweepJournal(tmp_path))
        j = SweepJournal(tmp_path)
        victim = sorted(j.dir.glob("*.json"))[0]
        victim.write_text('{"status": "ok", "rec')  # torn mid-write
        assert j.lookup(victim.stem) is None
        again = allreduce_sweep(PROTO16, **SWEEP_KW, journal=j)
        assert j.hits == len(COUNTS) * 2 - 1  # the torn one recomputed
        uninterrupted = allreduce_sweep(PROTO16, **SWEEP_KW)
        assert np.array_equal(again.mean_us, uninterrupted.mean_us)

    def test_clear_resets_the_journal(self, tmp_path):
        j = SweepJournal(tmp_path)
        j.record("k", {"mean_us": 1.0, "std_us": 0.0})
        assert j.lookup("k") is not None
        j.clear()
        assert j.lookup("k") is None
        assert list(j.dir.glob("*.json")) == []


class TestShardMergeHardening:
    """merge_shards must drop torn/misshapen shard entries instead of
    raising or clobbering good canonical entries, log what it shed, and
    leave no shard directories behind."""

    def test_trailing_garbage_entry_is_dropped_and_logged(self, tmp_path, caplog):
        shard = SweepJournal(tmp_path, shard="w1")
        shard.record("good", {"v": 1})
        bad = shard._write_dir / "bad.json"
        bad.write_text('{"status": "ok", "record": {"v": 2}}trailing-garbage')
        j = SweepJournal(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.harness"):
            assert j.merge_shards() == 1
        assert j.lookup("good") == {"v": 1}
        assert j.lookup("bad") is None
        assert "dropped 1 torn/corrupt shard entry" in caplog.text

    def test_valid_json_wrong_shape_entries_are_dropped(self, tmp_path, caplog):
        shard = SweepJournal(tmp_path, shard="w1")
        wd = shard._write_dir
        (wd / "no-record.json").write_text('{"status": "ok"}')
        (wd / "a-list.json").write_text('[1, 2, 3]')
        (wd / "odd-status.json").write_text('{"status": "maybe", "record": {}}')
        j = SweepJournal(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.harness"):
            assert j.merge_shards() == 0
        for stem in ("no-record", "a-list", "odd-status"):
            assert j.lookup(stem) is None
        assert "wrong entry shape" in caplog.text
        assert "dropped 3 torn/corrupt shard entries" in caplog.text

    def test_two_pid_shards_merge_to_the_direct_write_bytes(self, tmp_path):
        a = SweepJournal(tmp_path, shard="w100")
        b = SweepJournal(tmp_path, shard="w200")
        a.record("k1", {"v": 1})
        b.record("k2", {"v": 2})
        # Deterministic trials: a key finished by both workers carries
        # identical bytes, so last-writer-wins is harmless.
        a.record("shared", {"v": 3})
        b.record("shared", {"v": 3})
        merged = SweepJournal(tmp_path)
        merged.merge_shards()

        direct = SweepJournal(tmp_path / "direct")
        direct.record("k1", {"v": 1})
        direct.record("k2", {"v": 2})
        direct.record("shared", {"v": 3})
        assert {p.name: p.read_bytes() for p in sorted(merged.dir.glob("*.json"))} == {
            p.name: p.read_bytes() for p in sorted(direct.dir.glob("*.json"))
        }
        assert not merged.shards_dir.exists()  # emptied dirs removed

    def test_stray_shard_files_are_swept_with_the_dirs(self, tmp_path):
        shard = SweepJournal(tmp_path, shard="w1")
        shard.record("k", {"v": 1})
        (shard._write_dir / ".k.json.abc123.tmp").write_text("spill")
        (shard._write_dir / "scratch.txt").write_text("left by a dying worker")
        j = SweepJournal(tmp_path)
        j.merge_shards()
        assert j.lookup("k") == {"v": 1}
        assert not j.shards_dir.exists()

    def test_merge_is_idempotent(self, tmp_path):
        shard = SweepJournal(tmp_path, shard="w1")
        shard.record("k", {"v": 1})
        j = SweepJournal(tmp_path)
        assert j.merge_shards() == 1
        assert j.merge_shards() == 0
        assert j.lookup("k") == {"v": 1}


class TestFailedTrials:
    def test_failed_trial_leaves_a_nan_hole(self, tmp_path, monkeypatch):
        """A count whose every seed blows up yields NaN in the arrays and
        named keys in failed_points — the campaign finishes anyway."""
        real = AllreduceSeriesModel.run_series

        def sabotaged(self, *a, **kw):
            if self.n == 256:
                raise RuntimeError("boom")
            return real(self, *a, **kw)

        monkeypatch.setattr(AllreduceSeriesModel, "run_series", sabotaged)
        j = SweepJournal(tmp_path)
        res = allreduce_sweep(VANILLA16, **SWEEP_KW, journal=j)
        assert sorted(res.failed_points) == [
            "vanilla16-n256-s0", "vanilla16-n256-s1",
        ]
        assert np.isnan(res.mean_us[1]) and not np.isnan(res.mean_us[0])
        # The failure is journaled for forensics...
        entries = j.entries()
        assert entries["vanilla16-n256-s0"]["status"] == "failed"
        assert "boom" in entries["vanilla16-n256-s0"]["reason"]

    def test_failed_trials_are_retried_on_resume(self, tmp_path, monkeypatch):
        real = AllreduceSeriesModel.run_series

        def flaky(self, *a, **kw):
            if self.n == 256:
                raise RuntimeError("transient")
            return real(self, *a, **kw)

        monkeypatch.setattr(AllreduceSeriesModel, "run_series", flaky)
        allreduce_sweep(VANILLA16, **SWEEP_KW, journal=SweepJournal(tmp_path))
        monkeypatch.setattr(AllreduceSeriesModel, "run_series", real)

        # ... environment fixed: the resume recomputes only the failures.
        j = SweepJournal(tmp_path)
        resumed = allreduce_sweep(VANILLA16, **SWEEP_KW, journal=j)
        assert j.hits == 2  # the n=128 seeds came from the journal
        assert resumed.failed_points == []
        uninterrupted = allreduce_sweep(VANILLA16, **SWEEP_KW)
        assert np.array_equal(resumed.mean_us, uninterrupted.mean_us)


class TestTrialWatchdog:
    def test_timeout_raises_trialtimeout(self):
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        deadline = time.monotonic() + 30.0
        with pytest.raises(TrialTimeout):
            with trial_watchdog(0.1):
                while time.monotonic() < deadline:
                    pass  # wedged trial; the watchdog must break the loop
        assert time.monotonic() < deadline  # escaped long before 30s

    def test_no_budget_is_a_noop(self):
        with trial_watchdog(None):
            pass
        with trial_watchdog(0):
            pass

    def test_timer_is_restored_after_the_trial(self):
        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        with trial_watchdog(5.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestAtomicSaveResult:
    def test_crash_mid_write_preserves_the_old_file(self, tmp_path, monkeypatch):
        """Simulate dying halfway through serialisation: the previously
        saved result must survive untouched and no temp litter remains."""
        path = tmp_path / "sweep.json"
        res = allreduce_sweep(PROTO16, proc_counts=(128,), n_calls=20, n_seeds=1)
        save_result(path, res)
        before = path.read_bytes()

        def dies_mid_write(obj, fh, **kw):
            fh.write('{"type": "SweepResult", "fields": {"scen')
            raise OSError("disk gone")

        monkeypatch.setattr("repro.results.json.dump", dies_mid_write)
        with pytest.raises(OSError):
            save_result(path, res)
        assert path.read_bytes() == before  # old file intact, not torn
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".sweep.json.*")) == []

    def test_round_trip(self, tmp_path):
        path = tmp_path / "sweep.json"
        res = allreduce_sweep(PROTO16, proc_counts=(128,), n_calls=20, n_seeds=1)
        save_result(path, res)
        loaded = load_result(path)
        assert np.array_equal(loaded.mean_us, res.mean_us)
        assert loaded.scenario == res.scenario
        assert loaded.failed_points == []
