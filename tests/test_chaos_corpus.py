"""Regression corpus replay: every minimized schedule under
``tests/chaos_corpus/`` must reproduce its recorded oracle verdict.

Each corpus entry is a JSON counterexample the chaos campaign found and
ddmin-minimized (or a survival regression — a hard schedule the system
is expected to ride out).  Entries record which planted demo bug (if
any) they reproduce under; the replay restores that environment per
entry, so a fix that regresses — or a planted-bug guard that breaks —
fails here, deterministically, without re-running the fuzzer."""

import glob
import os

import pytest

from repro.chaos import load_corpus_entry, replay_corpus_entry
from repro.faults.demo import ENV_VAR, KNOWN_BUGS

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "chaos_corpus")
ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert ENTRIES, "chaos corpus missing — regenerate with the chaos CLI"


@pytest.mark.parametrize("path", ENTRIES, ids=[os.path.basename(p) for p in ENTRIES])
def test_corpus_entry_replays_to_recorded_verdict(path, monkeypatch):
    entry = load_corpus_entry(path)
    bug = entry.get("demo_bug", "")
    assert bug == "" or bug in KNOWN_BUGS
    if bug:
        monkeypatch.setenv(ENV_VAR, bug)
    else:
        monkeypatch.delenv(ENV_VAR, raising=False)
    matches, report = replay_corpus_entry(path)
    assert matches, (
        f"{os.path.basename(path)} expected {entry['expect']} "
        f"but replayed to failed={list(report.failed)}"
    )
