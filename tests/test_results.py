"""Result serialisation round-trips."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.common import SweepResult, VANILLA16, allreduce_sweep
from repro.experiments.fig1 import run_fig1
from repro.results import REGISTRY, load_result, register_result, save_result, to_jsonable


class TestJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars_coerced(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float64(1.5)) == 1.5

    def test_ndarray_encoding(self):
        enc = to_jsonable(np.array([1.0, 2.0]))
        assert enc["__ndarray__"] == [1.0, 2.0]

    def test_unserialisable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_non_dataclass_register_raises(self):
        with pytest.raises(TypeError):
            register_result(int)


class TestRoundTrip:
    def test_sweep_result(self, tmp_path):
        sweep = allreduce_sweep(VANILLA16, proc_counts=(128, 256), n_calls=30, n_seeds=1)
        p = tmp_path / "sweep.json"
        save_result(p, sweep)
        loaded = load_result(p)
        assert isinstance(loaded, SweepResult)
        assert loaded.scenario == sweep.scenario
        assert np.array_equal(loaded.proc_counts, sweep.proc_counts)
        assert np.allclose(loaded.mean_us, sweep.mean_us)

    def test_fig1_result(self, tmp_path):
        res = run_fig1(bursts_per_cpu=50)
        p = tmp_path / "fig1.json"
        save_result(p, res)
        loaded = load_result(p)
        assert loaded.green_overlapped == res.green_overlapped

    def test_dict_of_results(self, tmp_path):
        res = run_fig1(bursts_per_cpu=50)
        p = tmp_path / "both.json"
        save_result(p, {"a": res, "b": res})
        loaded = load_result(p)
        assert loaded["a"].n_cpus == res.n_cpus

    def test_unknown_type_raises_on_load(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"type": "NoSuchResult", "fields": {}}')
        with pytest.raises(KeyError):
            load_result(p)

    def test_builtin_registry_populated(self):
        for name in ("SweepResult", "Fig1Result", "SpeedupResult", "AblationResult"):
            assert name in REGISTRY


class TestValidation:
    def test_fast_checks_pass(self):
        from repro.experiments.validate import (
            _check_base_latency,
            _check_des_model_agreement,
            _check_noise_budget,
            format_validation,
        )

        checks = [_check_noise_budget(), _check_base_latency(), _check_des_model_agreement()]
        assert all(c.passed for c in checks)
        out = format_validation(checks)
        assert "PASS" in out and "all anchors hold" in out

    def test_format_reports_failures(self):
        from repro.experiments.validate import ValidationCheck, format_validation

        out = format_validation(
            [ValidationCheck("x", False, "broke"), ValidationCheck("y", True, "ok")]
        )
        assert "FAIL" in out and "1 anchor(s) FAILED" in out
