"""Tick arithmetic: phases, boundary counting, cost folding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import KernelConfig
from repro.kernel.ticks import TickSchedule
from repro.units import ms


def sched(**kw):
    defaults = dict(tick_cost_us=18.0)
    defaults.update(kw)
    return TickSchedule(KernelConfig(**defaults), n_cpus=4)


class TestPhases:
    def test_staggered_phases_differ(self):
        ts = sched(tick_phase="staggered", stagger_offset_us=ms(1))
        phases = [ts.phase(i) for i in range(4)]
        assert len(set(phases)) == 4
        assert phases[1] - phases[0] == pytest.approx(ms(1))

    def test_aligned_phases_equal(self):
        ts = sched(tick_phase="aligned")
        assert len({ts.phase(i) for i in range(4)}) == 1

    def test_node_phase_offsets_all_cpus(self):
        ts = TickSchedule(KernelConfig(tick_phase="aligned"), 2, node_phase_us=3000.0)
        assert ts.phase(0) == pytest.approx(3000.0)

    def test_global_alignment_uses_clock_offset(self):
        cfg = KernelConfig(tick_phase="aligned", align_ticks_to_global_time=True)
        ts = TickSchedule(cfg, 2, node_phase_us=1234.0, clock_offset_us=3000.0)
        # Local boundaries at multiples of the period land at global
        # times k*P - offset.
        assert ts.phase(0) == pytest.approx((-3000.0) % cfg.tick_period_us)

    def test_global_alignment_two_nodes_same_boundaries_when_synced(self):
        cfg = KernelConfig(tick_phase="aligned", align_ticks_to_global_time=True)
        a = TickSchedule(cfg, 1, clock_offset_us=0.0)
        b = TickSchedule(cfg, 1, clock_offset_us=0.0)
        assert a.next_boundary(0, 12345.0) == b.next_boundary(0, 12345.0)


class TestBoundaries:
    def test_next_boundary_strictly_after(self):
        ts = sched(tick_phase="aligned")
        b = ts.next_boundary(0, 0.0)
        assert b == pytest.approx(ms(10))
        assert ts.next_boundary(0, b) == pytest.approx(ms(20))

    def test_boundary_at_or_after_includes_exact(self):
        ts = sched(tick_phase="aligned")
        assert ts.boundary_at_or_after(0, ms(10)) == pytest.approx(ms(10))
        assert ts.boundary_at_or_after(0, ms(10) + 1) == pytest.approx(ms(20))

    def test_is_boundary(self):
        ts = sched(tick_phase="aligned")
        assert ts.is_boundary(0, ms(10))
        assert not ts.is_boundary(0, ms(10) + 5.0)

    def test_count_boundaries_inclusive(self):
        ts = sched(tick_phase="aligned")
        assert ts.boundaries_in(0, 0.0, ms(30)) == 3

    def test_count_boundaries_exclusive_end(self):
        ts = sched(tick_phase="aligned")
        assert ts.boundaries_in(0, 0.0, ms(30), inclusive_end=False) == 2

    def test_count_empty_interval(self):
        ts = sched()
        assert ts.boundaries_in(0, ms(5), ms(5)) == 0
        assert ts.boundaries_in(0, ms(7), ms(5)) == 0

    def test_big_tick_spreads_boundaries(self):
        ts = TickSchedule(KernelConfig(big_tick_multiplier=25, tick_phase="aligned"), 1)
        assert ts.period == pytest.approx(ms(250))
        assert ts.boundaries_in(0, 0.0, ms(1000)) == 4

    def test_quantize_wake_snaps_up(self):
        ts = sched(tick_phase="aligned")
        assert ts.quantize_wake(0, ms(3)) == pytest.approx(ms(10))
        assert ts.quantize_wake(0, ms(10)) == pytest.approx(ms(10))


class TestInflation:
    def test_zero_work(self):
        ts = sched()
        assert ts.inflate(0, 123.0, 0.0) == 123.0

    def test_work_within_one_tick_uninflated(self):
        ts = sched(tick_phase="aligned")
        # Start just after a boundary; 1 ms of work crosses nothing.
        assert ts.inflate(0, ms(10) + 1.0, ms(1)) == pytest.approx(ms(11) + 1.0)

    def test_work_crossing_one_tick_pays_cost(self):
        ts = sched(tick_phase="aligned")
        done = ts.inflate(0, ms(5), ms(8))  # crosses boundary at 10ms
        assert done == pytest.approx(ms(13) + 18.0)

    def test_cost_pushing_across_another_boundary(self):
        cfg = KernelConfig(tick_cost_us=ms(2))  # absurd cost to force it
        ts = TickSchedule(cfg, 1, node_phase_us=0.0)
        # 9.5ms of work from t=0.5ms: naive end 10ms (1 tick, +2ms = 12ms),
        # which stays before 20ms, so exactly one tick is paid.
        done = ts.inflate(0, 500.0, 9_500.0)
        assert done == pytest.approx(ms(12))

    def test_zero_cost_fast_path(self):
        ts = sched(tick_cost_us=0.0)
        assert ts.inflate(0, 0.0, ms(35)) == pytest.approx(ms(35))

    def test_consumed_work_inverse_of_inflate(self):
        ts = sched(tick_phase="aligned")
        start, work = ms(5), ms(25)
        end = ts.inflate(0, start, work)
        assert ts.consumed_work(0, start, end, work) == pytest.approx(work, abs=1e-6)

    def test_consumed_work_partial(self):
        ts = sched(tick_phase="aligned")
        # Run from 5ms to 12ms: one boundary (10ms) strictly inside.
        got = ts.consumed_work(0, ms(5), ms(12), run_work=ms(100))
        assert got == pytest.approx(ms(7) - 18.0)

    def test_consumed_work_clamped_nonnegative(self):
        ts = sched()
        assert ts.consumed_work(0, ms(5), ms(5), run_work=10.0) == 0.0

    def test_consumed_work_clamped_to_run_work(self):
        ts = sched(tick_cost_us=0.0)
        assert ts.consumed_work(0, 0.0, ms(50), run_work=ms(10)) == pytest.approx(ms(10))


class TestInflationProperties:
    @settings(max_examples=200)
    @given(
        start=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        work=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        cost=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        mult=st.integers(min_value=1, max_value=25),
        cpu=st.integers(min_value=0, max_value=3),
    )
    def test_inflate_consumed_roundtrip(self, start, work, cost, mult, cpu):
        """inflate then consumed_work must return (almost) the same work."""
        cfg = KernelConfig(tick_cost_us=cost, big_tick_multiplier=mult)
        ts = TickSchedule(cfg, 4, node_phase_us=start % 77.7)
        end = ts.inflate(cpu, start, work)
        assert end >= start + work - 1e-6
        got = ts.consumed_work(cpu, start, end, work)
        # The boundary-at-endpoint convention may skip at most one tick.
        assert got == pytest.approx(work, abs=cost + 1e-6)

    @settings(max_examples=100)
    @given(
        t0=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        dt1=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        dt2=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    def test_boundary_count_additive(self, t0, dt1, dt2):
        ts = sched(tick_phase="staggered")
        whole = ts.boundaries_in(1, t0, t0 + dt1 + dt2)
        split = ts.boundaries_in(1, t0, t0 + dt1) + ts.boundaries_in(1, t0 + dt1, t0 + dt1 + dt2)
        assert whole == split

    @settings(max_examples=100)
    @given(t=st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
    def test_next_boundary_is_boundary_and_after(self, t):
        ts = sched()
        b = ts.next_boundary(2, t)
        assert b > t
        assert ts.is_boundary(2, b)
