"""Experiment runners: small-scale smoke + shape assertions + formatting."""

import numpy as np
import pytest

from repro.experiments import (
    PROTO16,
    VANILLA15,
    VANILLA16,
    allreduce_sweep,
    make_config,
    run_ablation,
    run_fig1,
    run_speedup154,
)
from repro.experiments.ablation import format_ablation
from repro.experiments.common import PAPER_PROC_COUNTS
from repro.experiments.fig1 import format_fig1
from repro.experiments.fig6 import (
    format_fig6,
    format_sweep,
    run_fig6,
)
from repro.experiments.reporting import text_table, write_csv
from repro.experiments.speedup import format_speedup

QUICK = dict(proc_counts=(128, 512, 944), n_calls=80, n_seeds=2)


class TestScenarios:
    def test_canonical_scenarios(self):
        assert VANILLA16.tasks_per_node == 16 and not VANILLA16.cosched
        assert VANILLA15.tasks_per_node == 15
        assert PROTO16.cosched and PROTO16.long_polling

    def test_make_config_sizes_machine(self):
        cfg = make_config(VANILLA16, 944)
        assert cfg.machine.n_nodes == 59
        cfg15 = make_config(VANILLA15, 945)
        assert cfg15.machine.n_nodes == 63

    def test_make_config_cron_toggle(self):
        names = {d.name for d in make_config(VANILLA16, 64).noise.daemons}
        assert "cron_health" not in names
        names2 = {d.name for d in make_config(VANILLA16, 64, include_cron=True).noise.daemons}
        assert "cron_health" in names2

    def test_paper_proc_counts_span_range(self):
        assert min(PAPER_PROC_COUNTS) <= 128
        assert max(PAPER_PROC_COUNTS) >= 1700


class TestSweep:
    def test_sweep_shape(self):
        res = allreduce_sweep(VANILLA16, **QUICK)
        assert len(res.mean_us) == 3
        assert res.n_seeds == 2
        assert np.all(res.mean_us > 0)
        assert len(res.rows()) == 3

    def test_sweep_monotone_trend(self):
        res = allreduce_sweep(VANILLA16, **QUICK)
        assert res.mean_us[-1] > res.mean_us[0]


class TestFig1:
    def test_overlap_beats_random(self):
        res = run_fig1()
        assert res.green_overlapped > res.green_random
        assert res.improvement > 1.5

    def test_matches_theory(self):
        res = run_fig1(bursts_per_cpu=400, seed=3)
        assert res.green_random == pytest.approx(res.theory_random, abs=0.05)
        assert res.green_overlapped == pytest.approx(res.theory_overlapped, abs=0.05)

    def test_format(self):
        out = format_fig1(run_fig1())
        assert "overlap improvement" in out


class TestFig6:
    def test_prototype_wins_with_linear_vanilla(self):
        res = run_fig6(**QUICK)
        assert res.slope_ratio > 1.5
        assert res.vanilla_fit.slope > res.prototype_fit.slope
        assert res.mean_ratio_at(944) > 1.5
        out = format_fig6(res)
        assert "paper" in out and "slope ratio" in out

    def test_format_sweep(self):
        res = allreduce_sweep(VANILLA16, **QUICK)
        out = format_sweep(res, "t")
        assert "linear fit" in out and "log fit" in out


class TestSpeedup:
    def test_prototype_faster_than_15tpn(self):
        res = run_speedup154(n_calls=100, n_seeds=2)
        assert res.proto_ranks == 1600 and res.baseline_ranks == 1500
        assert res.speedup_percent > 110.0
        assert "speedup" in format_speedup(res)


class TestAblation:
    def test_cosched_is_the_big_lever(self):
        res = run_ablation(n_ranks=512, n_calls=80, n_seeds=2)
        assert len(res.steps) == 6
        means = {label: m for label, m, _ in res.steps}
        full = means["6 +RT sched fixes (= prototype)"]
        vanilla = means["1 vanilla"]
        cosched = means["5 +cosched (no RT fixes)"]
        assert full < vanilla / 1.5
        assert cosched < vanilla  # co-scheduling already most of the win
        assert "A1" in format_ablation(res)


class TestReporting:
    def test_text_table_alignment(self):
        out = text_table(["a", "bb"], [(1, 2.5), (10, 3.25)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "--" in lines[2]
        assert len(lines) == 5

    def test_write_csv(self, tmp_path):
        p = tmp_path / "out.csv"
        write_csv(p, ["x", "y"], [(1, 2), (3, 4)])
        assert p.read_text() == "x,y\n1,2\n3,4\n"
