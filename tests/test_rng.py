"""Named RNG streams: reproducibility, isolation, distributions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rng import Constant, Exponential, LogNormal, StreamFactory, Uniform


class TestStreamFactory:
    def test_same_name_same_stream_object(self):
        f = StreamFactory(seed=1)
        assert f.stream("a") is f.stream("a")

    def test_reproducible_across_factories(self):
        a = StreamFactory(seed=42).stream("daemon.syncd").random(5)
        b = StreamFactory(seed=42).stream("daemon.syncd").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        f = StreamFactory(seed=42)
        a = f.stream("x").random(5)
        b = f.stream("y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = StreamFactory(seed=1).stream("x").random(5)
        b = StreamFactory(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        """Variance isolation: new consumers must not shift old draws."""
        f1 = StreamFactory(seed=9)
        seq1 = f1.stream("old").random(3)
        f2 = StreamFactory(seed=9)
        f2.stream("new-consumer")  # extra stream created first
        seq2 = f2.stream("old").random(3)
        assert np.array_equal(seq1, seq2)

    def test_fork_changes_streams(self):
        f = StreamFactory(seed=5)
        a = f.stream("x").random(3)
        b = f.fork(1).stream("x").random(3)
        assert not np.array_equal(a, b)

    def test_fork_reproducible(self):
        a = StreamFactory(seed=5).fork(3).stream("x").random(3)
        b = StreamFactory(seed=5).fork(3).stream("x").random(3)
        assert np.array_equal(a, b)


class TestConstant:
    def test_sample(self):
        rng = np.random.default_rng(0)
        assert Constant(7.5).sample(rng) == 7.5

    def test_mean(self):
        assert Constant(3.0).mean() == 3.0


class TestUniform:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        d = Uniform(2.0, 4.0)
        xs = [d.sample(rng) for _ in range(200)]
        assert all(2.0 <= x <= 4.0 for x in xs)

    def test_mean(self):
        assert Uniform(2.0, 4.0).mean() == 3.0

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Uniform(4.0, 2.0)


class TestExponential:
    def test_mean_property(self):
        assert Exponential(10.0).mean() == 10.0

    def test_shift(self):
        rng = np.random.default_rng(0)
        d = Exponential(5.0, shift=2.0)
        assert d.mean() == 7.0
        assert all(d.sample(rng) >= 2.0 for _ in range(100))

    def test_invalid_mean_raises(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_empirical_mean(self):
        rng = np.random.default_rng(1)
        d = Exponential(100.0)
        xs = [d.sample(rng) for _ in range(5000)]
        assert np.mean(xs) == pytest.approx(100.0, rel=0.1)


class TestLogNormal:
    def test_mean_is_actual_mean(self):
        """The parameterisation targets E[X], not the log-scale mu."""
        rng = np.random.default_rng(2)
        d = LogNormal(200.0, sigma=0.5)
        xs = [d.sample(rng) for _ in range(20000)]
        assert np.mean(xs) == pytest.approx(200.0, rel=0.05)

    def test_positive_samples(self):
        rng = np.random.default_rng(3)
        d = LogNormal(50.0, sigma=1.0)
        assert all(d.sample(rng) > 0 for _ in range(100))

    def test_invalid_mean_raises(self):
        with pytest.raises(ValueError):
            LogNormal(-1.0)

    @given(mean=st.floats(min_value=1.0, max_value=1e6), sigma=st.floats(min_value=0.01, max_value=2.0))
    def test_mean_matches_analytic_for_any_params(self, mean, sigma):
        d = LogNormal(mean, sigma=sigma)
        assert d.mean() == mean
