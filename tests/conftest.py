"""Shared fixtures and helpers for scheduler-level tests."""

from __future__ import annotations

import pytest

from repro.config import KernelConfig
from repro.kernel.scheduler import NodeScheduler
from repro.kernel.thread import Block, Compute, Sleep, SpinWait, YieldCpu
from repro.kernel.ticks import TickSchedule
from repro.sim.core import Simulator


class SchedulerHarness:
    """One node's scheduler plus convenience spawn/record helpers."""

    def __init__(
        self,
        n_cpus: int = 2,
        kernel: KernelConfig | None = None,
        trace=None,
        rng_streams=None,
    ):
        self.config = kernel if kernel is not None else KernelConfig(context_switch_us=0.0)
        self.sim = Simulator()
        self.ticks = TickSchedule(self.config, n_cpus)
        self.sched = NodeScheduler(
            self.sim, 0, n_cpus, self.config, self.ticks, trace=trace,
            rng_streams=rng_streams,
        )
        self.log: list[tuple[float, str]] = []

    def mark(self, label: str) -> None:
        self.log.append((self.sim.now, label))

    def worker(self, label: str, bursts, record=True):
        """Body computing each burst, logging completion times."""

        def body():
            for i, b in enumerate(bursts):
                yield Compute(b)
                if record:
                    self.mark(f"{label}.{i}")

        return body()

    def spawn(self, body, name="t", priority=60, cpu=0, **kw):
        return self.sched.spawn(body, name=name, priority=priority, affinity_cpu=cpu, **kw)

    def run(self, until: float):
        self.sim.run_until(until, max_events=200_000)

    def times(self, prefix: str) -> list[float]:
        return [t for t, label in self.log if label.startswith(prefix)]


@pytest.fixture
def harness():
    return SchedulerHarness()


def make_harness(**kw) -> SchedulerHarness:
    return SchedulerHarness(**kw)
