"""Shard-worker crash/hang recovery: the parallel-DES supervisor.

The contract: SIGKILLing (or SIGSTOPping) shard workers mid-run must not
change the result — the coordinator detects the failure at the barrier,
respawns the shard from its spec, replays the superstep history, and the
recovered run's digest equals a clean run's byte-for-byte.  Exhausting
the respawn budget must fail *structurally* (:class:`ShardFailureError`
with a post-mortem) rather than hang, and no path — recovery, failure,
or a coordinator crash — may leak worker processes.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.chaos.harness_faults import ShardKillFault, shard_kill_plan
from repro.sim.parallel import ShardFailureError, run_parallel

from tests.test_parallel_des import APP, small_config

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill tests rely on the fork start method",
)

#: Both shards of a 2-shard run get exactly one kill each, at supersteps
#: 2 (mid) and 1 (pre) — asserted below so a planner change can't make
#: the recovery test vacuously clean.
CHAOS_SEED = 0

#: Small app so each run is a few hundred supersteps, not thousands.
QUICK_PARAMS = dict(
    loops=1, calls_per_loop=2, trace_block=64,
    compute_between_us=300.0, payload_bytes=8, record_nodes=(0,),
)


def quick_run(**kw):
    kw.setdefault("use_processes", True)
    kw.setdefault("respawn_backoff_s", 0.01)
    return run_parallel(
        small_config(),
        n_ranks=64,
        tasks_per_node=16,
        app=APP,
        app_params=QUICK_PARAMS,
        shards=2,
        **kw,
    )


class TestShardKillPlan:
    def test_plan_is_pure_and_bounded(self):
        modes = set()
        for seed in range(30):
            for sh in range(4):
                p = shard_kill_plan(seed, sh)
                assert p == shard_kill_plan(seed, sh)
                assert p.kills <= 2  # transient under default max_respawns=3
                assert (p.mode is None) == (p.kills == 0)
                assert 0 <= p.window < 4
                assert p.point in ("pre", "mid")
                modes.add(p.mode)
        assert modes == {None, "kill"}

    def test_plan_independent_of_shard_count(self):
        """A shard's plan is keyed to its id alone, so growing the shard
        count never reshuffles existing shards' fates."""
        assert [shard_kill_plan(8, sh) for sh in range(2)] == [
            shard_kill_plan(8, sh) for sh in range(4)
        ][:2]

    def test_chaos_seed_covers_both_shards(self):
        plans = [shard_kill_plan(CHAOS_SEED, sh) for sh in range(2)]
        assert plans == [
            ShardKillFault("kill", 2, 1, "mid"),
            ShardKillFault("kill", 1, 1, "pre"),
        ]


@fork_only
class TestKillRecovery:
    def test_killed_workers_recover_to_clean_digest(self):
        clean = quick_run()
        assert clean.ok and clean.recoveries == 0
        chaos = quick_run(shard_chaos_seed=CHAOS_SEED)
        assert chaos.recoveries == 2  # one kill per shard, per the plan
        assert chaos.digest == clean.digest
        assert chaos.counters == clean.counters
        assert multiprocessing.active_children() == []

    def test_chaos_requires_processes(self):
        with pytest.raises(ValueError, match="use_processes"):
            quick_run(use_processes=False, shard_chaos_seed=CHAOS_SEED)

    def test_hung_worker_detected_and_recovered(self):
        """A SIGSTOPped worker sends no heartbeats; the supervisor's hang
        deadline SIGKILLs and replays it like a crash."""
        clean = quick_run()
        stopped = []

        def stall_shard_one(step, hosts):
            if step == 3 and not stopped:
                stopped.append(hosts[1].proc.pid)
                os.kill(hosts[1].proc.pid, signal.SIGSTOP)

        hung = quick_run(
            heartbeat_s=0.2,
            hang_timeout_s=2.0,
            _superstep_hook=stall_shard_one,
        )
        assert stopped, "the hook never fired"
        assert hung.recoveries == 1
        assert hung.digest == clean.digest
        assert multiprocessing.active_children() == []

    def test_exhausted_retries_fail_structurally(self):
        """max_respawns=0 turns the first kill into a terminal, *journaled*
        failure — a post-mortem, not a hang — and still leaks nothing."""
        with pytest.raises(ShardFailureError) as exc_info:
            quick_run(shard_chaos_seed=CHAOS_SEED, max_respawns=0)
        details = exc_info.value.details
        assert details["shard_id"] in (0, 1)
        assert details["attempts"] == 0
        assert details["supersteps"] >= 1
        assert details["window"] is not None
        assert multiprocessing.active_children() == []


_COORDINATOR_CRASH_DRIVER = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
import multiprocessing
from tests.test_shard_recovery import quick_run

def boom(step, hosts):
    if step == 3:
        raise RuntimeError("coordinator blew up")

print("READY", flush=True)
try:
    quick_run(_superstep_hook=boom)
except RuntimeError as exc:
    assert "coordinator blew up" in str(exc), exc
    leftover = multiprocessing.active_children()
    assert leftover == [], leftover
    print("CLEAN", flush=True)
    sys.exit(0)
print("NO-CRASH", flush=True)
sys.exit(1)
"""


@fork_only
class TestCoordinatorCrashCleanup:
    def test_coordinator_exception_kills_all_workers(self):
        """An exception in the coordinator mid-superstep must take every
        forked shard worker down with it: the run_parallel finally block
        SIGKILLs and reaps them, so the driver sees no active children
        and the whole process group is empty afterwards (mirrors the
        supervised-runner SIGINT drain test)."""
        repo_root = Path(__file__).resolve().parent.parent
        script = _COORDINATOR_CRASH_DRIVER.format(
            src=str(repo_root / "src"), root=str(repo_root)
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            start_new_session=True,  # own process group, so we can prove it empty
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            out, err = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait()
        assert proc.returncode == 0, err
        assert "CLEAN" in out and "NO-CRASH" not in out
        # The whole process group died with the driver: no orphan workers.
        time.sleep(0.2)
        with pytest.raises(ProcessLookupError):
            os.killpg(proc.pid, 0)
