"""Extension experiments (E1–E4): reduced-scale smoke + shape checks."""

import pytest

from repro.experiments.extensions import (
    format_fine_grain,
    format_hw_collectives,
    format_misalignment,
    format_multijob,
    run_fine_grain,
    run_hw_collectives,
    run_misalignment,
    run_multijob,
)
from repro.units import ms


class TestMultijob:
    def test_gang_improves_per_op_latency(self):
        # Needs enough ranks per node that uncoordinated rotation actually
        # scatters a job's ranks (at 4 ranks/node the jobs dovetail by
        # luck); this is the benchmark's scenario with fewer calls.
        res = run_multijob(n_ranks=16, tpn=8, calls=120, slot_us=ms(200))
        assert res.per_op_improvement > 1.2
        assert "gang" in format_multijob(res)


class TestHwCollectives:
    def test_hardware_wins_everywhere(self):
        res = run_hw_collectives(proc_counts=(128, 512), n_calls=80)
        assert all(h < s for h, s in zip(res.hardware_us, res.software_us))
        assert "switch-combined" in format_hw_collectives(res)

    def test_hardware_still_noise_sensitive(self):
        """The slowest deposit gates the combine: hardware at 512 ranks
        with noise is slower than hardware with 128 ranks."""
        res = run_hw_collectives(proc_counts=(128, 512), n_calls=80)
        assert res.hardware_us[1] > res.hardware_us[0]


class TestFineGrain:
    def test_hints_beat_always_on_with_untuned_priority(self):
        res = run_fine_grain(n_ranks=16, timesteps=15)
        assert res.fine_grain_us < res.always_on_us
        assert res.fine_grain_io_us < res.always_on_io_us
        assert "fine-grain" in format_fine_grain(res)


class TestMisalignment:
    def test_smoke_and_format(self):
        # The sync-vs-unsync *direction* needs multi-period runs over
        # several nodes and seeds — that's the benchmark's job
        # (test_bench_extensions.py); here we check the machinery runs and
        # produces sane, positive latencies either way.
        res = run_misalignment(n_ranks=16, tpn=8, calls=400, n_seeds=1)
        assert res.synced_us > 0 and res.unsynced_us > 0
        assert "misaligned" in format_misalignment(res)
