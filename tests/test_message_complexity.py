"""Message-count complexity of the collective algorithms.

The paper's scaling argument starts from the algorithmic fact that "the
standard tree algorithm for MPI_Allreduce does no more than 2·log2(N)
separate point to point communications"; these tests pin the exact message
counts of every schedule so an algorithmic regression (extra rounds, a
broken fold) shows up as arithmetic, not as a subtle latency shift.
"""

import math

import pytest

from repro.config import ClusterConfig, MachineConfig, MpiConfig
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import s


def count_messages(n_ranks, body_factory, algorithm="recursive_doubling", seed=0):
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=-(-n_ranks // 4), cpus_per_node=4),
        mpi=MpiConfig(progress_threads_enabled=False, algorithm=algorithm),
        seed=seed,
    )
    cluster = Cluster(cfg)
    job = MpiJob(cluster, cluster.place(n_ranks, min(4, n_ranks)), body_factory, config=cfg.mpi)
    job.run(horizon_us=s(60))
    return cluster.fabric.stats.messages


def allreduce_body(rank, api):
    yield from api.allreduce(1.0)


def expected_rd_allreduce(n: int) -> int:
    """Fold + recursive doubling + unfold message count."""
    pof2 = 1 << (n.bit_length() - 1)
    rem = n - pof2
    # fold: rem sends; RD: pof2 ranks × log2(pof2) exchanges (each exchange
    # = 2 messages per pair = pof2 per round); unfold: rem sends.
    return 2 * rem + pof2 * int(math.log2(pof2))


class TestAllreduceComplexity:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_power_of_two_counts(self, n):
        assert count_messages(n, allreduce_body) == n * int(math.log2(n))

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 11, 13])
    def test_non_power_of_two_counts(self, n):
        assert count_messages(n, allreduce_body) == expected_rd_allreduce(n)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_per_rank_bound_is_paper_2log2(self, n):
        """Per-rank communications ≤ 2·log2(N), the paper's figure."""
        total = count_messages(n, allreduce_body)
        assert total / n <= 2 * math.log2(n) + 1e-9

    @pytest.mark.parametrize("n", [4, 8])
    def test_binomial_counts(self, n):
        # Reduce: n-1 messages up the tree; bcast: n-1 down.
        assert count_messages(n, allreduce_body, algorithm="binomial") == 2 * (n - 1)

    @pytest.mark.parametrize("n", [4, 8, 13])
    def test_hardware_counts(self, n):
        # Deposits and fan-out ride the adapter/switch path directly — no
        # point-to-point fabric messages at all; that is the whole point.
        assert count_messages(n, allreduce_body, algorithm="hardware") == 0


class TestOtherCollectives:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_barrier_dissemination_counts(self, n):
        def body(rank, api):
            yield from api.barrier()

        rounds = math.ceil(math.log2(n))
        assert count_messages(n, body) == n * rounds

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_allgather_ring_counts(self, n):
        def body(rank, api):
            yield from api.allgather(rank)

        assert count_messages(n, body) == n * (n - 1)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_reduce_scatter_ring_counts(self, n):
        def body(rank, api):
            yield from api.reduce_scatter(list(range(n)))

        assert count_messages(n, body) == n * (n - 1)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_alltoall_counts(self, n):
        def body(rank, api):
            yield from api.alltoall(list(range(n)))

        assert count_messages(n, body) == n * (n - 1)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_bcast_counts(self, n):
        def body(rank, api):
            yield from api.bcast("v" if rank == 0 else None)

        assert count_messages(n, body) == n - 1

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_scan_counts(self, n):
        def body(rank, api):
            yield from api.scan(rank)

        # Hillis-Steele: at distance d, ranks d..N-1 receive one message.
        expected = sum(n - d for d in (2**k for k in range(int(math.log2(n)) + 1)) if d < n)
        assert count_messages(n, body) == expected
