"""TrialSpec/TrialRunner: the determinism-under-parallelism contract.

A campaign at ``--jobs N`` must produce bit-identical results and
byte-identical journals to a serial run — including when trials fail or
time out.  These tests pin that contract end to end, plus the runner's
own semantics (spec-order merge, journal short-circuit, duplicate-key
rejection, failure surfacing).
"""

import multiprocessing
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analytic.model import AllreduceSeriesModel
from repro.checkpoint.harness import SweepJournal, TrialFailure
from repro.experiments.common import PROTO16, VANILLA16, allreduce_sweep
from repro.experiments.runner import TrialRunner, TrialSpec, resolve_trial_fn
from repro.results import save_result

SWEEP_KW = dict(proc_counts=(128, 256), n_calls=40, n_seeds=2)

#: Monkeypatched sabotage only reaches pool workers under fork.
fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="failure injection into workers needs the fork start method",
)


def _journal_files(root) -> dict[str, bytes]:
    """Canonical journal contents as {filename: bytes} (shards must be gone)."""
    jdir = Path(root) / "journal"
    shards = jdir / "shards"
    assert not shards.exists() or not any(shards.iterdir()), "unmerged shards left"
    return {p.name: p.read_bytes() for p in sorted(jdir.glob("*.json"))}


def _double_trial(params):
    """Minimal deterministic trial used by the runner-semantics tests."""
    return {"twice": params["x"] * 2}


def _boom_trial(params):
    raise RuntimeError(f"boom-{params['x']}")


def _sleepy_trial(params):
    time.sleep(5.0)
    return {}


class TestRunnerSemantics:
    def test_outcomes_in_spec_order(self):
        specs = [
            TrialSpec(f"t{i}", "tests.test_runner:_double_trial", {"x": i})
            for i in (3, 1, 2)
        ]
        outs = TrialRunner().run(specs)
        assert [o.key for o in outs] == ["t3", "t1", "t2"]
        assert [o.record["twice"] for o in outs] == [6, 2, 4]

    def test_duplicate_keys_rejected(self):
        specs = [
            TrialSpec("same", "tests.test_runner:_double_trial", {"x": 1}),
            TrialSpec("same", "tests.test_runner:_double_trial", {"x": 2}),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            TrialRunner().run(specs)

    def test_failure_becomes_outcome_not_crash(self):
        outs = TrialRunner().run(
            [TrialSpec("bad", "tests.test_runner:_boom_trial", {"x": 7})]
        )
        assert not outs[0].ok
        assert "RuntimeError: boom-7" in outs[0].error
        with pytest.raises(TrialFailure, match="bad"):
            outs[0].require()

    def test_journal_short_circuits_and_marks_cached(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("t1", {"twice": 999})  # pre-cooked, wrong on purpose
        outs = TrialRunner(journal=journal).run(
            [
                TrialSpec("t1", "tests.test_runner:_double_trial", {"x": 1}),
                TrialSpec("t2", "tests.test_runner:_double_trial", {"x": 2}),
            ]
        )
        assert outs[0].cached and outs[0].record == {"twice": 999}
        assert not outs[1].cached and outs[1].record == {"twice": 4}
        assert journal.hits == 1

    def test_failure_traceback_captured_into_outcome_and_journal(self, tmp_path):
        journal = SweepJournal(tmp_path)
        outs = TrialRunner(journal=journal).run(
            [TrialSpec("bad", "tests.test_runner:_boom_trial", {"x": 7})]
        )
        tb = outs[0].traceback
        assert tb is not None
        # The trial function's own frame survives; the runner/watchdog
        # machinery frames are stripped.
        assert "_boom_trial" in tb and tb.rstrip().endswith("RuntimeError: boom-7")
        assert "_run_one" not in tb and "trial_watchdog" not in tb
        entry = journal.entries()["bad"]
        assert entry["status"] == "failed" and entry["traceback"] == tb

    def test_success_and_timeout_have_no_traceback(self):
        ok = TrialRunner().run(
            [TrialSpec("ok", "tests.test_runner:_double_trial", {"x": 1})]
        )[0]
        assert ok.traceback is None
        slow = TrialRunner(trial_timeout_s=0.2).run(
            [TrialSpec("slow", "tests.test_runner:_sleepy_trial", {})]
        )[0]
        assert not slow.ok and slow.traceback is None

    @fork_only
    def test_pool_traceback_identical_to_serial(self, tmp_path):
        specs = [
            TrialSpec(f"bad{i}", "tests.test_runner:_boom_trial", {"x": i})
            for i in range(3)
        ]
        serial = TrialRunner().run(specs)
        parallel = TrialRunner(jobs=3).run(specs)
        assert [o.traceback for o in serial] == [o.traceback for o in parallel]
        assert all(o.traceback for o in serial)

    def test_resolve_trial_fn_rejects_bad_refs(self):
        with pytest.raises(ValueError):
            resolve_trial_fn("no_colon_here")
        with pytest.raises(ModuleNotFoundError):
            resolve_trial_fn("definitely.not.a.module:fn")

    def test_parallel_pool_runs_all_trials(self):
        specs = [
            TrialSpec(f"t{i}", "tests.test_runner:_double_trial", {"x": i})
            for i in range(6)
        ]
        outs = TrialRunner(jobs=3).run(specs)
        assert [o.record["twice"] for o in outs] == [0, 2, 4, 6, 8, 10]


class TestParallelEqualsSerial:
    def test_sweep_results_and_journals_byte_identical(self, tmp_path):
        """The acceptance criterion: --jobs 4 == --jobs 1, bit for bit,
        through result arrays, saved JSON, and journal contents."""
        serial = allreduce_sweep(
            PROTO16, **SWEEP_KW, journal=SweepJournal(tmp_path / "s"), jobs=1
        )
        parallel = allreduce_sweep(
            PROTO16, **SWEEP_KW, journal=SweepJournal(tmp_path / "p"), jobs=4
        )
        assert np.array_equal(serial.mean_us, parallel.mean_us)
        assert np.array_equal(serial.run_std_us, parallel.run_std_us)
        assert np.array_equal(serial.call_std_us, parallel.call_std_us)
        assert serial.failed_points == parallel.failed_points == []
        save_result(tmp_path / "serial.json", serial)
        save_result(tmp_path / "parallel.json", parallel)
        assert (tmp_path / "serial.json").read_bytes() == (
            tmp_path / "parallel.json"
        ).read_bytes()
        assert _journal_files(tmp_path / "s") == _journal_files(tmp_path / "p")

    @fork_only
    def test_injected_failures_identical_both_ways(self, tmp_path, monkeypatch):
        """Trials that blow up must land in the same failed_points, the
        same NaN holes, and byte-identical failure journal entries
        whether they die in-process or in a pool worker."""
        real = AllreduceSeriesModel.run_series

        def sabotaged(self, *a, **kw):
            if self.n == 256:
                raise RuntimeError("boom")
            return real(self, *a, **kw)

        monkeypatch.setattr(AllreduceSeriesModel, "run_series", sabotaged)
        serial = allreduce_sweep(
            VANILLA16, **SWEEP_KW, journal=SweepJournal(tmp_path / "s"), jobs=1
        )
        parallel = allreduce_sweep(
            VANILLA16, **SWEEP_KW, journal=SweepJournal(tmp_path / "p"), jobs=4
        )
        assert serial.failed_points == parallel.failed_points == [
            "vanilla16-n256-s0",
            "vanilla16-n256-s1",
        ]
        assert np.isnan(parallel.mean_us[1]) and not np.isnan(parallel.mean_us[0])
        assert np.array_equal(serial.mean_us, parallel.mean_us, equal_nan=True)
        files = _journal_files(tmp_path / "p")
        assert _journal_files(tmp_path / "s") == files
        import json

        entry = json.loads(files["vanilla16-n256-s0.json"])
        assert entry["status"] == "failed" and "boom" in entry["reason"]

    @fork_only
    def test_injected_timeouts_identical_both_ways(self, tmp_path, monkeypatch):
        """The per-trial watchdog fires inside pool workers too (SIGALRM
        on the worker's main thread) and journals the same record."""
        real = AllreduceSeriesModel.run_series

        def wedged(self, *a, **kw):
            if self.n == 256:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    pass
            return real(self, *a, **kw)

        monkeypatch.setattr(AllreduceSeriesModel, "run_series", wedged)
        kw = dict(SWEEP_KW, trial_timeout_s=0.2)
        serial = allreduce_sweep(
            VANILLA16, **kw, journal=SweepJournal(tmp_path / "s"), jobs=1
        )
        parallel = allreduce_sweep(
            VANILLA16, **kw, journal=SweepJournal(tmp_path / "p"), jobs=2
        )
        assert serial.failed_points == parallel.failed_points == [
            "vanilla16-n256-s0",
            "vanilla16-n256-s1",
        ]
        assert _journal_files(tmp_path / "s") == _journal_files(tmp_path / "p")

    def test_parallel_resume_from_serial_journal(self, tmp_path):
        """A journal written serially resumes under --jobs N (and vice
        versa): everything already recorded is served from disk."""
        journal = SweepJournal(tmp_path)
        first = allreduce_sweep(PROTO16, **SWEEP_KW, journal=journal, jobs=1)
        resumed_journal = SweepJournal(tmp_path)
        resumed = allreduce_sweep(PROTO16, **SWEEP_KW, journal=resumed_journal, jobs=4)
        assert resumed_journal.hits == 4  # every trial came from the journal
        assert np.array_equal(first.mean_us, resumed.mean_us)


class TestShardedJournal:
    def test_shard_writes_land_in_shard_dir(self, tmp_path):
        shard = SweepJournal(tmp_path, shard="w1")
        shard.record("k1", {"mean_us": 1.0})
        assert (tmp_path / "journal" / "shards" / "w1" / "k1.json").is_file()
        assert not (tmp_path / "journal" / "k1.json").exists()

    def test_merge_on_read_folds_shards(self, tmp_path):
        SweepJournal(tmp_path, shard="w1").record("k1", {"mean_us": 1.0})
        SweepJournal(tmp_path, shard="w2").record_failure("k2", "boom")
        reader = SweepJournal(tmp_path)
        assert reader.lookup("k1") == {"mean_us": 1.0}
        assert reader.lookup("k2") is None  # failures retried, not served
        assert (tmp_path / "journal" / "k1.json").is_file()
        assert (tmp_path / "journal" / "k2.json").is_file()
        assert not (tmp_path / "journal" / "shards").exists()

    def test_merged_bytes_equal_direct_writes(self, tmp_path):
        SweepJournal(tmp_path / "a", shard="w9").record("k", {"mean_us": 2.5})
        SweepJournal(tmp_path / "b").record("k", {"mean_us": 2.5})
        SweepJournal(tmp_path / "a").entries()  # triggers the merge
        assert (tmp_path / "a" / "journal" / "k.json").read_bytes() == (
            tmp_path / "b" / "journal" / "k.json"
        ).read_bytes()

    def test_clear_removes_shards_too(self, tmp_path):
        SweepJournal(tmp_path, shard="w1").record("k1", {"mean_us": 1.0})
        journal = SweepJournal(tmp_path)
        journal.clear()
        assert journal.lookup("k1") is None
        assert list((tmp_path / "journal").glob("*.json")) == []
