"""Unit helpers: conversions and formatting."""

import pytest

from repro.units import MSEC, SEC, USEC, format_time, ms, s, to_ms, to_s, us


class TestConstants:
    def test_usec_is_canonical(self):
        assert USEC == 1.0

    def test_msec(self):
        assert MSEC == 1_000.0

    def test_sec(self):
        assert SEC == 1_000_000.0


class TestConversions:
    def test_us_identity(self):
        assert us(42) == 42.0

    def test_ms(self):
        assert ms(10) == 10_000.0

    def test_s(self):
        assert s(5) == 5_000_000.0

    def test_to_ms_roundtrip(self):
        assert to_ms(ms(3.5)) == pytest.approx(3.5)

    def test_to_s_roundtrip(self):
        assert to_s(s(0.25)) == pytest.approx(0.25)

    def test_integer_input_returns_float(self):
        assert isinstance(us(7), float)
        assert isinstance(ms(7), float)
        assert isinstance(s(7), float)


class TestFormatTime:
    def test_microseconds(self):
        assert format_time(350.0) == "350.0us"

    def test_milliseconds(self):
        assert format_time(2_240.0) == "2.240ms"

    def test_seconds(self):
        assert format_time(5_000_000.0) == "5.000s"

    def test_negative(self):
        assert format_time(-1500.0) == "-1.500ms"

    def test_zero(self):
        assert format_time(0.0) == "0.0us"

    def test_boundary_one_ms(self):
        assert format_time(1000.0) == "1.000ms"
