"""Gang scheduling of co-located jobs."""

import numpy as np
import pytest

from repro.apps.aggregate_trace import AggregateTraceConfig, aggregate_trace_body
from repro.config import ClusterConfig, KernelConfig, MachineConfig, MpiConfig
from repro.cosched.gang import GangConfig, GangScheduler
from repro.kernel.thread import ThreadState
from repro.machine import Cluster
from repro.mpi.world import MpiJob
from repro.units import ms, s


def make_cluster(n_nodes=1, cpn=4, seed=5):
    return Cluster(
        ClusterConfig(
            machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpn),
            mpi=MpiConfig(progress_threads_enabled=False),
            kernel=KernelConfig(),
            seed=seed,
        )
    )


def launch_jobs(cluster, n_jobs=2, n_ranks=4, tpn=4, calls=60):
    placement = cluster.place(n_ranks, tpn)
    sinks, jobs = [], []
    for j in range(n_jobs):
        sink: dict = {}
        sinks.append(sink)
        body = aggregate_trace_body(
            AggregateTraceConfig(calls_per_loop=calls, compute_between_us=100.0),
            sink,
            node0_ranks=set(),
        )
        jobs.append(MpiJob(cluster, placement, body, config=cluster.config.mpi, name=f"j{j}"))
    return jobs, sinks


def run_all(cluster, jobs, horizon=s(120)):
    sim = cluster.sim
    while not all(j.done for j in jobs) and sim.now < horizon:
        sim.run_until(min(horizon, sim.now + s(1)))
    assert all(j.done for j in jobs), "jobs did not complete"


class TestGangConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GangConfig(slot_us=0.0)
        with pytest.raises(ValueError):
            GangConfig(favored_priority=200)


class TestGangScheduler:
    def test_both_jobs_complete(self):
        cluster = make_cluster()
        jobs, sinks = launch_jobs(cluster)
        GangScheduler(cluster, jobs, GangConfig(slot_us=ms(50)))
        run_all(cluster, jobs)
        for sink in sinks:
            assert sink[0][1]  # values_ok per job

    def test_requires_jobs(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            GangScheduler(cluster, [], GangConfig())

    def test_slots_alternate_priorities(self):
        cluster = make_cluster()
        jobs, _ = launch_jobs(cluster, calls=2000)
        gs = GangScheduler(cluster, jobs, GangConfig(slot_us=ms(50)))
        observed = set()

        def sample():
            p0 = jobs[0].tasks[0].priority
            p1 = jobs[1].tasks[0].priority
            observed.add((p0, p1))
            if cluster.sim.now < ms(400):
                cluster.sim.schedule(ms(10), sample)

        cluster.sim.schedule(ms(5), sample)
        cluster.sim.run_until(ms(450))
        assert (30, 100) in observed
        assert (100, 30) in observed

    def test_gang_daemons_exit_after_jobs(self):
        cluster = make_cluster()
        jobs, _ = launch_jobs(cluster, calls=30)
        gs = GangScheduler(cluster, jobs, GangConfig(slot_us=ms(50)))
        run_all(cluster, jobs)
        cluster.run_for(ms(200))
        for ng in gs.node_gangs.values():
            assert ng.thread.state is ThreadState.FINISHED

    def test_gang_beats_uncoordinated_per_op(self):
        """The classic result: coordinated slots give each fine-grain job
        clean collectives; uncoordinated equal-priority timesharing makes
        every collective wait for stragglers."""
        c1 = make_cluster(n_nodes=2, cpn=4)
        jobs1, sinks1 = launch_jobs(c1, n_ranks=8, tpn=4, calls=150)
        run_all(c1, jobs1)
        uncoordinated = float(np.mean([np.mean(s_[0][0]) for s_ in sinks1]))

        c2 = make_cluster(n_nodes=2, cpn=4)
        jobs2, sinks2 = launch_jobs(c2, n_ranks=8, tpn=4, calls=150)
        GangScheduler(c2, jobs2, GangConfig(slot_us=ms(100)))
        run_all(c2, jobs2)
        gang = float(np.mean([np.mean(s_[0][0]) for s_ in sinks2]))
        assert gang < uncoordinated / 1.5

    def test_single_job_gang_is_harmless(self):
        cluster = make_cluster()
        jobs, sinks = launch_jobs(cluster, n_jobs=1, calls=50)
        GangScheduler(cluster, jobs, GangConfig(slot_us=ms(50)))
        run_all(cluster, jobs)
        assert jobs[0].done
