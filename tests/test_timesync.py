"""Switch-clock synchronisation."""

import numpy as np
import pytest

from repro.cosched.timesync import synchronize_node_clock
from repro.net.switch import SwitchClock


class TestTimesync:
    def test_residual_bounded_by_read_error(self):
        clk = SwitchClock(np.random.default_rng(0), read_error_us=2.0)
        for raw in (-150_000.0, 0.0, 99_000.0):
            resid = synchronize_node_clock(clk, raw)
            assert abs(resid) <= 2.0

    def test_raw_offset_discarded(self):
        clk = SwitchClock(np.random.default_rng(1), read_error_us=0.0)
        assert synchronize_node_clock(clk, raw_offset_us=123_456.0) == 0.0

    def test_ntp_must_be_off(self):
        clk = SwitchClock(np.random.default_rng(2))
        with pytest.raises(RuntimeError, match="NTP"):
            synchronize_node_clock(clk, 0.0, ntp_running=True)

    def test_nonzero_global_now(self):
        clk = SwitchClock(np.random.default_rng(3), read_error_us=1.0)
        resid = synchronize_node_clock(clk, 50_000.0, global_now=1_000_000.0)
        assert abs(resid) <= 1.0
