"""Application workloads: aggregate_trace, BSP, ALE3D proxy."""

import numpy as np
import pytest

from repro.apps.aggregate_trace import (
    AggregateTraceConfig,
    PAPER_CONFIG,
    run_aggregate_trace,
)
from repro.apps.ale3d import Ale3dConfig, run_ale3d
from repro.apps.bsp import BspConfig, run_bsp
from repro.config import ClusterConfig, MachineConfig, MpiConfig, NoiseConfig
from repro.system import System
from repro.trace.recorder import TraceRecorder
from repro.units import ms, s


def quiet_system(n_nodes=2, cpn=4, trace=None, with_io=False, **cfg_kw):
    cfg = ClusterConfig(
        machine=MachineConfig(n_nodes=n_nodes, cpus_per_node=cpn),
        mpi=MpiConfig(progress_threads_enabled=False),
        noise=NoiseConfig(),
        **cfg_kw,
    )
    return System(cfg, trace=trace, with_io=with_io)


class TestAggregateTrace:
    def test_paper_config_structure(self):
        assert PAPER_CONFIG.loops == 3
        assert PAPER_CONFIG.calls_per_loop == 4096
        assert PAPER_CONFIG.total_calls == 12288

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AggregateTraceConfig(loops=0)

    def test_run_collects_durations(self):
        sysm = quiet_system()
        res = run_aggregate_trace(
            sysm, 8, 4, AggregateTraceConfig(calls_per_loop=32, loops=2)
        )
        assert len(res.durations_us) == 64
        assert res.values_ok
        assert res.min_us > 0
        assert res.mean_us >= res.min_us
        assert res.max_us >= res.median_us

    def test_node0_sample_covers_node_ranks(self):
        sysm = quiet_system()
        res = run_aggregate_trace(sysm, 8, 4, AggregateTraceConfig(calls_per_loop=16))
        assert set(res.node0_durations_us) == {0, 1, 2, 3}
        sample = res.sorted_node0_sample()
        assert len(sample) == 4 * 16
        assert np.all(np.diff(sample) >= 0)

    def test_trace_marks_every_block(self):
        trace = TraceRecorder()
        sysm = quiet_system(trace=trace)
        run_aggregate_trace(
            sysm, 4, 4, AggregateTraceConfig(calls_per_loop=128, trace_block=64)
        )
        marks = trace.marks_named("aggr.block")
        # 4 ranks x 2 blocks per loop x 1 loop.
        assert len(marks) == 8
        assert len(trace.marks_named("aggr.loop_end")) == 4

    def test_compute_between_stretches_run(self):
        sysm1 = quiet_system()
        fast = run_aggregate_trace(
            sysm1, 4, 4, AggregateTraceConfig(calls_per_loop=16, compute_between_us=0.0)
        )
        sysm2 = quiet_system()
        slow = run_aggregate_trace(
            sysm2, 4, 4, AggregateTraceConfig(calls_per_loop=16, compute_between_us=ms(1))
        )
        assert slow.elapsed_us > fast.elapsed_us + 15 * ms(1)


class TestBsp:
    def test_cycle_times_recorded(self):
        res = run_bsp(quiet_system(), 8, 4, BspConfig(cycles=10, compute_us=ms(1)))
        assert len(res.cycle_times_us) == 10
        assert res.mean_cycle_us >= ms(1)

    def test_collective_options(self):
        for coll in ("allreduce", "barrier", "allgather"):
            res = run_bsp(
                quiet_system(), 4, 4, BspConfig(cycles=3, compute_us=100.0, collective=coll)
            )
            assert len(res.cycle_times_us) == 3

    def test_efficiency_below_one_with_imbalance(self):
        res = run_bsp(
            quiet_system(), 8, 4, BspConfig(cycles=10, compute_us=ms(1), imbalance=0.3)
        )
        assert res.efficiency(ideal_cycle_us=ms(1)) < 1.0

    def test_deterministic_given_seed(self):
        a = run_bsp(quiet_system(), 4, 4, BspConfig(cycles=5))
        b = run_bsp(quiet_system(), 4, 4, BspConfig(cycles=5))
        assert np.array_equal(a.cycle_times_us, b.cycle_times_us)


class TestAle3d:
    def test_runs_and_reports(self):
        sysm = quiet_system(with_io=True)
        cfg = Ale3dConfig(
            timesteps=5,
            lagrange_us=ms(1),
            remap_us=500.0,
            initial_read_bytes=10_000,
            restart_write_bytes=10_000,
        )
        res = run_ale3d(sysm, 8, 4, cfg)
        assert len(res.step_times_us) == 5
        assert res.io_time_us > 0
        assert res.elapsed_us > res.io_time_us

    def test_io_free_without_service(self):
        sysm = quiet_system(with_io=False)
        cfg = Ale3dConfig(timesteps=3, lagrange_us=ms(1), remap_us=100.0)
        res = run_ale3d(sysm, 4, 4, cfg)
        # Only barrier cost in the "I/O" phases.
        assert res.io_time_us < ms(5)

    def test_detach_api_tolerated_without_cosched(self):
        sysm = quiet_system(with_io=True)
        cfg = Ale3dConfig(
            timesteps=2,
            lagrange_us=100.0,
            remap_us=50.0,
            initial_read_bytes=1000,
            restart_write_bytes=1000,
            use_detach_api=True,
        )
        res = run_ale3d(sysm, 4, 4, cfg)
        assert len(res.step_times_us) == 2

    def test_step_time_scales_with_compute(self):
        light = run_ale3d(
            quiet_system(with_io=True), 4, 4,
            Ale3dConfig(timesteps=3, lagrange_us=ms(1), remap_us=0.0,
                        initial_read_bytes=0, restart_write_bytes=0),
        )
        heavy = run_ale3d(
            quiet_system(with_io=True), 4, 4,
            Ale3dConfig(timesteps=3, lagrange_us=ms(4), remap_us=0.0,
                        initial_read_bytes=0, restart_write_bytes=0),
        )
        assert heavy.mean_step_us > light.mean_step_us + ms(2)
